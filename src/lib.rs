//! AdaServe: SLO-customized LLM serving with fine-grained speculative
//! decoding — a full reproduction of the EuroSys 2026 paper in Rust.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`core`] (`adaserve-core`) — the paper's contribution: optimal token
//!   tree construction (Algorithm 1), SLO-customized speculative decoding
//!   (Algorithm 2), adaptive control and the [`core::AdaServeEngine`];
//! * [`baselines`] — vLLM, Sarathi-Serve, vLLM-Spec(k), vLLM+Priority,
//!   FastServe and VTC reimplemented on the same substrate;
//! * [`serving`] — request lifecycle, paged KV cache, discrete-event driver;
//! * [`cluster`] — multi-replica fleets: pluggable request routers
//!   (round-robin, least-outstanding, JSQ-by-load, SLO-aware) and a
//!   cluster driver with elastic drain/join scaling;
//! * [`disagg`] — disaggregated prefill/decode serving: split replica
//!   pools, modeled KV migration over the interconnect, and TTFT-tier
//!   SLO-aware dispatch;
//! * [`spectree`] — token trees, beam-search speculation, tree verification;
//! * [`simllm`] — the synthetic target/draft model pair;
//! * [`roofline`] — the hardware cost model and profiler;
//! * [`workload`] — multi-SLO request categories, datasets and traces;
//! * [`metrics`] — SLO attainment, goodput and latency reporting.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the paper-to-module map.

pub use adaserve_core as core;
pub use baselines;
pub use cluster;
pub use disagg;
pub use metrics;
pub use roofline;
pub use serving;
pub use simllm;
pub use spectree;
pub use workload;
