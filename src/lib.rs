//! AdaServe: SLO-customized LLM serving with fine-grained speculative
//! decoding — a full reproduction of the EuroSys 2026 paper in Rust.
//!
//! # One front door
//!
//! Every deployment shape — one engine, a routed multi-replica cluster, a
//! disaggregated prefill/decode fleet — runs through the same two
//! abstractions, re-exported here at the crate root:
//!
//! * [`Deployment`] — anything that accepts requests and advances its own
//!   machinery event by event: [`Colocated`] (a single
//!   [`serving::ServingEngine`]), [`cluster::Cluster`], or
//!   [`disagg::DisaggCluster`];
//! * [`ServeSession`] — the one event loop: it owns the clock, the run
//!   caps, the stall guard and the scaling timeline, drives any
//!   deployment **online** (arrivals at their timestamps, or submitted
//!   mid-run by a client hook reacting to [`DeploymentEvent`]s), and
//!   finalizes every run into one [`RunReport`].
//!
//! ```
//! use adaserve::core::AdaServeEngine;
//! use adaserve::{Colocated, ServeSession};
//! use adaserve::serving::SystemConfig;
//! use adaserve::workload::WorkloadBuilder;
//!
//! let config = SystemConfig::llama70b(42);
//! let workload = WorkloadBuilder::new(7, config.baseline_ms)
//!     .target_rps(2.0)
//!     .duration_ms(5_000.0)
//!     .build();
//! let report = ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(config))))
//!     .serve(&workload)
//!     .unwrap();
//! assert_eq!(report.report().requests, workload.requests.len());
//! ```
//!
//! The legacy batch entry points (`serving::run`, `Cluster::run`,
//! `DisaggCluster::run`) remain as deprecated shims over the session and
//! are verified output-equivalent in `tests/output_equivalence.rs`;
//! migrate by wrapping the same object in a [`ServeSession`] and calling
//! [`ServeSession::serve`] (or [`ServeSession::serve_online`] for
//! closed-loop traffic the batch API could not express).
//!
//! # Workspace map
//!
//! * [`core`] (`adaserve-core`) — the paper's contribution: optimal token
//!   tree construction (Algorithm 1), SLO-customized speculative decoding
//!   (Algorithm 2), adaptive control and the [`core::AdaServeEngine`];
//! * [`baselines`] — vLLM, Sarathi-Serve, vLLM-Spec(k), vLLM+Priority,
//!   FastServe and VTC reimplemented on the same substrate;
//! * [`serving`] — request lifecycle, paged KV cache, and the
//!   [`Deployment`]/[`ServeSession`] front door;
//! * [`cluster`] — multi-replica fleets: pluggable request routers
//!   (round-robin, least-outstanding, JSQ-by-load, SLO-aware) behind the
//!   same front door, with elastic drain/join scaling;
//! * [`disagg`] — disaggregated prefill/decode serving: split replica
//!   pools, modeled KV migration over the interconnect, and TTFT-tier
//!   SLO-aware dispatch;
//! * [`spectree`] — token trees, beam-search speculation, tree verification;
//! * [`simllm`] — the synthetic target/draft model pair;
//! * [`roofline`] — the hardware cost model and profiler;
//! * [`workload`] — multi-SLO request categories, datasets and traces;
//! * [`scenario`] — production-shaped scenarios: diurnal/MMPP/flash-crowd
//!   arrival processes over millions of session-affine users,
//!   multi-tenant contracts with weighted-fair front-door admission, and
//!   a closed-loop autoscaler (see `docs/SCENARIOS.md`);
//! * [`metrics`] — SLO attainment, goodput, latency and per-tenant
//!   fairness reporting.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/online_serving.rs` for the online/closed-loop API, and
//! `DESIGN.md` for the paper-to-module map.

pub use adaserve_core as core;
pub use baselines;
pub use cluster;
pub use disagg;
pub use metrics;
pub use roofline;
pub use scenario;
pub use serving;
pub use simllm;
pub use spectree;
pub use workload;

pub use serving::{
    Colocated, Deployment, DeploymentEvent, FaultEvent, FaultKind, FaultPlan, Pool, RecoveryPolicy,
    RejectReason, ReplicaAddr, RunReport, ScalingAction, ServeSession, SessionHandle, UnitStats,
};
