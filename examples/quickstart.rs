//! Quickstart: serve a multi-SLO workload with AdaServe through the
//! unified front door and print the paper-style report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adaserve::core::AdaServeEngine;
use adaserve::serving::{Colocated, ServeSession, SystemConfig};
use adaserve::workload::{env_seed, smoke_scale, WorkloadBuilder};

fn main() {
    // 1. Pick a deployment: Llama-3.1-70B on 4×A100 with its 1B draft
    //    (the paper's Table 1 setup), with the calibrated synthetic models.
    // ADASERVE_SEED overrides every seed in this example at once.
    let config = SystemConfig::llama70b(env_seed(42));
    println!(
        "Deployment: {} (baseline decode {:.1} ms)",
        config.testbed.name, config.baseline_ms
    );

    // 2. Build a 60-second multi-SLO workload at 3.5 requests/second with the
    //    paper's 60/20/20 coding/chat/summarization mix. ADASERVE_SMOKE=1
    //    (set by the CI smoke tests) shrinks it to a few seconds.
    let (rps, duration_ms) = smoke_scale(3.5, 60_000.0);
    let workload = WorkloadBuilder::new(env_seed(7), config.baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();
    println!("Workload:   {}\n", workload.description);

    // 3. Serve it with AdaServe (SLO-customized speculative decoding): wrap
    //    the engine as a `Colocated` deployment and drive it with a
    //    `ServeSession` — the same front door cluster and disaggregated
    //    deployments use.
    let engine = Box::new(AdaServeEngine::new(config));
    let result = ServeSession::new(Colocated::new(engine))
        .serve(&workload)
        .expect("run completes");

    // 4. Report.
    let report = result.report();
    println!(
        "Served {} requests in {:.1} s of simulated time",
        report.requests,
        result.end_ms / 1e3
    );
    println!("SLO attainment: {:.1}%", report.attainment_pct);
    println!("Goodput:        {:.0} tokens/s", report.goodput_tps);
    println!("Throughput:     {:.0} tokens/s", report.throughput_tps);
    println!(
        "Mean accepted tokens per verification: {:.2}",
        result.mean_accepted_per_verify()
    );
    println!("\nPer-category:");
    for c in &report.per_category {
        println!(
            "  {:<14} {:>4} requests, mean TPOT {:>5.1} ms, violations {:>5.1}%",
            c.category.label(),
            c.requests,
            c.mean_tpot_ms,
            c.violation_pct
        );
    }
}
