//! Adaptive speculation control under a bursty workload.
//!
//! Shows eq. 8–9 in action: as the active-request count swings with the
//! synthetic trace's category bursts, the controller moves the speculation
//! depth/width, trading speculation aggressiveness against verification
//! budget pressure.
//!
//! ```sh
//! cargo run --release --example adaptive_control
//! ```

use adaserve::core::AdaptiveController;
use adaserve::metrics::Table;
use adaserve::roofline::{BudgetPolicy, TokenBudgetProfile};
use adaserve::serving::SystemConfig;
use adaserve::workload::env_seed;

fn main() {
    let config = SystemConfig::llama70b(env_seed(1));
    let profile = TokenBudgetProfile::profile(
        &config.testbed.target,
        &config.testbed.draft,
        512,
        BudgetPolicy::LatencyStretch(2.5),
    );
    let controller = AdaptiveController::new(profile.verify_budget, profile.spec_budget);

    println!(
        "Budgets: verify B1 = {} tokens, speculate B2 = {} tokens\n",
        profile.verify_budget, profile.spec_budget
    );
    let mut t = Table::new(vec![
        "active requests n",
        "depth d (eq. 8)",
        "width w (eq. 9)",
        "candidate tokens n*d*w",
        "per-request budget B1/n",
    ]);
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let p = controller.params(n);
        t.row(vec![
            n.to_string(),
            p.depth.to_string(),
            p.width.to_string(),
            (n as u32 * p.depth * p.width).to_string(),
            format!("{:.1}", profile.verify_budget as f64 / n as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Light load → deep, wide trees (maximum speedup per request).\n\
         Heavy load → shallow, narrow trees so speculated tokens stay within\n\
         each request's share of the verification budget (paper §5.2)."
    );
}
