//! Anatomy of one SLO-customized speculative-decoding iteration.
//!
//! Walks the paper's Fig. 5 pipeline on real (synthetic-model) data for two
//! requests with different SLO pressure: speculation via beam search,
//! SLO-customized selection, throughput-optimized selection, and tree
//! verification — printing the trees at each stage.
//!
//! ```sh
//! cargo run --release --example speculative_decoding
//! ```

use adaserve::core::{select_tokens, ScsdInput};
use adaserve::simllm::{ContentClass, LmContext, ModelPair, TokenId, Vocab};
use adaserve::spectree::{verify_tree, CandidateTree, NodeId, SpecParams, TokenTree, VerifyMode};

fn print_tree(vocab: &Vocab, tree: &TokenTree, selected: Option<&[NodeId]>) {
    // Depth-first so indentation reflects ancestry.
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let children: Vec<NodeId> = tree.children(id).collect();
        for &c in children.iter().rev() {
            stack.push(c);
        }
        let depth = tree.depth(id) as usize;
        let marker = match selected {
            Some(sel) if sel.contains(&id) => "*",
            Some(_) if id != tree.root() => " ",
            _ => "",
        };
        println!(
            "    {}{}{} (f≈{:.3})",
            "  ".repeat(depth),
            marker,
            vocab.render(tree.token(id)),
            tree.path_prob(id),
        );
    }
}

fn main() {
    let pair = ModelPair::calibrated(2024);
    let vocab = Vocab::default();

    // Two in-flight requests: a coding request under SLO pressure and a
    // relaxed summarization request.
    let ctx_tokens: Vec<Vec<TokenId>> = vec![
        (0..8).map(|i| TokenId(500 + i)).collect(),
        (0..8).map(|i| TokenId(900 + i)).collect(),
    ];
    let classes = [ContentClass::Code, ContentClass::News];
    let requirements = [2.4f64, 1.1]; // A_cap(r): coding needs ~2.4 tokens/iter
    let params = SpecParams::new(4, 3);

    // ---- Step 1: speculation (beam search on the draft model). ----
    println!(
        "== Step 1: speculation (d = {}, w = {}) ==",
        params.depth, params.width
    );
    let candidates: Vec<CandidateTree> = (0..2)
        .map(|i| {
            let ctx = LmContext::new(77 + i as u64, classes[i], &ctx_tokens[i]);
            CandidateTree::speculate(pair.draft(), &ctx, params)
        })
        .collect();
    for (i, cand) in candidates.iter().enumerate() {
        println!(
            "  request {i} ({:?}) candidate tree: {} nodes, E[acc] ≈ {:.2}",
            classes[i],
            cand.tree().num_speculated(),
            cand.tree().expected_accepted()
        );
        print_tree(&vocab, cand.tree(), None);
    }

    // ---- Steps 2–3: SLO-customized + throughput-optimized selection. ----
    let budget = 9;
    println!("\n== Steps 2–3: selection (budget = {budget} speculated tokens) ==");
    let trees: Vec<&TokenTree> = candidates.iter().map(|c| c.tree()).collect();
    let output = select_tokens(&ScsdInput {
        candidates: &trees,
        requirements: &requirements,
        budget,
        n_max: 8,
        min_phase2_prob: 0.05,
    });
    for i in 0..2 {
        println!(
            "  request {i}: A_cap = {:.2}, selected {} tokens, est. acceptance {:.2} \
             (SLO phase satisfied: {})",
            requirements[i],
            output.selections[i].len(),
            output.estimated_accept[i],
            output.slo_satisfied[i]
        );
        print_tree(&vocab, trees[i], Some(&output.selections[i]));
    }

    // ---- Step 4: verification. ----
    println!("\n== Step 4: verification (target model) ==");
    for i in 0..2 {
        let draft = trees[i]
            .induced_subtree(&output.selections[i])
            .expect("connected");
        let ctx = LmContext::new(77 + i as u64, classes[i], &ctx_tokens[i]);
        let outcome = verify_tree(pair.target(), &ctx, &draft, 0, VerifyMode::Stochastic);
        let accepted: Vec<String> = outcome
            .accepted_tokens
            .iter()
            .map(|&t| vocab.render(t))
            .collect();
        println!(
            "  request {i}: accepted {} speculated token(s) [{}] + bonus '{}' → advanced {}",
            outcome.num_accepted(),
            accepted.join(" "),
            vocab.render(outcome.bonus_token),
            outcome.total_advance()
        );
    }
    println!(
        "\nThe tight-SLO request received the speculation depth it needed; the\n\
         relaxed request got the leftover budget (throughput-optimized phase)."
    );
}
