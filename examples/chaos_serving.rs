//! Chaos-ready serving: a seeded replica crash mid flash crowd, survived
//! by retry/backoff recovery and graceful degradation.
//!
//! A 3-replica fleet rides a flash crowd while a deterministic
//! `FaultPlan` — derived from the same seed that builds the workload —
//! crashes one replica and slows another right as the crowd peaks. The
//! same trace is served three ways: fault-free, faulted with no recovery
//! (every request the crash loses is terminally rejected), and faulted
//! under the default `RecoveryPolicy` (lost requests return to the front
//! door with exponential backoff and re-dispatch SLO-aware). The
//! printout scores each run on *offered-basis* attainment — rejections
//! count as misses — which is the number recovery exists to move.
//!
//! ```sh
//! cargo run --release --example chaos_serving
//! ```

use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::metrics::Table;
use adaserve::scenario::{ArrivalProcess, Scenario, TenantSpec};
use adaserve::serving::{
    FaultPlan, RecoveryPolicy, RunReport, ServeSession, ServingEngine, SystemConfig,
};
use adaserve::workload::{env_seed, smoke_scale, CategoryMix};

/// Fleet size; the seeded plan crashes one of these replicas.
const REPLICAS: usize = 3;

fn fleet(seed: u64) -> Cluster {
    let engines: Vec<Box<dyn ServingEngine>> = (0..REPLICAS)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect();
    Cluster::new(engines, RouterKind::SloAware.build())
}

/// Scores one run: offered volume, terminal rejections, retries, and
/// joint SLO attainment with rejections counted as misses.
fn score(table: &mut Table, label: &str, recovery: &str, report: &RunReport) {
    let finished = report.records.len();
    let offered = finished + report.rejected.len();
    let ok = report
        .records
        .iter()
        .filter(|r| r.attained() && r.ttft_attained())
        .count();
    let offered_pct = if offered == 0 {
        100.0
    } else {
        ok as f64 / offered as f64 * 100.0
    };
    table.row(vec![
        label.into(),
        recovery.into(),
        offered.to_string(),
        finished.to_string(),
        report.rejected.len().to_string(),
        report.retries_scheduled.to_string(),
        format!("{offered_pct:.1}"),
    ]);
}

fn main() {
    let seed = env_seed(17);
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace.
    let (rps, duration_ms) = smoke_scale(3.0, 30_000.0);
    let burst_at = duration_ms / 3.0;

    let sw = Scenario::new(seed, SystemConfig::llama70b(seed).baseline_ms)
        .process(ArrivalProcess::FlashCrowd {
            rps,
            at_ms: burst_at,
            magnitude: 4.0,
            decay_ms: duration_ms / 6.0,
        })
        .duration_ms(duration_ms)
        .users(100)
        .max_context(1_536)
        .tenants(vec![
            TenantSpec::new("anchor")
                .share(2.0)
                .weight(2.0)
                .mix(CategoryMix::new(0.6, 0.4, 0.0)),
            TenantSpec::new("longtail")
                .share(1.0)
                .weight(1.0)
                .mix(CategoryMix::new(0.0, 0.4, 0.6)),
        ])
        .build();

    // The chaos schedule is pure data, deterministic in the seed, and
    // aimed at the crowd: the window opens at burst onset.
    let plan = FaultPlan::seeded(seed, burst_at, duration_ms / 3.0, REPLICAS, false);
    println!(
        "Scenario: {} — 4x flash crowd at {:.1}s on {REPLICAS} replicas",
        sw.workload.description,
        burst_at / 1e3,
    );
    for e in plan.events() {
        println!(
            "  fault @ {:>7.1} ms  {:<9} {}",
            e.at_ms,
            e.kind.target_label(),
            e.kind.describe()
        );
    }
    println!();

    let mut table = Table::new(vec![
        "Run",
        "Recovery",
        "Offered",
        "Finished",
        "Rejected",
        "Retries",
        "Offered SLO %",
    ]);

    // Fault-free baseline: what the fleet does when nothing breaks.
    let baseline = ServeSession::new(fleet(seed))
        .serve(&sw.workload)
        .expect("fault-free run");
    score(&mut table, "no-fault", "n/a", &baseline);

    // Same faults, no safety net: the crash's in-flight requests are
    // terminally rejected the moment their replica dies.
    let unrecovered = ServeSession::new(fleet(seed))
        .with_fault_plan(plan.clone())
        .with_recovery_policy(RecoveryPolicy::no_retry())
        .serve(&sw.workload)
        .expect("no-recovery run");
    score(&mut table, "fault-no-recovery", "none", &unrecovered);

    // Same faults under retry/backoff: lost requests re-enter the front
    // door after exponential backoff and re-dispatch SLO-aware; under
    // sustained pressure the session sheds speculation depth, then the
    // loosest SLO tier, instead of collapsing.
    let recovered = ServeSession::new(fleet(seed))
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::default())
        .serve(&sw.workload)
        .expect("with-recovery run");
    score(&mut table, "fault-with-recovery", "retry", &recovered);

    println!("{}", table.render());
    println!(
        "Without recovery the crash converts in-flight work into terminal\n\
         rejections — misses no later iteration can win back. With retry and\n\
         backoff the same schedule re-serves every lost request, trading a\n\
         little extra latency for the offered-basis attainment the rejections\n\
         had forfeited."
    );
}
