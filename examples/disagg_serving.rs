//! Disaggregated prefill/decode serving: split pools, KV migration and
//! SLO-aware dispatch.
//!
//! Four Llama-70B engine groups serve one bursty multi-SLO trace twice at
//! equal aggregate hardware: colocated (a 4-replica cluster behind the
//! SLO-aware router) and disaggregated (one prefill-only replica feeding
//! three SCSD decode replicas over an NVLink-priced KV-migration link).
//! Mid-run, one decode replica drains and later rejoins, exercising
//! elastic scaling across the migration boundary.
//!
//! ```sh
//! cargo run --release --example disagg_serving
//! ```

use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::disagg::{DisaggCluster, Dispatcher, KvLink, PrefillPool, ScalingAction};
use adaserve::metrics::Table;
use adaserve::serving::{ReplicaAddr, ServeSession, ServingEngine, SystemConfig};
use adaserve::workload::{env_seed, smoke_scale, WorkloadBuilder};

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

fn main() {
    let seed = env_seed(17);
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace.
    let (rps, duration_ms) = smoke_scale(12.0, 45_000.0);
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;
    let workload = WorkloadBuilder::new(seed, baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();
    println!(
        "Workload: {} — equal hardware: 4 engine groups per deployment\n",
        workload.description
    );

    // Colocated baseline: every group prefills and decodes. Both
    // deployment shapes run through the same ServeSession front door.
    let colocated = ServeSession::new(Cluster::new(engines(4, seed), RouterKind::SloAware.build()))
        .serve(&workload)
        .expect("colocated run");

    // Disaggregated: 1 prefill group + 3 decode groups, NVLink-class KV
    // migration; decode replica 2 drains for the middle third of the run.
    let link = KvLink::nvlink(&adaserve::roofline::GpuSpec::a100_80g());
    let mut session = ServeSession::new(DisaggCluster::new(
        PrefillPool::new(vec![SystemConfig::llama70b(seed)]),
        engines(3, seed),
        Dispatcher::new(RouterKind::SloAware.build()),
        link,
    ));
    session.scale_at(
        duration_ms / 3.0,
        ReplicaAddr::serving(2),
        ScalingAction::Drain,
    );
    session.scale_at(
        2.0 * duration_ms / 3.0,
        ReplicaAddr::serving(2),
        ScalingAction::Join,
    );
    let disagg = session.serve(&workload).expect("disagg run");
    let transfers = session.into_inner().transfer_stats();

    let mut table = Table::new(vec![
        "Deployment",
        "TTFT att %",
        "p99 TTFT ms",
        "TPOT att %",
        "Goodput tok/s",
    ]);
    for (name, report) in [
        ("colocated 4x", colocated.report()),
        ("disagg 1p+3d", disagg.report()),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.1}", report.ttft_attainment_pct),
            format!("{:.0}", report.p99_ttft_ms),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
        ]);
    }
    println!("{}", table.render());

    let mut pools = Table::new(vec!["Replica", "Requests", "Detail"]);
    for p in disagg.prefill_units() {
        pools.row(vec![
            p.label(),
            p.routed.to_string(),
            format!(
                "{} prompts prefilled, {} tokens",
                p.prefilled_requests, p.prefill_tokens
            ),
        ]);
    }
    for d in disagg.serving_units() {
        let report = d.result.report();
        pools.row(vec![
            format!("decode-{}", d.replica.index),
            d.routed.to_string(),
            format!(
                "TTFT att {:.1}%, p99 TPOT {:.1} ms",
                report.ttft_attainment_pct, report.p99_tpot_ms
            ),
        ]);
    }
    println!(
        "Disaggregated pools (decode-2 drained for the middle third):\n{}",
        pools.render()
    );
    println!(
        "KV migration: {} transfers, {:.1} MB total, {:.2} ms mean link time\n\
         — transfers overlap decode; only the migrating request waits.",
        transfers.transfers,
        transfers.bytes as f64 / 1e6,
        transfers.mean_transfer_ms(),
    );
    println!(
        "Dedicated prefill replicas remove prefill/decode interference:\n\
         interactive prompts stop queueing behind verification batches,\n\
         at the price of a KV transfer the NVLink fabric absorbs."
    );
}
