//! Disaggregated prefill/decode serving: split pools, KV migration and
//! SLO-aware dispatch.
//!
//! Four Llama-70B engine groups serve one bursty multi-SLO trace twice at
//! equal aggregate hardware: colocated (a 4-replica cluster behind the
//! SLO-aware router) and disaggregated (one prefill-only replica feeding
//! three SCSD decode replicas over an NVLink-priced KV-migration link).
//! Mid-run, one decode replica drains and later rejoins, exercising
//! elastic scaling across the migration boundary.
//!
//! ```sh
//! cargo run --release --example disagg_serving
//! ```

use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::disagg::{
    DisaggCluster, DisaggScalingEvent, Dispatcher, KvLink, Pool, PrefillPool, ScalingAction,
};
use adaserve::metrics::Table;
use adaserve::serving::{RunOptions, ServingEngine, SystemConfig};
use adaserve::workload::{env_seed, WorkloadBuilder};

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

fn main() {
    let seed = env_seed(17);
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace.
    let (rps, duration_ms) = if std::env::var_os("ADASERVE_SMOKE").is_some() {
        (6.0, 3_000.0)
    } else {
        (12.0, 45_000.0)
    };
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;
    let workload = WorkloadBuilder::new(seed, baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();
    println!(
        "Workload: {} — equal hardware: 4 engine groups per deployment\n",
        workload.description
    );

    // Colocated baseline: every group prefills and decodes.
    let colocated = Cluster::new(engines(4, seed), RouterKind::SloAware.build())
        .run(&workload, RunOptions::default())
        .expect("colocated run");

    // Disaggregated: 1 prefill group + 3 decode groups, NVLink-class KV
    // migration; decode replica 2 drains for the middle third of the run.
    let link = KvLink::nvlink(&adaserve::roofline::GpuSpec::a100_80g());
    let disagg = DisaggCluster::new(
        PrefillPool::new(vec![SystemConfig::llama70b(seed)]),
        engines(3, seed),
        Dispatcher::new(RouterKind::SloAware.build()),
        link,
    )
    .with_events(vec![
        DisaggScalingEvent {
            at_ms: duration_ms / 3.0,
            pool: Pool::Decode,
            replica: 2,
            action: ScalingAction::Drain,
        },
        DisaggScalingEvent {
            at_ms: 2.0 * duration_ms / 3.0,
            pool: Pool::Decode,
            replica: 2,
            action: ScalingAction::Join,
        },
    ])
    .run(&workload, RunOptions::default())
    .expect("disagg run");

    let mut table = Table::new(vec![
        "Deployment",
        "TTFT att %",
        "p99 TTFT ms",
        "TPOT att %",
        "Goodput tok/s",
    ]);
    for (name, report) in [
        ("colocated 4x", colocated.report()),
        ("disagg 1p+3d", disagg.report()),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.1}", report.ttft_attainment_pct),
            format!("{:.0}", report.p99_ttft_ms),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
        ]);
    }
    println!("{}", table.render());

    let mut pools = Table::new(vec!["Replica", "Requests", "Detail"]);
    for p in &disagg.per_prefill {
        pools.row(vec![
            format!("prefill-{}", p.replica),
            p.routed.to_string(),
            format!(
                "{} prompts prefilled, {} tokens",
                p.prefilled_requests, p.prefill_tokens
            ),
        ]);
    }
    for d in &disagg.per_decode {
        let report = d.result.report();
        pools.row(vec![
            format!("decode-{}", d.replica),
            d.routed.to_string(),
            format!(
                "TTFT att {:.1}%, p99 TPOT {:.1} ms",
                report.ttft_attainment_pct, report.p99_tpot_ms
            ),
        ]);
    }
    println!(
        "Disaggregated pools (decode-2 drained for the middle third):\n{}",
        pools.render()
    );
    println!(
        "KV migration: {} transfers, {:.1} MB total, {:.2} ms mean link time\n\
         — transfers overlap decode; only the migrating request waits.",
        disagg.transfers.transfers,
        disagg.transfers.bytes as f64 / 1e6,
        disagg.transfers.mean_transfer_ms(),
    );
    println!(
        "Dedicated prefill replicas remove prefill/decode interference:\n\
         interactive prompts stop queueing behind verification batches,\n\
         at the price of a KV transfer the NVLink fabric absorbs."
    );
}
