//! Closed-loop autoscaling through a flash crowd, with and without a
//! weighted-fair front door.
//!
//! A two-tenant scenario — a paying "pro" tenant sending latency-critical
//! coding traffic with a 4x fair-share weight, and a "free" tier flooding
//! twice the volume of relaxed chat/summarization — rides a flash crowd
//! on an autoscaled fleet. The same PI controller serves the trace twice:
//! once behind plain FIFO admission, once behind the weighted-fair front
//! door, so the printout shows what the weight actually buys the pro
//! tenant when the crowd hits, and what the elasticity costs next to
//! statically provisioning the full fleet.
//!
//! ```sh
//! cargo run --release --example autoscale_serving
//! ```

use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::metrics::Table;
use adaserve::scenario::{
    ArrivalProcess, AutoScaler, AutoScalerConfig, FairFrontDoor, Scenario, ScenarioWorkload,
    TenantSpec,
};
use adaserve::serving::{Deployment, RunReport, ServeSession, ServingEngine, SystemConfig};
use adaserve::workload::{env_seed, smoke_scale, CategoryMix};

/// Fleet ceiling; the controller scales between 1 and this.
const MAX_REPLICAS: usize = 3;

fn fleet(seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..MAX_REPLICAS)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

/// One autoscaled run over `deploy`: the controller consumes gauge ticks
/// during the run and issues drain/join plans back into the live
/// session. Returns the report plus the controller's bill.
fn autoscaled<D: Deployment>(
    deploy: D,
    sw: &ScenarioWorkload,
) -> (RunReport, f64, usize, u32, u32) {
    let mut session = ServeSession::new(deploy)
        .with_gauge_events()
        .with_gauge_tick_ms(250.0);
    let mut scaler = AutoScaler::new(AutoScalerConfig {
        max_replicas: MAX_REPLICAS,
        target_queue_per_replica: 6.0,
        cooldown_ms: 500.0,
        ..AutoScalerConfig::default()
    });
    for plan in scaler.initial_plans() {
        session.scale_at(plan.at_ms, plan.replica, plan.action);
    }
    session.enqueue(&sw.workload);
    let report = session
        .serve_online(|event, handle| {
            if let Some(plan) = scaler.observe(event) {
                handle.scale_at(plan.at_ms, plan.replica, plan.action);
            }
        })
        .expect("autoscaled run");
    let hours = scaler.replica_hours(report.end_ms);
    let (joins, drains) = scaler.actions();
    (report, hours, scaler.peak_active(), joins, drains)
}

/// Appends one per-tenant attainment row per tenant to `table`.
fn tenant_rows(table: &mut Table, label: &str, sw: &ScenarioWorkload, report: &RunReport) {
    for t in &sw.fairness_report(report).tenants {
        table.row(vec![
            label.to_string(),
            sw.tenants[t.tenant].name.clone(),
            t.requests.to_string(),
            format!("{:.1}", t.attainment_pct()),
        ]);
    }
}

fn main() {
    let seed = env_seed(17);
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace.
    let (rps, duration_ms) = smoke_scale(2.5, 30_000.0);
    let at_ms = duration_ms / 3.0;

    let sw = Scenario::new(seed, SystemConfig::llama70b(seed).baseline_ms)
        .process(ArrivalProcess::FlashCrowd {
            rps,
            at_ms,
            magnitude: 8.0,
            decay_ms: duration_ms / 6.0,
        })
        .duration_ms(duration_ms)
        .users(100)
        // Cap session regrowth so coding TTFT stays attainable at all.
        .max_context(1_536)
        .tenants(vec![
            TenantSpec::new("pro")
                .share(1.0)
                .weight(4.0)
                .mix(CategoryMix::new(1.0, 0.0, 0.0)),
            TenantSpec::new("free")
                .share(2.0)
                .weight(1.0)
                .mix(CategoryMix::new(0.0, 0.25, 0.75)),
        ])
        .build();
    println!(
        "Scenario: {} — 8x flash crowd at {:.1}s, {} unique users, fleet of {MAX_REPLICAS}\n",
        sw.workload.description,
        at_ms / 1e3,
        sw.unique_users(),
    );

    let mut bill = Table::new(vec![
        "Admission",
        "Attainment %",
        "Replica-hours",
        "Peak",
        "Joins",
        "Drains",
    ]);
    let mut tenants = Table::new(vec!["Admission", "Tenant", "Requests", "Attainment %"]);

    // FIFO admission: requests hit the router in arrival order.
    let cluster = Cluster::new(fleet(seed), RouterKind::LeastOutstanding.build());
    let (report, hours, peak, joins, drains) = autoscaled(cluster, &sw);
    bill.row(vec![
        "fifo".into(),
        format!("{:.1}", report.report().attainment_pct),
        format!("{:.4}", hours),
        peak.to_string(),
        joins.to_string(),
        drains.to_string(),
    ]);
    tenant_rows(&mut tenants, "fifo", &sw, &report);

    // Weighted-fair admission: the front door holds the flooding tenant
    // back whenever the in-flight window fills, refilling by fair-share
    // weight instead of arrival order.
    let cluster = Cluster::new(fleet(seed), RouterKind::LeastOutstanding.build());
    let fair = FairFrontDoor::new(cluster, &sw.tenants, sw.tenant_table(), 3 * MAX_REPLICAS);
    let (report, hours, peak, joins, drains) = autoscaled(fair, &sw);
    bill.row(vec![
        "fair".into(),
        format!("{:.1}", report.report().attainment_pct),
        format!("{:.4}", hours),
        peak.to_string(),
        joins.to_string(),
        drains.to_string(),
    ]);
    tenant_rows(&mut tenants, "fair", &sw, &report);

    let static_hours = MAX_REPLICAS as f64 * report.end_ms / 3_600_000.0;
    println!("{}", bill.render());
    println!("Static provisioning of the full fleet would bill {static_hours:.4} replica-hours.\n");
    println!("{}", tenants.render());
    println!(
        "Under FIFO the free tier's flood and the pro tenant queue as equals;\n\
         the weighted-fair door spends the crowd's wait on the traffic whose\n\
         multi-second TTFT budgets can absorb it, which is what the pro\n\
         tenant's 4x weight is buying."
    );
}
