//! Compare AdaServe against the baselines on one multi-SLO trace.
//!
//! Reproduces a single column of the paper's Fig. 8/9 interactively:
//! the same bursty workload is served by every engine and the per-system
//! attainment/goodput (plus per-category violations) are tabulated.
//!
//! ```sh
//! cargo run --release --example multi_slo_comparison
//! ```

use adaserve::baselines::{SarathiEngine, VllmEngine, VllmSpecEngine};
use adaserve::core::AdaServeEngine;
use adaserve::metrics::Table;
use adaserve::serving::{Colocated, ServeSession, ServingEngine, SystemConfig};
use adaserve::workload::{env_seed, smoke_scale, Category, WorkloadBuilder};

fn main() {
    // ADASERVE_SEED overrides both the deployment and workload seeds.
    let seed = env_seed(11);
    let make_config = || SystemConfig::llama70b(seed);
    let config = make_config();
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace to a
    // few seconds so every engine still runs end to end, just briefly.
    let (rps, duration_ms) = smoke_scale(4.0, 90_000.0);
    let workload = WorkloadBuilder::new(env_seed(3), config.baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();
    println!("Workload: {}\n", workload.description);

    let engines: Vec<Box<dyn ServingEngine>> = vec![
        Box::new(AdaServeEngine::new(make_config())),
        Box::new(VllmEngine::new(make_config())),
        Box::new(SarathiEngine::new(make_config())),
        Box::new(VllmSpecEngine::new(make_config(), 4)),
        Box::new(VllmSpecEngine::new(make_config(), 8)),
    ];

    let mut table = Table::new(vec![
        "Engine",
        "Attainment %",
        "Goodput tok/s",
        "coding viol%",
        "chat viol%",
        "summ viol%",
    ]);
    for engine in engines {
        let result = ServeSession::new(Colocated::new(engine))
            .serve(&workload)
            .expect("run");
        let report = result.report();
        let viol = |c: Category| {
            report
                .category(c)
                .map(|r| format!("{:.1}", r.violation_pct))
                .unwrap_or_else(|| "-".into())
        };
        table.row(vec![
            result.deployment.clone(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
            viol(Category::CodingCopilot),
            viol(Category::Chatbot),
            viol(Category::Summarization),
        ]);
    }
    println!("{}", table.render());
    println!(
        "AdaServe prioritizes the tight-SLO coding requests via SLO-customized\n\
         selection while spending leftover verification budget on everyone else."
    );
}
