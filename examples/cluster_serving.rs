//! Multi-replica cluster serving: a heterogeneous fleet behind a router.
//!
//! Four replicas — two AdaServe engines (one on the paper's 4×A100
//! profile, one on the H100 what-if profile) plus two baselines — serve
//! one bursty multi-SLO trace under each routing policy. Mid-run, one
//! replica drains (elastic scale-down) and later rejoins, so the routers
//! are also exercised against topology changes.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```

use adaserve::baselines::{SarathiEngine, VllmSpecEngine};
use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::metrics::Table;
use adaserve::roofline::Testbed;
use adaserve::serving::{
    ExecMode, ReplicaAddr, ScalingAction, ServeSession, ServingEngine, SystemConfig,
};
use adaserve::workload::{env_seed, smoke_scale, WorkloadBuilder};

/// Two AdaServe replicas (A100 + H100 profiles) and two baseline replicas.
fn fleet(seed: u64) -> Vec<Box<dyn ServingEngine>> {
    vec![
        Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))),
        Box::new(AdaServeEngine::new(SystemConfig::new(
            Testbed::llama70b_h100(),
            seed,
        ))),
        Box::new(VllmSpecEngine::new(SystemConfig::llama70b(seed), 4)),
        Box::new(SarathiEngine::new(SystemConfig::llama70b(seed))),
    ]
}

fn main() {
    let seed = env_seed(17);
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace.
    let (rps, duration_ms) = smoke_scale(10.0, 60_000.0);
    // Baseline-relative SLOs resolve against the fleet's slowest profile.
    let baseline_ms = adaserve::cluster::max_baseline_ms(&fleet(seed));
    let workload = WorkloadBuilder::new(seed, baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();
    println!("Workload: {} across 4 replicas\n", workload.description);

    let mut policy_table = Table::new(vec![
        "Router",
        "Attainment %",
        "Goodput tok/s",
        "p99 TPOT ms",
        "Requests/replica",
    ]);
    let mut last_cluster_report = None;
    for kind in RouterKind::ALL {
        // Replica 3 scales down for the middle third of the run: the
        // drain/join timeline lives on the session, not the cluster.
        // Replicas step on the persistent sharded executor (the default);
        // any ExecMode yields byte-identical records.
        let mut session = ServeSession::new(Cluster::new(fleet(seed), kind.build()))
            .with_exec_mode(ExecMode::Sharded { workers: None });
        session.scale_at(
            duration_ms / 3.0,
            ReplicaAddr::serving(3),
            ScalingAction::Drain,
        );
        session.scale_at(
            2.0 * duration_ms / 3.0,
            ReplicaAddr::serving(3),
            ScalingAction::Join,
        );
        let result = session.serve(&workload).expect("cluster run");
        let report = result.report();
        let shares: Vec<String> = result.units.iter().map(|u| u.routed.to_string()).collect();
        policy_table.row(vec![
            result.deployment.clone(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
            format!("{:.1}", report.p99_tpot_ms),
            shares.join("/"),
        ]);
        if kind == RouterKind::SloAware {
            last_cluster_report = Some(result.cluster_report());
        }
    }
    println!("{}", policy_table.render());

    let cluster_report = last_cluster_report.expect("slo-aware ran");
    let mut replica_table = Table::new(vec!["Replica", "Requests", "Attainment %", "p99 TPOT ms"]);
    for (label, report) in &cluster_report.per_replica {
        replica_table.row(vec![
            label.clone(),
            report.requests.to_string(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.1}", report.p99_tpot_ms),
        ]);
    }
    println!(
        "Per-replica detail under the slo-aware router (replica 3 drained\n\
         for the middle third of the run):\n{}",
        replica_table.render()
    );
    println!(
        "The slo-aware router keeps tight-TPOT requests on drained, fast\n\
         replicas and packs summarization traffic, the cluster analogue of\n\
         the paper's two-phase verification-budget split."
    );
}
