//! Multi-replica cluster serving: a heterogeneous fleet behind a router.
//!
//! Four replicas — two AdaServe engines (one on the paper's 4×A100
//! profile, one on the H100 what-if profile) plus two baselines — serve
//! one bursty multi-SLO trace under each routing policy. Mid-run, one
//! replica drains (elastic scale-down) and later rejoins, so the routers
//! are also exercised against topology changes.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```

use adaserve::baselines::{SarathiEngine, VllmSpecEngine};
use adaserve::cluster::{Cluster, RouterKind, ScalingAction, ScalingEvent};
use adaserve::core::AdaServeEngine;
use adaserve::metrics::Table;
use adaserve::roofline::Testbed;
use adaserve::serving::{RunOptions, ServingEngine, SystemConfig};
use adaserve::workload::{env_seed, WorkloadBuilder};

/// Two AdaServe replicas (A100 + H100 profiles) and two baseline replicas.
fn fleet(seed: u64) -> Vec<Box<dyn ServingEngine>> {
    vec![
        Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))),
        Box::new(AdaServeEngine::new(SystemConfig::new(
            Testbed::llama70b_h100(),
            seed,
        ))),
        Box::new(VllmSpecEngine::new(SystemConfig::llama70b(seed), 4)),
        Box::new(SarathiEngine::new(SystemConfig::llama70b(seed))),
    ]
}

fn main() {
    let seed = env_seed(17);
    // ADASERVE_SMOKE=1 (set by the CI smoke tests) shrinks the trace.
    let (rps, duration_ms) = if std::env::var_os("ADASERVE_SMOKE").is_some() {
        (4.0, 3_000.0)
    } else {
        (10.0, 60_000.0)
    };
    // Baseline-relative SLOs resolve against the fleet's slowest profile.
    let baseline_ms = adaserve::cluster::max_baseline_ms(&fleet(seed));
    let workload = WorkloadBuilder::new(seed, baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();
    println!("Workload: {} across 4 replicas\n", workload.description);

    // Replica 3 scales down for the middle third of the run.
    let events = vec![
        ScalingEvent {
            at_ms: duration_ms / 3.0,
            replica: 3,
            action: ScalingAction::Drain,
        },
        ScalingEvent {
            at_ms: 2.0 * duration_ms / 3.0,
            replica: 3,
            action: ScalingAction::Join,
        },
    ];

    let mut policy_table = Table::new(vec![
        "Router",
        "Attainment %",
        "Goodput tok/s",
        "p99 TPOT ms",
        "Requests/replica",
    ]);
    let mut last_cluster_report = None;
    for kind in RouterKind::ALL {
        let result = Cluster::new(fleet(seed), kind.build())
            .with_events(events.clone())
            .run(&workload, RunOptions::default())
            .expect("cluster run");
        let report = result.report();
        let shares: Vec<String> = result
            .per_replica
            .iter()
            .map(|r| r.routed.to_string())
            .collect();
        policy_table.row(vec![
            result.router.clone(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
            format!("{:.1}", report.p99_tpot_ms),
            shares.join("/"),
        ]);
        if kind == RouterKind::SloAware {
            last_cluster_report = Some(result.cluster_report());
        }
    }
    println!("{}", policy_table.render());

    let cluster_report = last_cluster_report.expect("slo-aware ran");
    let mut replica_table = Table::new(vec!["Replica", "Requests", "Attainment %", "p99 TPOT ms"]);
    for (label, report) in &cluster_report.per_replica {
        replica_table.row(vec![
            label.clone(),
            report.requests.to_string(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.1}", report.p99_tpot_ms),
        ]);
    }
    println!(
        "Per-replica detail under the slo-aware router (replica 3 drained\n\
         for the middle third of the run):\n{}",
        replica_table.render()
    );
    println!(
        "The slo-aware router keeps tight-TPOT requests on drained, fast\n\
         replicas and packs summarization traffic, the cluster analogue of\n\
         the paper's two-phase verification-budget split."
    );
}
