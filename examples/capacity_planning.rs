//! Capacity planning with the roofline model.
//!
//! Uses the hardware profiler to answer deployment questions without GPUs:
//! how does verification latency scale with the token budget, where is the
//! memory→compute knee, and how do budgets differ across GPU generations?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use adaserve::metrics::Table;
use adaserve::roofline::{
    BudgetPolicy, GpuSpec, LatencyCurve, LatencyModel, ModelSpec, TokenBudgetProfile,
};

fn main() {
    // ---- Latency curve for the paper's Llama testbed. ----
    let target = LatencyModel::llama70b_4xa100();
    let draft = LatencyModel::new(ModelSpec::llama_1b(), GpuSpec::a100_80g(), 1);
    let curve = LatencyCurve::sweep(&target, 512, 2048, 16);
    println!("== Verification latency vs batched tokens (70B, 4xA100, ctx 512) ==\n");
    let mut t = Table::new(vec!["tokens", "latency (ms)", "throughput (tok/s)"]);
    for p in curve.points().iter().step_by(4) {
        t.row(vec![
            p.tokens.to_string(),
            format!("{:.1}", p.latency_ms),
            format!("{:.0}", p.tokens_per_sec),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Roofline knee (memory→compute crossover): {} tokens\n",
        target.roofline_knee_tokens(512)
    );

    // ---- Budget policies on one GPU. ----
    println!("== Token budgets by policy (70B / 4xA100) ==\n");
    let mut t = Table::new(vec!["policy", "verify budget B", "verify latency (ms)"]);
    for (name, policy) in [
        ("stretch 1.2x", BudgetPolicy::LatencyStretch(1.2)),
        ("stretch 1.5x", BudgetPolicy::LatencyStretch(1.5)),
        ("stretch 2.5x", BudgetPolicy::LatencyStretch(2.5)),
        ("knee", BudgetPolicy::Knee),
    ] {
        let p = TokenBudgetProfile::profile(&target, &draft, 512, policy);
        t.row(vec![
            name.to_string(),
            p.verify_budget.to_string(),
            format!("{:.1}", p.verify_latency_ms),
        ]);
    }
    println!("{}", t.render());

    // ---- Cross-GPU what-if: same model on different devices. ----
    println!("== What-if: Qwen2.5-32B on different devices (TP=2) ==\n");
    let mut t = Table::new(vec![
        "GPU",
        "decode (ms)",
        "knee (tokens)",
        "budget @1.5x (tokens)",
    ]);
    for gpu in [GpuSpec::a100_80g(), GpuSpec::h100_80g(), GpuSpec::l40s()] {
        let lm = LatencyModel::new(ModelSpec::qwen_32b(), gpu, 2);
        let dr = LatencyModel::new(ModelSpec::qwen_05b(), gpu, 1);
        let pass =
            adaserve::roofline::ForwardPass::new(vec![adaserve::roofline::SeqWork::decode(512)]);
        let p = TokenBudgetProfile::profile(&lm, &dr, 512, BudgetPolicy::LatencyStretch(1.5));
        t.row(vec![
            gpu.name.to_string(),
            format!("{:.1}", lm.forward_latency_ms(&pass, true)),
            lm.roofline_knee_tokens(512).to_string(),
            p.verify_budget.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Faster memory (H100) shrinks decode latency; weaker bandwidth (L40S)\n\
         inflates it — while the knee tracks each device's compute/bandwidth balance,\n\
         which is exactly what AdaServe's hardware-aware budget adapts to."
    );
}
