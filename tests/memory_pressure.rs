//! Integration: failure injection — tiny KV pools force preemption storms;
//! conservation and accounting must hold throughout.

use adaserve::baselines::{SarathiEngine, VllmEngine, VllmSpecEngine};
use adaserve::core::AdaServeEngine;
use adaserve::serving::{
    BlockManager, Colocated, RunOptions, RunReport, ServeSession, ServingEngine, SystemConfig,
};
use adaserve::workload::{Category, RequestSpec, Workload};

fn pressure_workload(n: u64) -> Workload {
    let requests = (0..n)
        .map(|id| RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: id as f64 * 4.0,
            prompt_len: 40,
            output_len: 30,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: id ^ 0x77,
            prefix: None,
        })
        .collect();
    Workload {
        requests,
        description: "pressure".into(),
    }
}

fn squeeze(engine: &mut dyn ServingEngine, blocks: u64) {
    engine.core_mut().blocks = BlockManager::new(blocks, 16);
}

fn serve(engine: &mut dyn ServingEngine, wl: &Workload) -> RunReport {
    ServeSession::new(Colocated::borrowed(engine))
        .serve(wl)
        .unwrap_or_else(|e| panic!("{}: {e}", engine.name()))
}

#[test]
fn engines_survive_preemption_storms() {
    // Pool of 10 blocks × 16 tokens = 160 tokens; each request needs 70+ at
    // completion, so at most 2 fit — with 8 in flight, preemption churns.
    let wl = pressure_workload(8);
    let mut engines: Vec<Box<dyn ServingEngine>> = vec![
        Box::new(AdaServeEngine::new(SystemConfig::llama70b(4))),
        Box::new(VllmEngine::new(SystemConfig::llama70b(4))),
        Box::new(SarathiEngine::new(SystemConfig::llama70b(4))),
        Box::new(VllmSpecEngine::new(SystemConfig::llama70b(4), 4)),
    ];
    for engine in &mut engines {
        squeeze(engine.as_mut(), 10);
        let result = serve(engine.as_mut(), &wl);
        assert_eq!(result.records.len(), 8, "{} lost requests", engine.name());
        let preemptions: u32 = result.records.iter().map(|r| r.preemptions).sum();
        assert!(preemptions > 0, "{} should have preempted", engine.name());
        // Pool fully returned.
        let blocks = &engine.core().blocks;
        assert_eq!(
            blocks.free_blocks(),
            blocks.total_blocks(),
            "{}",
            engine.name()
        );
        blocks.validate().unwrap();
    }
}

#[test]
fn preempted_requests_still_produce_correct_token_counts() {
    let wl = pressure_workload(6);
    let mut engine = VllmEngine::new(SystemConfig::llama70b(4));
    squeeze(&mut engine, 8);
    let result = serve(&mut engine, &wl);
    for rec in &result.records {
        assert_eq!(rec.output_tokens, 30);
    }
}

#[test]
fn single_oversized_request_fits_or_errors_cleanly() {
    // A request whose context exceeds the entire pool can never be served;
    // the driver must fail with a clean stall/cap error, not hang or panic.
    let wl = Workload {
        requests: vec![RequestSpec {
            id: 0,
            category: Category::Summarization,
            arrival_ms: 0.0,
            prompt_len: 4000,
            output_len: 4,
            tpot_slo_ms: 150.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: 1,
            prefix: None,
        }],
        description: "oversized".into(),
    };
    let mut engine = VllmEngine::new(SystemConfig::llama70b(4));
    squeeze(&mut engine, 4); // 64-token pool vs 4000-token prompt
    let options = RunOptions {
        max_sim_ms: 60_000.0,
        max_iterations: 100_000,
        ..RunOptions::default()
    };
    // Legacy semantics (admission control off): the run errors out.
    let result = ServeSession::with_options(Colocated::borrowed(&mut engine), options)
        .admission_control(false)
        .serve(&wl);
    assert!(result.is_err(), "oversized request cannot be served");
    // Front-door default: the request is rejected up front and the run
    // completes cleanly (the online admission model's new capability).
    let mut engine = VllmEngine::new(SystemConfig::llama70b(4));
    squeeze(&mut engine, 4);
    let report = ServeSession::with_options(Colocated::borrowed(&mut engine), options)
        .serve(&wl)
        .expect("rejection keeps the run alive");
    assert!(report.records.is_empty());
    assert_eq!(report.rejected.len(), 1);
}
