//! Integration: speculative decoding is lossless.
//!
//! The defining guarantee of speculative decoding (paper §1: "a single
//! verification step ... to ensure lossless generation") is that the output
//! token stream is *identical* to plain auto-regressive decoding. In this
//! reproduction the target model's token at output position `k` of a request
//! is a pure function of `(stream, k)`, so the invariant is exactly testable:
//! the stream AdaServe commits must equal the reference chain sampled
//! directly from the target model.

use adaserve::core::AdaServeEngine;
use adaserve::serving::{ServingEngine, SystemConfig};
use adaserve::simllm::{sample_seeded, Lm, LmContext, TokenId};
use adaserve::workload::{Category, RequestSpec};

/// Reference: plain auto-regressive sampling of `n` output tokens.
fn reference_stream(config: &SystemConfig, spec: &RequestSpec, n: u32) -> Vec<TokenId> {
    let mut tokens = spec.prompt_tokens();
    let mut out = Vec::new();
    for k in 0..n {
        let ctx = LmContext::new(spec.stream_seed, spec.category.content_class(), &tokens);
        let dist = config.pair.target().next_dist(&ctx);
        let t = sample_seeded(&dist, spec.stream_seed, u64::from(k));
        tokens.push(t);
        out.push(t);
    }
    out
}

#[test]
fn adaserve_output_equals_autoregressive_reference() {
    let config = SystemConfig::llama70b(3);
    let specs: Vec<RequestSpec> = (0..4u64)
        .map(|id| RequestSpec {
            id,
            category: match id % 3 {
                0 => Category::CodingCopilot,
                1 => Category::Chatbot,
                _ => Category::Summarization,
            },
            arrival_ms: id as f64 * 3.0,
            prompt_len: 20,
            output_len: 24,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: 0xBEEF ^ id,
        })
        .collect();
    let references: Vec<Vec<TokenId>> = specs
        .iter()
        .map(|s| reference_stream(&config, s, s.output_len))
        .collect();

    // Serve with AdaServe, stepping manually so we can inspect the token
    // streams before requests finish and are drained.
    let mut engine = AdaServeEngine::new(config);
    for spec in &specs {
        engine.core_mut().on_arrival(spec.clone());
    }
    let mut now = 0.0;
    let mut max_observed = vec![0usize; specs.len()];
    for _ in 0..10_000 {
        // Compare generated prefixes of still-running requests.
        for r in &engine.core().running {
            let id = r.spec.id as usize;
            let generated = r.generated() as usize;
            if generated > 0 {
                let got: Vec<TokenId> = r.tokens()[r.tokens().len() - generated..].to_vec();
                assert_eq!(
                    got,
                    references[id][..generated].to_vec(),
                    "request {id} diverged from the auto-regressive reference"
                );
                max_observed[id] = max_observed[id].max(generated);
            }
        }
        if !engine.core().has_work() {
            break;
        }
        let step = engine.step(now);
        now += step.latency_ms.max(1e-6);
    }
    assert!(!engine.core().has_work(), "engine did not finish");
    // A request's last observable prefix is at most one iteration (≤ d + 1
    // tokens) short of its full stream; everything up to there matched.
    for (id, &seen) in max_observed.iter().enumerate() {
        assert!(
            seen + 9 >= specs[id].output_len as usize,
            "request {id} observed only to {seen} of {}",
            specs[id].output_len
        );
    }
}
