//! Integration: speculative decoding is lossless, and the unified
//! `ServeSession` front door is output-equivalent to the legacy per-topology
//! entry points.
//!
//! The defining guarantee of speculative decoding (paper §1: "a single
//! verification step ... to ensure lossless generation") is that the output
//! token stream is *identical* to plain auto-regressive decoding. In this
//! reproduction the target model's token at output position `k` of a request
//! is a pure function of `(stream, k)`, so the invariant is exactly testable:
//! the stream AdaServe commits must equal the reference chain sampled
//! directly from the target model.
//!
//! The [`front_door_equivalence`] module pins the API redesign: the
//! deprecated `serving::run`, `Cluster::run` and `DisaggCluster::run` shims
//! must reproduce, record for record, what an explicitly-driven
//! `ServeSession` produces on the same seeded workloads.

use adaserve::core::AdaServeEngine;
use adaserve::serving::{ServingEngine, SystemConfig};
use adaserve::simllm::{sample_seeded, Lm, LmContext, TokenId};
use adaserve::workload::{Category, RequestSpec};

/// Reference: plain auto-regressive sampling of `n` output tokens.
fn reference_stream(config: &SystemConfig, spec: &RequestSpec, n: u32) -> Vec<TokenId> {
    let mut tokens = spec.prompt_tokens();
    let mut out = Vec::new();
    for k in 0..n {
        let ctx = LmContext::new(spec.stream_seed, spec.category.content_class(), &tokens);
        let dist = config.pair.target().next_dist(&ctx);
        let t = sample_seeded(&dist, spec.stream_seed, u64::from(k));
        tokens.push(t);
        out.push(t);
    }
    out
}

#[test]
fn adaserve_output_equals_autoregressive_reference() {
    let config = SystemConfig::llama70b(3);
    let specs: Vec<RequestSpec> = (0..4u64)
        .map(|id| RequestSpec {
            id,
            category: match id % 3 {
                0 => Category::CodingCopilot,
                1 => Category::Chatbot,
                _ => Category::Summarization,
            },
            arrival_ms: id as f64 * 3.0,
            prompt_len: 20,
            output_len: 24,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: 0xBEEF ^ id,
            prefix: None,
        })
        .collect();
    let references: Vec<Vec<TokenId>> = specs
        .iter()
        .map(|s| reference_stream(&config, s, s.output_len))
        .collect();

    // Serve with AdaServe, stepping manually so we can inspect the token
    // streams before requests finish and are drained.
    let mut engine = AdaServeEngine::new(config);
    for spec in &specs {
        engine.core_mut().on_arrival(spec.clone());
    }
    let mut now = 0.0;
    let mut max_observed = vec![0usize; specs.len()];
    for _ in 0..10_000 {
        // Compare generated prefixes of still-running requests.
        for r in &engine.core().running {
            let id = r.spec.id as usize;
            let generated = r.generated() as usize;
            if generated > 0 {
                let got: Vec<TokenId> = r.tokens()[r.tokens().len() - generated..].to_vec();
                assert_eq!(
                    got,
                    references[id][..generated].to_vec(),
                    "request {id} diverged from the auto-regressive reference"
                );
                max_observed[id] = max_observed[id].max(generated);
            }
        }
        if !engine.core().has_work() {
            break;
        }
        let step = engine.step(now);
        now += step.latency_ms.max(1e-6);
    }
    assert!(!engine.core().has_work(), "engine did not finish");
    // A request's last observable prefix is at most one iteration (≤ d + 1
    // tokens) short of its full stream; everything up to there matched.
    for (id, &seen) in max_observed.iter().enumerate() {
        assert!(
            seen + 9 >= specs[id].output_len as usize,
            "request {id} observed only to {seen} of {}",
            specs[id].output_len
        );
    }
}

/// Sharded replica stepping must be a pure wall-clock optimization:
/// replicas only interact at the session's submit/scale points, so
/// batch-stepping them — inline or on the persistent sharded executor,
/// with any worker count — must reproduce sequential stepping's output
/// byte for byte: records, per-replica routing shares, iteration counts,
/// end clocks. Every [`ExecMode`] is swept here, including worker counts
/// above the replica count and a mid-run drain/join scaling timeline.
mod parallel_stepping_equivalence {
    use adaserve::cluster::{Cluster, RouterKind, ScalingAction};
    use adaserve::core::AdaServeEngine;
    use adaserve::disagg::{DisaggCluster, Dispatcher, KvLink, PrefillPool};
    use adaserve::serving::{
        ExecMode, ReplicaAddr, RunReport, ServeSession, ServingEngine, SystemConfig,
    };
    use adaserve::workload::WorkloadBuilder;

    /// Every mode shape worth pinning: strictly sequential, auto-sharded
    /// (the default), inline single-worker, a real multi-worker pool, and
    /// more workers than replicas (empty shards must steal, not break).
    const MODES: [ExecMode; 5] = [
        ExecMode::Sequential,
        ExecMode::Sharded { workers: None },
        ExecMode::Sharded { workers: Some(1) },
        ExecMode::Sharded { workers: Some(2) },
        ExecMode::Sharded { workers: Some(16) },
    ];

    fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
        (0..n)
            .map(|_| {
                Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed)))
                    as Box<dyn ServingEngine>
            })
            .collect()
    }

    fn assert_identical(got: RunReport, reference: &RunReport, mode: ExecMode) {
        let label = mode.label();
        assert_eq!(
            got.records, reference.records,
            "{label}: merged records must be byte-identical"
        );
        assert_eq!(got.end_ms, reference.end_ms, "{label}: end clock");
        assert_eq!(got.iterations, reference.iterations, "{label}: iterations");
        let got_shares: Vec<u64> = got.units.iter().map(|u| u.routed).collect();
        let ref_shares: Vec<u64> = reference.units.iter().map(|u| u.routed).collect();
        assert_eq!(got_shares, ref_shares, "{label}: same routing decisions");
        for (g, r) in got.units.iter().zip(reference.units.iter()) {
            assert_eq!(
                g.result.records, r.result.records,
                "{label}: unit {} record stream",
                g.replica
            );
        }
    }

    #[test]
    fn cluster_stepping_matches_sequential_for_every_exec_mode() {
        let baseline_ms = SystemConfig::llama70b(7).baseline_ms;
        // ADASERVE_SEED-style seeding: the builder seed pins the workload.
        let wl = WorkloadBuilder::new(adaserve::workload::env_seed(41), baseline_ms)
            .target_rps(4.0)
            .duration_ms(10_000.0)
            .build();
        let run = |mode: ExecMode| {
            ServeSession::new(
                Cluster::new(engines(3, 7), RouterKind::SloAware.build()).with_exec_mode(mode),
            )
            .serve(&wl)
            .unwrap_or_else(|e| panic!("{} run: {e}", mode.label()))
        };
        let reference = run(ExecMode::Sequential);
        for mode in MODES {
            assert_identical(run(mode), &reference, mode);
        }
    }

    /// Mid-run drain/join events are synchronization points the executor
    /// must respect: the batch horizon stops at each scaling timestamp,
    /// so routing (and therefore output) stays identical across modes
    /// even while the fleet shrinks and regrows.
    #[test]
    fn cluster_stepping_matches_sequential_across_mid_run_scaling() {
        let baseline_ms = SystemConfig::llama70b(7).baseline_ms;
        let wl = WorkloadBuilder::new(adaserve::workload::env_seed(47), baseline_ms)
            .target_rps(4.0)
            .duration_ms(10_000.0)
            .build();
        let run = |mode: ExecMode| {
            let mut session = ServeSession::new(
                Cluster::new(engines(3, 7), RouterKind::SloAware.build()).with_exec_mode(mode),
            );
            session.scale_at(2_500.0, ReplicaAddr::serving(1), ScalingAction::Drain);
            session.scale_at(6_000.0, ReplicaAddr::serving(1), ScalingAction::Join);
            session.scale_at(7_500.0, ReplicaAddr::serving(2), ScalingAction::Drain);
            session
                .serve(&wl)
                .unwrap_or_else(|e| panic!("{} scaled run: {e}", mode.label()))
        };
        let reference = run(ExecMode::Sequential);
        for mode in MODES {
            assert_identical(run(mode), &reference, mode);
        }
    }

    #[test]
    fn disagg_stepping_matches_sequential_for_every_exec_mode() {
        let baseline_ms = SystemConfig::llama70b(7).baseline_ms;
        let wl = WorkloadBuilder::new(adaserve::workload::env_seed(43), baseline_ms)
            .target_rps(4.0)
            .duration_ms(10_000.0)
            .build();
        let run = |mode: ExecMode| {
            let disagg = DisaggCluster::new(
                PrefillPool::new(vec![SystemConfig::llama70b(7)]),
                engines(2, 7),
                Dispatcher::new(RouterKind::SloAware.build()),
                KvLink::new(300.0, 0.05),
            )
            .with_exec_mode(mode);
            ServeSession::new(disagg)
                .serve(&wl)
                .unwrap_or_else(|e| panic!("{} run: {e}", mode.label()))
        };
        let reference = run(ExecMode::Sequential);
        for mode in MODES {
            assert_identical(run(mode), &reference, mode);
        }
    }

    /// The session-level mode (`ServeSession::with_exec_mode`, what
    /// `RunOptions.exec` carries) is equivalent to the driver-level
    /// override, and the deprecated boolean builder still maps onto the
    /// same two modes.
    #[test]
    fn session_level_exec_mode_and_deprecated_builder_agree() {
        let baseline_ms = SystemConfig::llama70b(7).baseline_ms;
        let wl = WorkloadBuilder::new(adaserve::workload::env_seed(53), baseline_ms)
            .target_rps(4.0)
            .duration_ms(6_000.0)
            .build();
        let cluster = || Cluster::new(engines(3, 7), RouterKind::SloAware.build());
        let via_session = ServeSession::new(cluster())
            .with_exec_mode(ExecMode::Sequential)
            .serve(&wl)
            .expect("session-level sequential");
        let via_driver = ServeSession::new(cluster().with_exec_mode(ExecMode::Sequential))
            .serve(&wl)
            .expect("driver-level sequential");
        #[allow(deprecated)] // the legacy builder under test
        let via_legacy = ServeSession::new(cluster().with_parallel_stepping(false))
            .serve(&wl)
            .expect("legacy sequential");
        assert_identical(via_session, &via_driver, ExecMode::Sequential);
        assert_identical(via_legacy, &via_driver, ExecMode::Sequential);
    }
}

mod front_door_equivalence {
    use adaserve::baselines::{SarathiEngine, VllmEngine};
    use adaserve::cluster::{Cluster, RouterKind, ScalingAction, ScalingEvent};
    use adaserve::core::AdaServeEngine;
    use adaserve::disagg::{
        DisaggCluster, DisaggScalingEvent, Dispatcher, KvLink, Pool, PrefillPool,
    };
    use adaserve::serving::{
        Colocated, ReplicaAddr, RunOptions, ServeSession, ServingEngine, SystemConfig,
    };
    use adaserve::workload::{Workload, WorkloadBuilder};

    fn workload(seed: u64, baseline_ms: f64) -> Workload {
        WorkloadBuilder::new(seed, baseline_ms)
            .target_rps(3.0)
            .duration_ms(12_000.0)
            .build()
    }

    fn fleet(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed)))
                    as Box<dyn ServingEngine>,
                1 => Box::new(VllmEngine::new(SystemConfig::llama70b(seed))),
                _ => Box::new(SarathiEngine::new(SystemConfig::llama70b(seed))),
            })
            .collect()
    }

    #[test]
    fn colocated_shim_matches_serve_session() {
        let config = SystemConfig::llama70b(13);
        let wl = workload(31, config.baseline_ms);

        #[allow(deprecated)] // the legacy entry point under test
        let legacy = adaserve::serving::run(
            &mut AdaServeEngine::new(SystemConfig::llama70b(13)),
            &wl,
            RunOptions::default(),
        )
        .expect("legacy run");

        let session = ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(
            SystemConfig::llama70b(13),
        ))))
        .serve(&wl)
        .expect("session run");

        assert_eq!(legacy.records, session.records, "same completion records");
        assert_eq!(legacy.report(), session.report(), "same SloReport");
        assert_eq!(legacy.end_ms, session.end_ms);
        assert_eq!(legacy.iterations, session.iterations);
        assert_eq!(
            legacy.mean_accepted_per_verify,
            session.mean_accepted_per_verify()
        );
    }

    #[test]
    fn cluster_shim_matches_serve_session() {
        let baseline_ms = SystemConfig::llama70b(13).baseline_ms;
        let wl = workload(32, baseline_ms);
        let events = vec![
            ScalingEvent {
                at_ms: 3_000.0,
                replica: 1,
                action: ScalingAction::Drain,
            },
            ScalingEvent {
                at_ms: 7_000.0,
                replica: 1,
                action: ScalingAction::Join,
            },
        ];

        #[allow(deprecated)] // the legacy entry point under test
        let legacy = Cluster::new(fleet(3, 13), RouterKind::SloAware.build())
            .with_events(events.clone())
            .run(&wl, RunOptions::default())
            .expect("legacy cluster run");

        let mut session =
            ServeSession::new(Cluster::new(fleet(3, 13), RouterKind::SloAware.build()));
        for e in &events {
            session.scale_at(e.at_ms, ReplicaAddr::serving(e.replica), e.action);
        }
        let report = session.serve(&wl).expect("session cluster run");

        assert_eq!(legacy.records, report.records, "same merged records");
        assert_eq!(legacy.report(), report.report(), "same SloReport");
        assert_eq!(legacy.router, report.deployment);
        assert_eq!(legacy.end_ms, report.end_ms);
        assert_eq!(legacy.iterations, report.iterations);
        let legacy_shares: Vec<u64> = legacy.per_replica.iter().map(|r| r.routed).collect();
        let session_shares: Vec<u64> = report.units.iter().map(|u| u.routed).collect();
        assert_eq!(legacy_shares, session_shares, "same routing decisions");
        for (l, s) in legacy.per_replica.iter().zip(report.units.iter()) {
            assert_eq!(l.result.records, s.result.records, "replica {}", l.replica);
        }
    }

    #[test]
    fn disagg_shim_matches_serve_session() {
        let baseline_ms = SystemConfig::llama70b(13).baseline_ms;
        let wl = workload(33, baseline_ms);
        let events = vec![DisaggScalingEvent {
            at_ms: 4_000.0,
            pool: Pool::Decode,
            replica: 1,
            action: ScalingAction::Drain,
        }];
        let build = || {
            DisaggCluster::new(
                PrefillPool::new(vec![SystemConfig::llama70b(13)]),
                fleet(2, 13),
                Dispatcher::new(RouterKind::SloAware.build()),
                KvLink::new(300.0, 0.05),
            )
        };

        #[allow(deprecated)] // the legacy entry point under test
        let legacy = build()
            .with_events(events.clone())
            .run(&wl, RunOptions::default())
            .expect("legacy disagg run");

        let mut session = ServeSession::new(build());
        for e in &events {
            session.scale_at(
                e.at_ms,
                ReplicaAddr {
                    pool: e.pool,
                    index: e.replica,
                },
                e.action,
            );
        }
        let report = session.serve(&wl).expect("session disagg run");
        let transfers = session.into_inner().transfer_stats();

        assert_eq!(legacy.records, report.records, "same merged records");
        assert_eq!(legacy.report(), report.report(), "same SloReport");
        assert_eq!(legacy.decode_router, report.deployment);
        assert_eq!(legacy.end_ms, report.end_ms);
        assert_eq!(legacy.iterations, report.iterations);
        assert_eq!(legacy.transfers, transfers, "same migration telemetry");
        let legacy_pre: Vec<u64> = legacy.per_prefill.iter().map(|p| p.routed).collect();
        let session_pre: Vec<u64> = report.prefill_units().map(|u| u.routed).collect();
        assert_eq!(legacy_pre, session_pre, "same prefill dispatch");
        let legacy_dec: Vec<u64> = legacy.per_decode.iter().map(|r| r.routed).collect();
        let session_dec: Vec<u64> = report.serving_units().map(|u| u.routed).collect();
        assert_eq!(legacy_dec, session_dec, "same decode handoff");
    }

    #[test]
    fn single_replica_cluster_matches_colocated_session() {
        // Cross-topology sanity: the trivial cluster degenerates to the
        // colocated deployment, record for record.
        let baseline_ms = SystemConfig::llama70b(13).baseline_ms;
        let wl = workload(34, baseline_ms);
        let as_cluster = ServeSession::new(Cluster::new(
            vec![Box::new(AdaServeEngine::new(SystemConfig::llama70b(13)))],
            RouterKind::RoundRobin.build(),
        ))
        .serve(&wl)
        .expect("cluster run");
        let as_colocated = ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(
            SystemConfig::llama70b(13),
        ))))
        .serve(&wl)
        .expect("colocated run");
        assert_eq!(as_cluster.records, as_colocated.records);
        assert_eq!(as_cluster.report(), as_colocated.report());
    }
}

/// Tracing is observation, not behaviour: serving with the ring tracer
/// live (or explicitly disabled) must reproduce the untraced run record
/// for record, across every deployment topology. This pins the
/// acceptance criterion of the telemetry layer — `Tracer::record` calls
/// sit inside the serving hot loop and must never perturb scheduling,
/// routing, or token streams.
mod tracing_equivalence {
    use adaserve::cluster::{Cluster, RouterKind};
    use adaserve::core::AdaServeEngine;
    use adaserve::disagg::{DisaggCluster, Dispatcher, KvLink, PrefillPool};
    use adaserve::metrics::telemetry::Tracer;
    use adaserve::serving::{
        Colocated, Deployment, RunReport, ServeSession, ServingEngine, SystemConfig,
    };
    use adaserve::workload::{Workload, WorkloadBuilder};

    fn workload(seed: u64) -> Workload {
        let baseline_ms = SystemConfig::llama70b(9).baseline_ms;
        WorkloadBuilder::new(seed, baseline_ms)
            .target_rps(4.0)
            .duration_ms(10_000.0)
            .build()
    }

    fn engines(n: usize) -> Vec<Box<dyn ServingEngine>> {
        (0..n)
            .map(|_| {
                Box::new(AdaServeEngine::new(SystemConfig::llama70b(9))) as Box<dyn ServingEngine>
            })
            .collect()
    }

    fn assert_tracing_invisible<D: Deployment, F: Fn() -> D>(build: F, wl: &Workload) {
        let untraced = ServeSession::new(build()).serve(wl).expect("untraced run");
        let off = ServeSession::new(build())
            .with_tracer(Tracer::off())
            .serve(wl)
            .expect("tracer=off run");
        let on_tracer = Tracer::on();
        let on = ServeSession::new(build())
            .with_tracer(on_tracer.clone())
            .serve(wl)
            .expect("tracer=on run");

        check(&untraced, &off, "tracer=off");
        check(&untraced, &on, "tracer=on");
        assert!(
            !on_tracer.snapshot().is_empty(),
            "the live tracer actually recorded events"
        );
    }

    fn check(reference: &RunReport, got: &RunReport, label: &str) {
        assert_eq!(
            reference.records, got.records,
            "{label}: records must be bit-identical to the untraced run"
        );
        assert_eq!(reference.end_ms, got.end_ms, "{label}: end clock");
        assert_eq!(reference.iterations, got.iterations, "{label}: iterations");
        let ref_shares: Vec<u64> = reference.units.iter().map(|u| u.routed).collect();
        let got_shares: Vec<u64> = got.units.iter().map(|u| u.routed).collect();
        assert_eq!(ref_shares, got_shares, "{label}: routing decisions");
    }

    #[test]
    fn colocated_records_identical_with_tracing_on_and_off() {
        let wl = workload(61);
        assert_tracing_invisible(
            || Colocated::new(Box::new(AdaServeEngine::new(SystemConfig::llama70b(9)))),
            &wl,
        );
    }

    #[test]
    fn cluster_records_identical_with_tracing_on_and_off() {
        let wl = workload(62);
        assert_tracing_invisible(
            || Cluster::new(engines(3), RouterKind::SloAware.build()),
            &wl,
        );
    }

    #[test]
    fn disagg_records_identical_with_tracing_on_and_off() {
        let wl = workload(63);
        assert_tracing_invisible(
            || {
                DisaggCluster::new(
                    PrefillPool::new(vec![SystemConfig::llama70b(9)]),
                    engines(2),
                    Dispatcher::new(RouterKind::SloAware.build()),
                    KvLink::new(300.0, 0.05),
                )
            },
            &wl,
        );
    }
}

/// The chaos layer is pay-for-what-you-use: a session built with an
/// *empty* [`FaultPlan`] and the default [`RecoveryPolicy`] must take the
/// exact legacy code path — records, end clock, iteration counts and
/// routing decisions bit-identical to a session that never heard of
/// faults. This pins the fault-injection subsystem's acceptance
/// criterion: fault-free runs are record-identical to the pre-chaos
/// output.
mod fault_free_equivalence {
    use adaserve::cluster::{Cluster, RouterKind};
    use adaserve::core::AdaServeEngine;
    use adaserve::disagg::{DisaggCluster, Dispatcher, KvLink, PrefillPool};
    use adaserve::serving::{
        Colocated, Deployment, FaultPlan, RecoveryPolicy, RunReport, ServeSession, ServingEngine,
        SystemConfig,
    };
    use adaserve::workload::{Workload, WorkloadBuilder};

    fn workload(seed: u64) -> Workload {
        let baseline_ms = SystemConfig::llama70b(9).baseline_ms;
        WorkloadBuilder::new(seed, baseline_ms)
            .target_rps(4.0)
            .duration_ms(10_000.0)
            .build()
    }

    fn engines(n: usize) -> Vec<Box<dyn ServingEngine>> {
        (0..n)
            .map(|_| {
                Box::new(AdaServeEngine::new(SystemConfig::llama70b(9))) as Box<dyn ServingEngine>
            })
            .collect()
    }

    fn assert_chaos_machinery_invisible<D: Deployment, F: Fn() -> D>(build: F, wl: &Workload) {
        let plain = ServeSession::new(build()).serve(wl).expect("plain run");
        let armed = ServeSession::new(build())
            .with_fault_plan(FaultPlan::new())
            .with_recovery_policy(RecoveryPolicy::default())
            .serve(wl)
            .expect("armed-but-empty run");
        check(&plain, &armed);
        assert_eq!(armed.retries_scheduled, 0, "nothing was ever lost");
        assert!(armed.rejected.is_empty(), "nothing was ever shed");
    }

    fn check(reference: &RunReport, got: &RunReport) {
        assert_eq!(
            reference.records, got.records,
            "records must be bit-identical to the session without a fault plan"
        );
        assert_eq!(reference.end_ms, got.end_ms, "end clock");
        assert_eq!(reference.iterations, got.iterations, "iterations");
        let ref_shares: Vec<u64> = reference.units.iter().map(|u| u.routed).collect();
        let got_shares: Vec<u64> = got.units.iter().map(|u| u.routed).collect();
        assert_eq!(ref_shares, got_shares, "routing decisions");
    }

    #[test]
    fn colocated_records_identical_with_empty_fault_plan() {
        let wl = workload(71);
        assert_chaos_machinery_invisible(
            || Colocated::new(Box::new(AdaServeEngine::new(SystemConfig::llama70b(9)))),
            &wl,
        );
    }

    #[test]
    fn cluster_records_identical_with_empty_fault_plan() {
        let wl = workload(72);
        assert_chaos_machinery_invisible(
            || Cluster::new(engines(3), RouterKind::SloAware.build()),
            &wl,
        );
    }

    #[test]
    fn disagg_records_identical_with_empty_fault_plan() {
        let wl = workload(73);
        assert_chaos_machinery_invisible(
            || {
                DisaggCluster::new(
                    PrefillPool::new(vec![SystemConfig::llama70b(9)]),
                    engines(2),
                    Dispatcher::new(RouterKind::SloAware.build()),
                    KvLink::new(300.0, 0.05),
                )
            },
            &wl,
        );
    }
}

mod prefix_cache_equivalence {
    use adaserve::core::AdaServeEngine;
    use adaserve::metrics::RequestRecord;
    use adaserve::serving::{Colocated, RunReport, ServeSession, SystemConfig};
    use adaserve::workload::{Workload, WorkloadBuilder};

    fn serve(config: SystemConfig, wl: &Workload) -> RunReport {
        ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(config))))
            .serve(wl)
            .expect("run completes")
    }

    fn by_id(mut records: Vec<RequestRecord>) -> Vec<RequestRecord> {
        records.sort_by_key(|r| r.id);
        records
    }

    #[test]
    fn cache_is_invisible_on_disjoint_traffic() {
        // Requests with unrelated prompts must serve record-identically
        // with the prefix cache on or off: sub-block accidental matches
        // are not hits, so the cache can never perturb latencies.
        let baseline_ms = SystemConfig::llama70b(5).baseline_ms;
        let wl = WorkloadBuilder::new(11, baseline_ms)
            .target_rps(3.0)
            .duration_ms(10_000.0)
            .build();
        let off = serve(SystemConfig::llama70b(5), &wl);
        let on = serve(SystemConfig::llama70b(5).with_prefix_cache(1 << 20), &wl);
        assert_eq!(off.records, on.records, "record-identical serving");
        let hl = on.merged_hotloop();
        assert_eq!(hl.prefix_hits, 0, "disjoint prompts never hit");
        assert!(hl.prefix_lookups > 0, "the cache was actually consulted");
    }

    #[test]
    fn shared_prompts_hit_without_changing_outputs() {
        // A shared system prompt makes the cache hit; generated outputs
        // are a pure function of the token stream, so per-request output
        // counts are unchanged — only timing improves.
        let baseline_ms = SystemConfig::llama70b(5).baseline_ms;
        let wl = WorkloadBuilder::new(12, baseline_ms)
            .target_rps(4.0)
            .duration_ms(10_000.0)
            .shared_system_prompt(512, 0.9)
            .build();
        let off = serve(SystemConfig::llama70b(5), &wl);
        let on = serve(SystemConfig::llama70b(5).with_prefix_cache(1 << 20), &wl);

        let hl = on.merged_hotloop();
        assert!(hl.prefix_hits > 0, "shared prompts hit the cache");
        assert!(hl.prefill_tokens_saved > 0);
        assert!(
            on.report().prefix_hit_rate_pct > 0.0,
            "surfaced on the report"
        );

        let off_outputs: Vec<(u64, u32)> = by_id(off.records.clone())
            .iter()
            .map(|r| (r.id, r.output_tokens))
            .collect();
        let on_outputs: Vec<(u64, u32)> = by_id(on.records.clone())
            .iter()
            .map(|r| (r.id, r.output_tokens))
            .collect();
        assert_eq!(off_outputs, on_outputs, "outputs unchanged by caching");

        assert!(
            on.report().mean_ttft_ms <= off.report().mean_ttft_ms,
            "skipped prefill cannot worsen mean TTFT (on {} vs off {})",
            on.report().mean_ttft_ms,
            off.report().mean_ttft_ms
        );
    }
}
