//! Integration: every engine serves every request exactly once, and runs
//! are deterministic for a fixed seed.

use adaserve::baselines::{
    FastServeEngine, PriorityEngine, SarathiEngine, VllmEngine, VllmSpecEngine, VtcEngine,
};
use adaserve::core::AdaServeEngine;
use adaserve::serving::{Colocated, RunReport, ServeSession, ServingEngine, SystemConfig};
use adaserve::workload::{Workload, WorkloadBuilder};

fn workload(config: &SystemConfig) -> Workload {
    WorkloadBuilder::new(77, config.baseline_ms)
        .target_rps(3.0)
        .duration_ms(20_000.0)
        .build()
}

fn serve(engine: &mut dyn ServingEngine, wl: &Workload) -> RunReport {
    ServeSession::new(Colocated::borrowed(engine))
        .serve(wl)
        .unwrap_or_else(|e| panic!("{}: {e}", engine.name()))
}

fn engines(seed: u64) -> Vec<Box<dyn ServingEngine>> {
    vec![
        Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))),
        Box::new(VllmEngine::new(SystemConfig::llama70b(seed))),
        Box::new(SarathiEngine::new(SystemConfig::llama70b(seed))),
        Box::new(VllmSpecEngine::new(SystemConfig::llama70b(seed), 4)),
        Box::new(PriorityEngine::new(SystemConfig::llama70b(seed))),
        Box::new(FastServeEngine::new(SystemConfig::llama70b(seed))),
        Box::new(VtcEngine::new(SystemConfig::llama70b(seed))),
    ]
}

#[test]
fn every_engine_conserves_requests() {
    let config = SystemConfig::llama70b(5);
    let wl = workload(&config);
    assert!(
        wl.requests.len() > 30,
        "workload too small to be meaningful"
    );
    for mut engine in engines(5) {
        let result = serve(engine.as_mut(), &wl);
        assert_eq!(result.records.len(), wl.requests.len(), "{}", engine.name());
        // Every record corresponds to a unique workload request with the
        // full output generated.
        let mut ids: Vec<u64> = result.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            wl.requests.len(),
            "{}: duplicate records",
            engine.name()
        );
        for rec in &result.records {
            let spec = wl
                .requests
                .iter()
                .find(|r| r.id == rec.id)
                .expect("known id");
            assert_eq!(rec.output_tokens, spec.output_len, "{}", engine.name());
            assert!(rec.completion_ms >= rec.decode_start_ms);
            assert!(rec.decode_start_ms >= rec.arrival_ms);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let config = SystemConfig::llama70b(5);
    let wl = workload(&config);
    for (a, b) in engines(5).into_iter().zip(engines(5)) {
        let mut a = a;
        let mut b = b;
        let ra = serve(a.as_mut(), &wl);
        let rb = serve(b.as_mut(), &wl);
        assert_eq!(
            ra.records, rb.records,
            "{} not deterministic",
            ra.deployment
        );
        assert_eq!(ra.end_ms, rb.end_ms);
        assert_eq!(ra.iterations, rb.iterations);
    }
}

#[test]
fn reports_are_internally_consistent() {
    let config = SystemConfig::llama70b(5);
    let wl = workload(&config);
    for mut engine in engines(5) {
        let result = serve(engine.as_mut(), &wl);
        let report = result.report();
        assert!(report.attainment_pct >= 0.0 && report.attainment_pct <= 100.0);
        assert!(
            report.goodput_tps <= report.throughput_tps + 1e-9,
            "{}",
            engine.name()
        );
        assert_eq!(report.requests, result.records.len());
        let cat_total: usize = report.per_category.iter().map(|c| c.requests).sum();
        assert_eq!(cat_total, report.requests);
    }
}
