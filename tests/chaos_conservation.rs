//! Chaos properties: no request is ever silently dropped.
//!
//! The fault-injection subsystem's core invariant is **conservation**:
//! for every tenant, `offered = finished + rejected` — a request lost to
//! a replica crash or an aborted KV migration either finishes after
//! retries or surfaces a terminal rejection
//! (`RetryBudgetExhausted` / `DegradedShed`), never vanishes. The
//! properties here drive seeded fault schedules through all three
//! deployment shapes (colocated, routed cluster, disaggregated
//! prefill/decode) under both exec modes and assert the identity per
//! tenant, plus uniqueness of each request's terminal outcome.
//!
//! The second half pins the *scaling* flavour of the same promise: a
//! mid-run drain of a replica holding in-flight requests loses nothing,
//! on the two shapes the cluster/disagg driver tests don't already
//! cover — a lone colocated engine and a `FairFrontDoor`-wrapped
//! cluster (whose sliding in-flight window must survive the topology
//! change without leaking slots).

use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::disagg::{DisaggCluster, Dispatcher, KvLink, PrefillPool};
use adaserve::scenario::{ArrivalProcess, FairFrontDoor, Scenario, TenantSpec};
use adaserve::serving::{
    Colocated, ExecMode, FaultPlan, RecoveryPolicy, ReplicaAddr, RunReport, ScalingAction,
    ServeSession, ServingEngine, SystemConfig,
};
use adaserve::workload::Workload;
use proptest::prelude::*;
use std::collections::HashSet;

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

/// A short two-tenant flash-crowd scenario: enough concurrent work that
/// a crash mid-window actually holds in-flight requests.
fn scenario(seed: u64) -> adaserve::scenario::ScenarioWorkload {
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;
    Scenario::new(seed, baseline_ms)
        .process(ArrivalProcess::FlashCrowd {
            rps: 3.0,
            at_ms: 2_000.0,
            magnitude: 4.0,
            decay_ms: 2_000.0,
        })
        .duration_ms(10_000.0)
        .users(500)
        .tenants(vec![
            TenantSpec::new("anchor").share(2.0).weight(2.0),
            TenantSpec::new("longtail"),
        ])
        .build()
}

/// Asserts the conservation identity and outcome uniqueness for one run.
fn assert_conserved(label: &str, sw: &adaserve::scenario::ScenarioWorkload, report: &RunReport) {
    let tenants = sw.tenants.len();
    let mut offered = vec![0usize; tenants];
    for spec in &sw.workload.requests {
        offered[sw.tenant_of(spec.id)] += 1;
    }
    let mut finished = vec![0usize; tenants];
    let mut seen: HashSet<u64> = HashSet::new();
    for record in &report.records {
        assert!(
            seen.insert(record.id),
            "{label}: request {} finished twice",
            record.id
        );
        finished[sw.tenant_of(record.id)] += 1;
    }
    let mut rejected = vec![0usize; tenants];
    for (id, reason) in &report.rejected {
        assert!(
            seen.insert(*id),
            "{label}: request {id} has two terminal outcomes ({reason})"
        );
        rejected[sw.tenant_of(*id)] += 1;
    }
    for t in 0..tenants {
        assert_eq!(
            offered[t],
            finished[t] + rejected[t],
            "{label}: tenant {} conservation (offered {} = finished {} + rejected {})",
            sw.tenants[t].name,
            offered[t],
            finished[t],
            rejected[t],
        );
    }
    assert_eq!(
        seen.len(),
        sw.workload.requests.len(),
        "{label}: every offered request reached exactly one terminal outcome"
    );
}

const EXEC_MODES: [ExecMode; 2] = [ExecMode::Sequential, ExecMode::Sharded { workers: None }];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Colocated: a crash on the lone replica loses everything it held;
    /// retries (or terminal rejections) must account for every request.
    #[test]
    fn colocated_conserves_requests_under_seeded_faults(seed in 0u64..1_000) {
        let sw = scenario(seed);
        let plan = FaultPlan::seeded(seed, 2_000.0, 5_000.0, 1, false);
        for exec in EXEC_MODES {
            let report = ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(
                SystemConfig::llama70b(seed),
            ))))
            .with_exec_mode(exec)
            .with_fault_plan(plan.clone())
            .with_recovery_policy(RecoveryPolicy::default())
            .serve(&sw.workload)
            .unwrap_or_else(|e| panic!("colocated {}: {e}", exec.label()));
            assert_conserved(&format!("colocated/{}", exec.label()), &sw, &report);
        }
    }

    /// Cluster: the crashed replica's in-flight requests re-dispatch to
    /// the survivors (SLO-aware), and the slowdown window must not leak
    /// any either.
    #[test]
    fn cluster_conserves_requests_under_seeded_faults(seed in 0u64..1_000) {
        let sw = scenario(seed);
        let plan = FaultPlan::seeded(seed, 2_000.0, 5_000.0, 3, false);
        for exec in EXEC_MODES {
            let report = ServeSession::new(
                Cluster::new(engines(3, seed), RouterKind::SloAware.build())
                    .with_exec_mode(exec),
            )
            .with_fault_plan(plan.clone())
            .with_recovery_policy(RecoveryPolicy::default())
            .serve(&sw.workload)
            .unwrap_or_else(|e| panic!("cluster {}: {e}", exec.label()));
            assert_conserved(&format!("cluster/{}", exec.label()), &sw, &report);
        }
    }

    /// Disagg: crashes hit the decode pool, and the seeded link outage
    /// aborts KV migrations mid-flight — both loss paths must route
    /// every request back through recovery.
    #[test]
    fn disagg_conserves_requests_under_seeded_faults(seed in 0u64..1_000) {
        let sw = scenario(seed);
        let plan = FaultPlan::seeded(seed, 2_000.0, 5_000.0, 2, true);
        for exec in EXEC_MODES {
            let disagg = DisaggCluster::new(
                PrefillPool::new(vec![SystemConfig::llama70b(seed)]),
                engines(2, seed),
                Dispatcher::new(RouterKind::SloAware.build()),
                KvLink::new(300.0, 0.05),
            )
            .with_exec_mode(exec);
            let report = ServeSession::new(disagg)
                .with_fault_plan(plan.clone())
                .with_recovery_policy(RecoveryPolicy::default())
                .serve(&sw.workload)
                .unwrap_or_else(|e| panic!("disagg {}: {e}", exec.label()));
            assert_conserved(&format!("disagg/{}", exec.label()), &sw, &report);
        }
    }

    /// The recovery-less baseline still conserves: every lost request
    /// surfaces as `RetryBudgetExhausted` instead of a retry.
    #[test]
    fn no_retry_policy_still_conserves(seed in 0u64..1_000) {
        let sw = scenario(seed);
        let plan = FaultPlan::seeded(seed, 2_000.0, 5_000.0, 3, false);
        let report = ServeSession::new(Cluster::new(engines(3, seed), RouterKind::SloAware.build()))
            .with_fault_plan(plan)
            .with_recovery_policy(RecoveryPolicy::no_retry())
            .serve(&sw.workload)
            .expect("no-retry run");
        assert_conserved("cluster/no-retry", &sw, &report);
        assert_eq!(report.retries_scheduled, 0, "no retries without a budget");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Colocated: a drain window over the lone replica — opened while it
    /// holds in-flight requests — loses nothing (single-replica drains
    /// degrade, not drop; see `Colocated::accepting`).
    #[test]
    fn colocated_mid_run_drain_loses_nothing(
        seed in 0u64..1_000,
        drain_at in 500.0f64..3_000.0,
        window in 500.0f64..2_000.0,
    ) {
        let sw = scenario(seed);
        let mut session = ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(
            SystemConfig::llama70b(seed),
        ))));
        session.scale_at(drain_at, ReplicaAddr::serving(0), ScalingAction::Drain);
        session.scale_at(drain_at + window, ReplicaAddr::serving(0), ScalingAction::Join);
        let report = session.serve(&sw.workload).expect("drained colocated run");
        prop_assert_eq!(
            report.records.len() + report.rejected.len(),
            sw.workload.requests.len(),
            "drain lost requests"
        );
    }

    /// FairFrontDoor over a cluster: the drain must not desynchronize
    /// the front door's sliding in-flight window — every held request
    /// is eventually forwarded and finishes (or is refused over quota).
    #[test]
    fn fair_front_door_mid_run_drain_loses_nothing(
        seed in 0u64..1_000,
        drain_at in 500.0f64..3_000.0,
        window in 500.0f64..2_000.0,
    ) {
        let sw = scenario(seed);
        let fair = FairFrontDoor::new(
            Cluster::new(engines(3, seed), RouterKind::SloAware.build()),
            &sw.tenants,
            sw.tenant_table(),
            8,
        );
        let mut session = ServeSession::new(fair);
        session.scale_at(drain_at, ReplicaAddr::serving(1), ScalingAction::Drain);
        session.scale_at(drain_at + window, ReplicaAddr::serving(1), ScalingAction::Join);
        let report = session.serve(&sw.workload).expect("drained fair run");
        assert_conserved("fair-front-door/drain", &sw, &report);
    }
}

/// A crash wave through a `FairFrontDoor`-wrapped cluster: the lost
/// specs bubble up through the wrapper, which must free their window
/// slots so held requests keep flowing. (Deterministic companion to the
/// drain properties above — same wrapper, harsher loss path.)
#[test]
fn fair_front_door_survives_a_crash_with_recovery() {
    let seed = 20_250_117;
    let sw = scenario(seed);
    let fair = FairFrontDoor::new(
        Cluster::new(engines(3, seed), RouterKind::SloAware.build()),
        &sw.tenants,
        sw.tenant_table(),
        8,
    );
    let plan = FaultPlan::new().at(
        2_500.0,
        adaserve::serving::FaultKind::ReplicaCrash {
            replica: ReplicaAddr::serving(0),
            down_ms: 1_500.0,
        },
    );
    let report = ServeSession::new(fair)
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::default())
        .serve(&sw.workload)
        .expect("crashed fair run");
    assert_conserved("fair-front-door/crash", &sw, &report);
}

/// Requests lost twice inside the retry budget still finish; the record
/// charges TTFT against the *first* arrival, so recovery latency is
/// visible in attainment rather than hidden by the resubmission.
#[test]
fn retried_records_charge_the_original_arrival() {
    let seed = 7;
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;
    let sw = Scenario::new(seed, baseline_ms)
        .process(ArrivalProcess::Poisson { rps: 4.0 })
        .duration_ms(6_000.0)
        .build();
    let plan = FaultPlan::new().at(
        1_000.0,
        adaserve::serving::FaultKind::ReplicaCrash {
            replica: ReplicaAddr::serving(0),
            down_ms: 800.0,
        },
    );
    let faulted = ServeSession::new(Colocated::new(Box::new(AdaServeEngine::new(
        SystemConfig::llama70b(seed),
    ))))
    .with_fault_plan(plan)
    .with_recovery_policy(RecoveryPolicy::default())
    .serve(&sw.workload)
    .expect("faulted run");
    assert!(
        faulted.retries_scheduled > 0,
        "the crash actually lost work"
    );
    let original: Workload = sw.workload.clone();
    for record in &faulted.records {
        let spec = original
            .requests
            .iter()
            .find(|s| s.id == record.id)
            .expect("known id");
        assert!(
            (record.arrival_ms - spec.arrival_ms).abs() < 1e-9,
            "request {}: arrival charged at {} instead of the original {}",
            record.id,
            record.arrival_ms,
            spec.arrival_ms
        );
    }
}
