//! The persistent sharded executor must be created once per deployment
//! and reused across repeated `serve()` calls — not respawned per batch
//! or leaked per run.
//!
//! This lives in its own integration-test binary so the process-wide
//! [`live_worker_threads`] counter is not perturbed by unrelated tests
//! running concurrently in the same harness.

use adaserve::cluster::{Cluster, RouterKind};
use adaserve::core::AdaServeEngine;
use adaserve::serving::exec::live_worker_threads;
use adaserve::serving::{ExecMode, ServeSession, ServingEngine, SystemConfig};
use adaserve::workload::WorkloadBuilder;

#[test]
fn worker_pool_is_reused_across_repeated_serves_and_joined_on_drop() {
    let baseline_ms = SystemConfig::llama70b(9).baseline_ms;
    let wl = WorkloadBuilder::new(61, baseline_ms)
        .target_rps(6.0)
        .duration_ms(2_000.0)
        .build();
    let engines: Vec<Box<dyn ServingEngine>> = (0..3)
        .map(|_| Box::new(AdaServeEngine::new(SystemConfig::llama70b(9))) as Box<dyn ServingEngine>)
        .collect();

    let before = live_worker_threads();
    let mut cluster = Cluster::new(engines, RouterKind::SloAware.build())
        .with_exec_mode(ExecMode::Sharded { workers: Some(4) });
    assert_eq!(cluster.worker_pool_size(), 0, "pool is created lazily");

    let mut after_first = 0;
    for round in 0..3 {
        let mut session = ServeSession::new(cluster);
        session
            .serve(&wl)
            .unwrap_or_else(|e| panic!("serve round {round}: {e}"));
        cluster = session.into_inner();
        assert_eq!(cluster.worker_pool_size(), 4, "round {round}: pool size");
        if round == 0 {
            after_first = live_worker_threads();
            assert_eq!(after_first, before + 4, "pool spawned exactly once");
        } else {
            assert_eq!(
                live_worker_threads(),
                after_first,
                "round {round}: no worker-thread leak across serve() calls"
            );
        }
    }

    drop(cluster);
    assert_eq!(
        live_worker_threads(),
        before,
        "dropping the deployment joins its workers"
    );
}
