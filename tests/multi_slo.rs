//! Integration: the paper's headline behaviours hold end-to-end.

use adaserve::baselines::{VllmEngine, VllmSpecEngine};
use adaserve::core::{AdaServeEngine, AdaServeOptions};
use adaserve::serving::{Colocated, RunReport, ServeSession, ServingEngine, SystemConfig};
use adaserve::workload::{CategoryMix, Workload, WorkloadBuilder};

const DURATION_MS: f64 = 45_000.0;

/// Serve one engine through the unified front door.
fn serve(engine: impl ServingEngine + 'static, wl: &Workload) -> RunReport {
    ServeSession::new(Colocated::new(Box::new(engine)))
        .serve(wl)
        .expect("run completes")
}

#[test]
fn adaserve_beats_vllm_on_stringent_mixes() {
    let config = SystemConfig::llama70b(9);
    let wl = WorkloadBuilder::new(21, config.baseline_ms)
        .mix(CategoryMix::with_urgent_fraction(0.7))
        .target_rps(4.0)
        .duration_ms(DURATION_MS)
        .build();
    let ada = serve(AdaServeEngine::new(SystemConfig::llama70b(9)), &wl).report();
    let vllm = serve(VllmEngine::new(SystemConfig::llama70b(9)), &wl).report();
    assert!(
        ada.attainment_pct > vllm.attainment_pct + 10.0,
        "AdaServe {:.1}% vs vLLM {:.1}%",
        ada.attainment_pct,
        vllm.attainment_pct
    );
    assert!(
        ada.goodput_tps > vllm.goodput_tps,
        "AdaServe goodput {:.0} vs vLLM {:.0}",
        ada.goodput_tps,
        vllm.goodput_tps
    );
}

#[test]
fn adaserve_survives_sub_baseline_slos() {
    // With the urgent SLO at 0.8× the baseline decode latency, plain
    // decoding cannot meet it even with a batch of one; speculation can.
    let config = SystemConfig::llama70b(9);
    let wl = WorkloadBuilder::new(22, config.baseline_ms)
        .mix(CategoryMix::with_urgent_fraction(0.6))
        .cat1_slo_scale(0.8)
        .target_rps(3.0)
        .duration_ms(DURATION_MS)
        .build();
    let ada = serve(AdaServeEngine::new(SystemConfig::llama70b(9)), &wl).report();
    let vllm = serve(VllmEngine::new(SystemConfig::llama70b(9)), &wl).report();
    // vLLM must violate essentially every urgent request (its TPOT floor is
    // the baseline); AdaServe keeps most of them.
    let urgent = workload::Category::CodingCopilot;
    let ada_urgent = ada.category(urgent).expect("urgent present");
    let vllm_urgent = vllm.category(urgent).expect("urgent present");
    assert!(
        vllm_urgent.violation_pct > 95.0,
        "vLLM should fail sub-baseline SLOs, got {:.1}%",
        vllm_urgent.violation_pct
    );
    assert!(
        ada_urgent.violation_pct < 50.0,
        "AdaServe should hold most sub-baseline SLOs, violated {:.1}%",
        ada_urgent.violation_pct
    );
}

#[test]
fn slo_selection_phase_pays_off_for_urgent_requests() {
    // Ablation: disabling the SLO-customized phase must not *help* the
    // urgent category.
    let config = SystemConfig::llama70b(9);
    let wl = WorkloadBuilder::new(23, config.baseline_ms)
        .mix(CategoryMix::with_urgent_fraction(0.8))
        .cat1_slo_scale(0.9)
        .target_rps(4.0)
        .duration_ms(DURATION_MS)
        .build();
    let full = serve(AdaServeEngine::new(SystemConfig::llama70b(9)), &wl).report();
    let ablated = serve(
        AdaServeEngine::with_options(
            SystemConfig::llama70b(9),
            AdaServeOptions {
                slo_selection: false,
                ..Default::default()
            },
        ),
        &wl,
    )
    .report();
    let urgent = workload::Category::CodingCopilot;
    let full_v = full.category(urgent).unwrap().violation_pct;
    let ablated_v = ablated.category(urgent).unwrap().violation_pct;
    assert!(
        full_v <= ablated_v + 1.0,
        "SLO phase hurt urgent requests: {full_v:.1}% vs {ablated_v:.1}%"
    );
}

#[test]
fn adaserve_tracks_spec_baseline_acceptance() {
    // AdaServe's tree acceptance should be at least comparable to chain
    // speculation of similar depth at light load.
    let config = SystemConfig::llama70b(9);
    let wl = WorkloadBuilder::new(24, config.baseline_ms)
        .target_rps(2.0)
        .duration_ms(DURATION_MS)
        .build();
    let ada = serve(AdaServeEngine::new(SystemConfig::llama70b(9)), &wl);
    let spec4 = serve(VllmSpecEngine::new(SystemConfig::llama70b(9), 4), &wl);
    assert!(
        ada.mean_accepted_per_verify() >= spec4.mean_accepted_per_verify() * 0.9,
        "AdaServe accepted {:.2} vs spec(4) {:.2}",
        ada.mean_accepted_per_verify(),
        spec4.mean_accepted_per_verify()
    );
}
