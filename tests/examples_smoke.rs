//! Smoke tests: every example must run to completion on a tiny workload.
//!
//! `cargo test` compiles the package's examples before running tests, so the
//! binaries are guaranteed to exist next to this test's own executable
//! (`target/<profile>/examples/`). `ADASERVE_SMOKE=1` makes the two
//! workload-driven examples shrink their traces to a few simulated seconds.

use std::path::PathBuf;
use std::process::Command;

/// Locate `target/<profile>/examples/<name>` relative to the test binary.
fn example_bin(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // strip the executable name
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("examples");
    p.push(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run_example(name: &str) {
    let bin = example_bin(name);
    assert!(
        bin.is_file(),
        "example binary missing at {} — was `cargo test` run without building examples?",
        bin.display()
    );
    let output = Command::new(&bin)
        .env("ADASERVE_SMOKE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example `{name}` exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` produced no output"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn speculative_decoding_runs() {
    run_example("speculative_decoding");
}

#[test]
fn adaptive_control_runs() {
    run_example("adaptive_control");
}

#[test]
fn multi_slo_comparison_runs() {
    run_example("multi_slo_comparison");
}

#[test]
fn capacity_planning_runs() {
    run_example("capacity_planning");
}

#[test]
fn cluster_serving_runs() {
    run_example("cluster_serving");
}

#[test]
fn disagg_serving_runs() {
    run_example("disagg_serving");
}

#[test]
fn online_serving_runs() {
    run_example("online_serving");
}

#[test]
fn autoscale_serving_runs() {
    run_example("autoscale_serving");
}

#[test]
fn chaos_serving_runs() {
    run_example("chaos_serving");
}

/// `--trace-out` must leave a loadable Chrome-trace JSON behind.
#[test]
fn online_serving_writes_perfetto_trace() {
    let bin = example_bin("online_serving");
    assert!(
        bin.is_file(),
        "example binary missing at {} — was `cargo test` run without building examples?",
        bin.display()
    );
    let dir = std::env::temp_dir().join(format!("adaserve_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let trace = dir.join("online_serving_trace.json");
    let output = Command::new(&bin)
        .env("ADASERVE_SMOKE", "1")
        .args(["--trace-out", trace.to_str().expect("utf-8 path")])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "online_serving --trace-out exited with {}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr),
    );
    let body = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(
        body.starts_with("{\"traceEvents\":["),
        "trace file is not Chrome-trace JSON: {}",
        &body[..body.len().min(80)]
    );
    assert!(
        body.contains("\"name\":\"replicas\"") && body.contains("\"name\":\"requests\""),
        "trace lacks the replica/request process tracks"
    );
    std::fs::remove_dir_all(&dir).ok();
}
