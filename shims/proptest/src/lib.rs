//! Minimal, API-compatible stand-in for the [`proptest`] crate.
//!
//! The CI container has no crates.io access, so this workspace vendors the
//! subset of proptest's surface its tests actually use: `Strategy` with
//! `prop_map`, range and tuple strategies, `prop::collection::vec`,
//! `prop_oneof!`, `any::<T>()`, `ProptestConfig` and the `proptest!` /
//! `prop_assert!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its inputs via the normal
//!   panic message (every strategy value is `Debug`-printable by the caller),
//!   but is not minimized;
//! * **deterministic RNG** — each test case is seeded from a hash of the
//!   test's module path, name and case index, so runs are reproducible
//!   across machines and reruns (the real crate defaults to an OS seed);
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`
//!   (the real versions return `Err` to drive shrinking, which we don't do).
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

pub mod arbitrary;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` macro: runs each enclosed `#[test] fn` body for
/// `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::str_seed(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::deterministic(seed, u64::from(case));
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Choice between strategies producing the same value type; arms may carry
/// `weight => strategy` to bias the pick, as in real proptest.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
