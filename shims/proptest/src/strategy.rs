//! The `Strategy` trait and its combinators: ranges, tuples, map, union.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike the real crate there is no intermediate `ValueTree` (no
/// shrinking): a strategy simply produces a value from an RNG.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.new_value(rng)))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice among boxed strategies — what `prop_oneof!` builds.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice (every arm weight 1).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Arms picked proportionally to their weights, as in real proptest.
    #[must_use]
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().all(|(w, _)| *w > 0),
            "prop_oneof! weights must be positive"
        );
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range_u64(0, self.total_weight);
        for (weight, arm) in &self.arms {
            if pick < u64::from(*weight) {
                return arm.new_value(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("pick is bounded by the weight sum")
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = u64::try_from(self.end - self.start).expect("range span fits in u64");
                let offset = rng.gen_range_u64(0, span);
                self.start + offset as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = u64::try_from(hi - lo).expect("range span fits in u64");
                if span == u64::MAX {
                    return lo + rng.next_u64() as $ty;
                }
                lo + rng.gen_range_u64(0, span + 1) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty => $uty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = self.end.wrapping_sub(self.start) as $uty;
                let offset = rng.gen_range_u64(0, u64::from(span));
                self.start.wrapping_add(offset as $ty)
            }
        }
    )+};
}

signed_range_strategy!(i32 => u32, i64 => u64);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty float range strategy");
                let f = rng.next_f64() as $ty;
                let v = self.start + f * (self.end - self.start);
                // Rounding (and, for f32, the f64→f32 cast) can land exactly
                // on the exclusive upper bound; keep the range half-open.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);
