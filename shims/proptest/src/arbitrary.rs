//! `any::<T>()` for the primitive types the workspace's tests draw on.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — enough for the workspace's uses, and avoids
    /// NaN/infinity surprises the real crate guards against differently.
    fn generate(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
