//! Deterministic test-runner configuration and RNG.

/// Subset of proptest's `ProptestConfig`: only the case count matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps an offline CI run quick
        // while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// FNV-1a hash of a static string, used to give every property its own
/// stable seed stream independent of test execution order.
#[must_use]
pub fn str_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64: tiny, high-quality, and deterministic across platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the property seed and case index.
    #[must_use]
    pub fn deterministic(seed: u64, case: u64) -> Self {
        Self {
            state: seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`. `hi` must be strictly greater than `lo`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}
