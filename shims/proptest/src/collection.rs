//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification accepted by [`vec()`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
