//! Minimal, API-compatible stand-in for the [`criterion`] benchmark crate.
//!
//! The CI container has no crates.io access, so this workspace vendors the
//! subset of criterion's surface `benches/microbench.rs` uses: `Criterion`
//! with `sample_size`/`measurement_time`, `bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It reports the mean wall-clock time per iteration — no warm-up phases,
//! outlier analysis or HTML reports. Two fast paths for CI:
//!
//! * `cargo bench --no-run` compiles everything without executing;
//! * passing `--test` (what `cargo bench -- --test` forwards) or setting
//!   `CRITERION_SMOKE=1` runs each benchmark exactly once, as a smoke test.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim times the routine only,
/// so the variants are behaviorally identical; they exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to each target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let smoke =
            std::env::var_os("CRITERION_SMOKE").is_some() || args.iter().any(|a| a == "--test");
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            smoke,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Upper bound on wall-clock time spent measuring one benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: if self.smoke { 1 } else { self.sample_size },
            deadline: Instant::now() + self.measurement_time,
            smoke: self.smoke,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench: {id:<40} {:>12.1} ns/iter ({} iters)",
            mean_ns, b.iters
        );
        self
    }

    /// Open a named group; the shim just prefixes benchmark ids.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(full, f);
        self
    }

    /// No-op; reports are printed eagerly.
    pub fn finish(self) {}
}

/// Timing loop driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    deadline: Instant,
    smoke: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for i in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if !self.smoke && i >= 1 && Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for i in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if !self.smoke && i >= 1 && Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// Mirror of criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
