//! Algorithm 1: globally optimal token-tree construction (paper §4.1).
//!
//! Under the assumption that every node's path probability `f(v)` is known,
//! a two-step greedy procedure is optimal (paper Appendix C):
//!
//! 1. **SLO step** — for each request, repeatedly insert the highest-`f`
//!    available node until `Σ_{v∈T_i} f(v) ≥ A(r_i)` (the sum includes the
//!    root with `f = 1`); if the budget runs out first, return INVALID —
//!    no feasible solution exists (Lemma C.1).
//! 2. **Throughput step** — spend any remaining budget on the globally
//!    highest-`f` nodes across all requests (Lemma C.2).
//!
//! Because `f` strictly decreases along every path, greedily selected nodes
//! always connect to their parents (Appendix B), so the output is a valid
//! tree per request.
//!
//! This module is exercised for fidelity and testing; the *practical*
//! variant the engine runs online is [`crate::scsd`].

use simllm::TokenId;
use spectree::{NodeId, TokenTree};
use std::collections::BinaryHeap;

/// Error returned when the SLO requirements cannot be met within budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimalError {
    /// No allocation of the budget satisfies every `A(r_i)` (the paper's
    /// INVALID case, provably infeasible by Lemma C.1).
    Invalid,
}

impl std::fmt::Display for OptimalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SLO requirements are infeasible within the token budget")
    }
}

impl std::error::Error for OptimalError {}

/// A finite, explicitly enumerated truncation of a request's infinite token
/// tree `T_inf(r)` with known path probabilities.
///
/// Node 0 is the root (`f = 1`, the request's last generated token); every
/// other node carries an absolute path probability `f(v) < f(parent)`.
#[derive(Debug, Clone)]
pub struct ExplicitProbTree {
    parent: Vec<usize>,
    children: Vec<Vec<usize>>,
    token: Vec<TokenId>,
    f: Vec<f64>,
}

impl ExplicitProbTree {
    /// Creates a tree with only the root.
    pub fn new(root_token: TokenId) -> Self {
        Self {
            parent: vec![usize::MAX],
            children: vec![Vec::new()],
            token: vec![root_token],
            f: vec![1.0],
        }
    }

    /// Adds a node under `parent` with conditional (edge) probability
    /// `edge_prob`; its path probability becomes `f(parent) · edge_prob`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < edge_prob < 1` and `parent` exists.
    pub fn add(&mut self, parent: usize, token: TokenId, edge_prob: f64) -> usize {
        assert!(parent < self.f.len(), "parent must exist");
        assert!(
            edge_prob > 0.0 && edge_prob < 1.0,
            "edge prob must be in (0, 1)"
        );
        let id = self.f.len();
        self.parent.push(parent);
        self.children.push(Vec::new());
        self.token.push(token);
        self.f.push(self.f[parent] * edge_prob);
        self.children[parent].push(id);
        id
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.f.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.f.len() == 1
    }

    /// Path probability of node `v`.
    pub fn f(&self, v: usize) -> f64 {
        self.f[v]
    }

    /// Children of node `v`.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Token at node `v`.
    pub fn token(&self, v: usize) -> TokenId {
        self.token[v]
    }

    /// Parent of node `v` (root has none).
    pub fn parent(&self, v: usize) -> Option<usize> {
        if v == 0 {
            None
        } else {
            Some(self.parent[v])
        }
    }
}

/// Heap entry ordered by descending `f`, with deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    f: f64,
    req: usize,
    node: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on f; ties prefer lower (req, node) for determinism.
        self.f
            .total_cmp(&other.f)
            .then_with(|| other.req.cmp(&self.req))
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Algorithm 1.
///
/// * `trees` — per-request truncations of `T_inf` with known `f(v)`;
/// * `requirements` — per-request `A(r_i)` (the sum `Σ_{v∈T_i} f(v)`,
///   including the root's 1.0, must reach this);
/// * `budget` — the paper's `B`: total nodes across all trees *including*
///   each tree's root.
///
/// Returns one [`TokenTree`] per request, or [`OptimalError::Invalid`].
pub fn optimal_trees(
    trees: &[&ExplicitProbTree],
    requirements: &[f64],
    budget: u64,
) -> Result<Vec<TokenTree>, OptimalError> {
    assert_eq!(trees.len(), requirements.len());
    let n = trees.len();
    if (budget as usize) < n {
        // Not even the roots fit.
        return Err(OptimalError::Invalid);
    }
    let mut remaining = budget - n as u64; // roots consume one slot each

    // Per-request output trees and node-id remapping.
    let mut out: Vec<TokenTree> = trees.iter().map(|t| TokenTree::new(t.token(0))).collect();
    let mut remap: Vec<std::collections::HashMap<usize, NodeId>> = (0..n)
        .map(|i| {
            let mut m = std::collections::HashMap::new();
            m.insert(0usize, out[i].root());
            m
        })
        .collect();
    // Per-request frontier heaps, seeded with the root's children.
    let mut heaps: Vec<BinaryHeap<Entry>> = trees
        .iter()
        .enumerate()
        .map(|(i, t)| {
            t.children(0)
                .iter()
                .map(|&c| Entry {
                    f: t.f(c),
                    req: i,
                    node: c,
                })
                .collect()
        })
        .collect();
    let mut n_acc: Vec<f64> = vec![1.0; n];

    let add_node = |i: usize,
                    node: usize,
                    out: &mut Vec<TokenTree>,
                    remap: &mut Vec<std::collections::HashMap<usize, NodeId>>,
                    heaps: &mut Vec<BinaryHeap<Entry>>| {
        let t = trees[i];
        let parent = t.parent(node).expect("non-root");
        let new_parent = remap[i][&parent];
        let new_id = out[i]
            .add_child(new_parent, t.token(node), t.f(node))
            .expect("greedy selection preserves invariants");
        remap[i].insert(node, new_id);
        for &c in t.children(node) {
            heaps[i].push(Entry {
                f: t.f(c),
                req: i,
                node: c,
            });
        }
    };

    // Step 1: satisfy SLO requirements.
    for i in 0..n {
        while n_acc[i] < requirements[i] {
            if remaining == 0 {
                return Err(OptimalError::Invalid);
            }
            let Some(top) = heaps[i].pop() else {
                // The finite truncation ran out of nodes: the remaining mass
                // cannot reach the requirement.
                return Err(OptimalError::Invalid);
            };
            n_acc[i] += top.f;
            remaining -= 1;
            add_node(i, top.node, &mut out, &mut remap, &mut heaps);
        }
    }

    // Step 2: spend the rest globally.
    let mut global: BinaryHeap<Entry> = BinaryHeap::new();
    for h in &mut heaps {
        global.extend(h.drain());
    }
    while remaining > 0 {
        let Some(top) = global.pop() else { break };
        remaining -= 1;
        let t = trees[top.req];
        let parent = t.parent(top.node).expect("non-root");
        let new_parent = remap[top.req][&parent];
        let new_id = out[top.req]
            .add_child(new_parent, t.token(top.node), top.f)
            .expect("greedy selection preserves invariants");
        remap[top.req].insert(top.node, new_id);
        for &c in t.children(top.node) {
            global.push(Entry {
                f: t.f(c),
                req: top.req,
                node: c,
            });
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u32) -> TokenId {
        TokenId(x)
    }

    /// A small tree: root → a (0.7) → c (0.42); root → b (0.2).
    fn chain_tree() -> ExplicitProbTree {
        let mut tr = ExplicitProbTree::new(t(0));
        let a = tr.add(0, t(1), 0.7);
        tr.add(0, t(2), 0.2);
        tr.add(a, t(3), 0.6); // f = 0.42
        tr
    }

    #[test]
    fn roots_alone_satisfy_trivial_requirements() {
        let tree = chain_tree();
        let out = optimal_trees(&[&tree], &[1.0], 1).expect("feasible");
        assert_eq!(out[0].num_speculated(), 0);
    }

    #[test]
    fn budget_below_root_count_is_invalid() {
        let tree = chain_tree();
        assert!(matches!(
            optimal_trees(&[&tree, &tree], &[0.0, 0.0], 1),
            Err(OptimalError::Invalid)
        ));
    }

    #[test]
    fn greedy_picks_highest_f_first() {
        let tree = chain_tree();
        // Budget 3 = root + 2 nodes: expect a (0.7) then c (0.42), not b (0.2).
        let out = optimal_trees(&[&tree], &[0.0], 3).expect("feasible");
        let probs: Vec<f64> = out[0]
            .node_ids()
            .skip(1)
            .map(|i| out[0].path_prob(i))
            .collect();
        assert_eq!(probs, vec![0.7, 0.42]);
        out[0].validate().expect("valid tree");
    }

    #[test]
    fn slo_step_prioritizes_requirements_over_global_f() {
        // Request 0 has huge f values; request 1 has a strict requirement
        // that must be satisfied even though its nodes have lower f.
        let mut big = ExplicitProbTree::new(t(0));
        big.add(0, t(1), 0.9);
        big.add(0, t(2), 0.85);
        let mut small = ExplicitProbTree::new(t(0));
        small.add(0, t(1), 0.5);
        small.add(0, t(2), 0.3);
        // Budget: 2 roots + 2 extra. Request 1 needs 1.0 + 0.5 + 0.3 = 1.8.
        let out = optimal_trees(&[&big, &small], &[0.0, 1.8], 4).expect("feasible");
        assert_eq!(out[1].num_speculated(), 2, "requirement forces both nodes");
        assert_eq!(out[0].num_speculated(), 0, "budget exhausted by SLO step");
    }

    #[test]
    fn infeasible_requirement_returns_invalid() {
        let tree = chain_tree();
        // Max achievable within budget 2 (root + 1 node): 1.0 + 0.7 = 1.7.
        assert!(matches!(
            optimal_trees(&[&tree], &[1.8], 2),
            Err(OptimalError::Invalid)
        ));
    }

    #[test]
    fn requirement_beyond_tree_mass_is_invalid() {
        let tree = chain_tree();
        // Total mass = 1 + 0.7 + 0.2 + 0.42 = 2.32 < 2.5 even with budget 99.
        assert!(matches!(
            optimal_trees(&[&tree], &[2.5], 99),
            Err(OptimalError::Invalid)
        ));
    }

    #[test]
    fn step2_spends_leftover_budget_globally() {
        let mut a = ExplicitProbTree::new(t(0));
        a.add(0, t(1), 0.9);
        let mut b = ExplicitProbTree::new(t(0));
        b.add(0, t(1), 0.4);
        // Budget 3 = 2 roots + 1: the leftover goes to the 0.9 node.
        let out = optimal_trees(&[&a, &b], &[0.0, 0.0], 3).expect("feasible");
        assert_eq!(out[0].num_speculated(), 1);
        assert_eq!(out[1].num_speculated(), 0);
    }

    /// Brute force: enumerate all prefix-closed subsets of ≤ `budget` nodes
    /// and return the best total Σf over selections meeting all requirements.
    fn brute_force_best(
        trees: &[&ExplicitProbTree],
        requirements: &[f64],
        budget: u64,
    ) -> Option<f64> {
        // Collect all non-root nodes as (req, node) pairs.
        let mut all: Vec<(usize, usize)> = Vec::new();
        for (i, t) in trees.iter().enumerate() {
            for v in 1..t.len() {
                all.push((i, v));
            }
        }
        let n = all.len();
        assert!(n <= 20, "brute force bound");
        let roots = trees.len() as u64;
        let mut best: Option<f64> = None;
        'subset: for mask in 0u32..(1 << n) {
            let count = mask.count_ones() as u64 + roots;
            if count > budget {
                continue;
            }
            let chosen: Vec<(usize, usize)> = (0..n)
                .filter(|&k| mask & (1 << k) != 0)
                .map(|k| all[k])
                .collect();
            // Prefix-closure: every chosen node's parent is chosen or root.
            for &(i, v) in &chosen {
                let p = trees[i].parent(v).unwrap();
                if p != 0 && !chosen.contains(&(i, p)) {
                    continue 'subset;
                }
            }
            // Requirements.
            let mut sums = vec![1.0f64; trees.len()];
            for &(i, v) in &chosen {
                sums[i] += trees[i].f(v);
            }
            if sums.iter().zip(requirements).any(|(s, r)| s < r) {
                continue;
            }
            let total: f64 = sums.iter().sum();
            best = Some(best.map_or(total, |b: f64| b.max(total)));
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        // Deterministic family of small instances.
        for seed in 0..30u64 {
            let mut trees_owned = Vec::new();
            let n_req = 1 + (seed % 3) as usize;
            for i in 0..n_req {
                let mut tr = ExplicitProbTree::new(t(0));
                let h0 = simllm::hash::combine(seed, i as u64);
                let n_nodes = 2 + (simllm::hash::seed_stream(h0, 0) % 4) as usize;
                for k in 0..n_nodes {
                    let parent =
                        (simllm::hash::seed_stream(h0, 10 + k as u64) % tr.len() as u64) as usize;
                    let edge = 0.2
                        + 0.7
                            * simllm::hash::unit_f64(simllm::hash::seed_stream(h0, 20 + k as u64));
                    tr.add(parent, t(100 + k as u32), edge.min(0.95));
                }
                trees_owned.push(tr);
            }
            let tree_refs: Vec<&ExplicitProbTree> = trees_owned.iter().collect();
            let requirements: Vec<f64> = (0..n_req)
                .map(|i| {
                    1.0 + 0.5
                        * simllm::hash::unit_f64(simllm::hash::seed_stream(seed, 99 + i as u64))
                })
                .collect();
            let budget = n_req as u64 + 2 + seed % 3;

            let alg = optimal_trees(&tree_refs, &requirements, budget);
            let brute = brute_force_best(&tree_refs, &requirements, budget);
            match (alg, brute) {
                (Ok(out), Some(best)) => {
                    let total: f64 =
                        n_req as f64 + out.iter().map(|t| t.expected_accepted()).sum::<f64>();
                    assert!(
                        (total - best).abs() < 1e-9,
                        "seed {seed}: algorithm {total} != brute force {best}"
                    );
                }
                (Err(OptimalError::Invalid), None) => {} // Both infeasible.
                (a, b) => panic!("seed {seed}: feasibility mismatch: alg {a:?} vs brute {b:?}"),
            }
        }
    }
}
