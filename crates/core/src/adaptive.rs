//! Adaptive control of speculation depth and width (paper §5.2).
//!
//! Fixed `(d, w)` wastes draft compute under load (most speculated tokens
//! get discarded by selection) and under-speculates when the system is idle.
//! AdaServe re-derives both each iteration from the active-request count:
//!
//! ```text
//! d = clip(D_max, D_min, ⌊B₁ / (n + c₁)⌋ − 1)      (eq. 8)
//! w = clip(W_max, 1,     ⌊B₂ / n⌋ + c₂)            (eq. 9)
//! ```
//!
//! `B₁` is the verifier's per-iteration token budget, `B₂` the speculator's;
//! `c₁, c₂` are small constants (grid-searched in the paper; defaults here
//! chosen by the same criterion — keeping per-request speculative tokens
//! within the average verification budget).

use spectree::SpecParams;

/// The depth/width controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveController {
    /// Verifier token budget per iteration (`B₁`).
    pub b1: f64,
    /// Speculator token budget per draft step (`B₂`).
    pub b2: f64,
    /// Depth-formula constant (`c₁`).
    pub c1: f64,
    /// Width-formula constant (`c₂`).
    pub c2: f64,
    /// Depth lower bound (`D_min`).
    pub d_min: u32,
    /// Depth upper bound (`D_max`).
    pub d_max: u32,
    /// Width upper bound (`W_max`).
    pub w_max: u32,
}

impl AdaptiveController {
    /// Creates a controller from profiled budgets with default constants.
    pub fn new(verify_budget: u64, spec_budget: u64) -> Self {
        Self {
            b1: verify_budget as f64,
            b2: spec_budget as f64,
            c1: 1.0,
            c2: 1.0,
            d_min: 1,
            d_max: 8,
            w_max: 4,
        }
    }

    /// Computes `(d, w)` for `n` active decoding requests.
    ///
    /// `n = 0` is treated as 1 (the formulas are only consulted when there
    /// is work).
    pub fn params(&self, n: usize) -> SpecParams {
        let n = n.max(1) as f64;
        let d_raw = (self.b1 / (n + self.c1)).floor() - 1.0;
        let d = (d_raw.max(self.d_min as f64) as u32).min(self.d_max);
        let w_raw = (self.b2 / n).floor() + self.c2;
        let w = (w_raw.max(1.0) as u32).min(self.w_max);
        SpecParams::new(d, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(160, 256)
    }

    #[test]
    fn light_load_speculates_aggressively() {
        let p = controller().params(1);
        assert_eq!(p.depth, 8, "depth clipped at D_max");
        assert_eq!(p.width, 4, "width clipped at W_max");
    }

    #[test]
    fn heavy_load_speculates_conservatively() {
        let p = controller().params(150);
        assert_eq!(p.depth, 1, "depth clipped at D_min");
        assert_eq!(p.width, 2, "floor(256/150) + 1 = 2");
    }

    #[test]
    fn depth_decreases_monotonically_with_load() {
        let c = controller();
        let mut prev = u32::MAX;
        for n in 1..200 {
            let d = c.params(n).depth;
            assert!(d <= prev, "depth increased at n = {n}");
            prev = d;
        }
    }

    #[test]
    fn speculative_tokens_stay_within_verify_budget_per_request() {
        // The paper's design goal: d ≈ per-request verification budget.
        let c = controller();
        for n in [2usize, 5, 10, 20, 40, 80] {
            let p = c.params(n);
            let per_request_budget = c.b1 / n as f64;
            assert!(
                f64::from(p.depth) <= per_request_budget,
                "n = {n}: depth {} exceeds per-request budget {per_request_budget}",
                p.depth
            );
        }
    }

    #[test]
    fn zero_active_requests_treated_as_one() {
        let c = controller();
        assert_eq!(c.params(0), c.params(1));
    }
}
