//! Algorithm 2: SLO-customized + throughput-optimized token selection
//! (paper §4.3, steps 2–3).
//!
//! Given each request's beam-search candidate tree (step 1) and its capped
//! requirement `A_cap(r)`, selection proceeds in two phases:
//!
//! * **SLO-customized** — requests are processed in *descending* requirement
//!   order (slower requests first); each greedily takes its highest-
//!   probability candidate nodes until the cumulative approximated
//!   acceptance (starting at 1.0 for the root/bonus token) reaches
//!   `A_cap(r)`, a per-request cap `n_max` is hit, or the budget runs out.
//! * **Throughput-optimized** — remaining budget goes to the globally
//!   highest-probability unselected candidates across all requests.
//!
//! Selections are per-tree prefixes of the descending-probability order, so
//! they are always connected (Appendix B) — enforced here by construction
//! and checked in tests.

use spectree::{NodeId, TokenTree};
use std::collections::BinaryHeap;

/// Input to one selection round.
#[derive(Debug)]
pub struct ScsdInput<'a> {
    /// Per-request candidate trees (roots excluded from budget accounting).
    pub candidates: &'a [&'a TokenTree],
    /// Per-request capped requirements `A_cap(r_i)`.
    pub requirements: &'a [f64],
    /// Total speculated-token budget across requests (excluding roots).
    pub budget: u64,
    /// Per-request cap on tokens taken during the SLO-customized phase,
    /// preventing low-probability nodes from monopolizing the budget.
    pub n_max: usize,
    /// Marginal-utility cutoff for the throughput-optimized phase: nodes
    /// whose approximated path probability falls below this are not worth
    /// their verification latency and are left unselected even when budget
    /// remains. The SLO-customized phase ignores the cutoff (SLO pressure
    /// justifies low-probability tokens). Set to 0.0 to fill the budget
    /// unconditionally (the literal Algorithm 2).
    pub min_phase2_prob: f64,
}

/// Output of one selection round.
#[derive(Debug, Clone, PartialEq)]
pub struct ScsdOutput {
    /// Selected candidate-tree node ids per request (connected by
    /// construction; pass to [`TokenTree::induced_subtree`]).
    pub selections: Vec<Vec<NodeId>>,
    /// Per-request cumulative acceptance estimate (1.0 + Σ selected probs).
    pub estimated_accept: Vec<f64>,
    /// Whether each request's `A_cap` was reached during the SLO phase.
    pub slo_satisfied: Vec<bool>,
    /// Budget left after both phases.
    pub budget_left: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct GlobalEntry {
    prob: f64,
    req: usize,
    rank: usize,
}

impl Eq for GlobalEntry {}

impl Ord for GlobalEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prob
            .total_cmp(&other.prob)
            .then_with(|| other.req.cmp(&self.req))
            .then_with(|| other.rank.cmp(&self.rank))
    }
}

impl PartialOrd for GlobalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for [`select_tokens_with`].
///
/// One scratch per engine turns the per-iteration selection allocations
/// (candidate orders, per-request counters, the phase-2 heap) into buffer
/// reuse. After a call, the scratch exposes the per-request selections as
/// prefixes of [`ScsdScratch::ordered`] of length [`ScsdScratch::taken`]
/// — callers that only need to *apply* a selection (e.g. via
/// `TokenTree::induced_subtree_into`) can read them without materializing
/// the `ScsdOutput` vectors.
#[derive(Debug, Default)]
pub struct ScsdScratch {
    /// Per-request descending-probability candidate order; the selection
    /// for request `i` is `ordered[i][..taken[i]]` (always a connected
    /// prefix).
    pub ordered: Vec<Vec<NodeId>>,
    /// Selected prefix length per request.
    pub taken: Vec<usize>,
    /// Cumulative acceptance estimate per request (root counts 1.0).
    pub estimated: Vec<f64>,
    /// Whether each request's `A_cap` was reached during the SLO phase.
    pub slo_satisfied: Vec<bool>,
    /// Budget left after both phases.
    pub budget_left: u64,
    order: Vec<usize>,
    heap: BinaryHeap<GlobalEntry>,
}

impl ScsdScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of internal buffer capacities (allocation-discipline probe).
    pub fn capacity_sum(&self) -> usize {
        self.ordered.iter().map(Vec::capacity).sum::<usize>()
            + self.ordered.capacity()
            + self.taken.capacity()
            + self.estimated.capacity()
            + self.slo_satisfied.capacity()
            + self.order.capacity()
            + self.heap.capacity()
    }
}

/// Runs both selection phases.
///
/// # Panics
///
/// Panics if input slices disagree in length.
pub fn select_tokens(input: &ScsdInput<'_>) -> ScsdOutput {
    let mut scratch = ScsdScratch::default();
    select_tokens_with(input, &mut scratch);
    let n = input.candidates.len();
    ScsdOutput {
        selections: (0..n)
            .map(|i| scratch.ordered[i][..scratch.taken[i]].to_vec())
            .collect(),
        estimated_accept: scratch.estimated,
        slo_satisfied: scratch.slo_satisfied,
        budget_left: scratch.budget_left,
    }
}

/// Scratch-buffer variant of [`select_tokens`]: identical selection
/// logic, but all working state lives in (and the results are read from)
/// the caller's [`ScsdScratch`] — no per-call allocations once warm.
pub fn select_tokens_with(input: &ScsdInput<'_>, s: &mut ScsdScratch) {
    let n = input.candidates.len();
    assert_eq!(n, input.requirements.len(), "one requirement per request");
    let mut budget = input.budget;

    // Per-request descending-probability candidate order (prefix = connected).
    if s.ordered.len() < n {
        s.ordered.resize_with(n, Vec::new);
    }
    for (t, buf) in input.candidates.iter().zip(s.ordered.iter_mut()) {
        t.speculated_by_prob_desc_into(buf);
    }
    s.taken.clear();
    s.taken.resize(n, 0); // prefix length taken per request
    s.estimated.clear();
    s.estimated.resize(n, 1.0); // root/bonus counts 1.0
    s.slo_satisfied.clear();
    s.slo_satisfied.resize(n, false);

    // Phase 1: SLO-customized selection, slower requests first (larger A).
    s.order.clear();
    s.order.extend(0..n);
    s.order.sort_unstable_by(|&a, &b| {
        input.requirements[b]
            .total_cmp(&input.requirements[a])
            .then_with(|| a.cmp(&b))
    });
    for &i in &s.order {
        while s.estimated[i] < input.requirements[i]
            && s.taken[i] < input.n_max
            && s.taken[i] < s.ordered[i].len()
            && budget > 0
        {
            let node = s.ordered[i][s.taken[i]];
            s.estimated[i] += input.candidates[i].path_prob(node);
            s.taken[i] += 1;
            budget -= 1;
        }
        s.slo_satisfied[i] = s.estimated[i] >= input.requirements[i];
    }

    // Phase 2: throughput-optimized global selection.
    s.heap.clear();
    for i in 0..n {
        if s.taken[i] < s.ordered[i].len() {
            s.heap.push(GlobalEntry {
                prob: input.candidates[i].path_prob(s.ordered[i][s.taken[i]]),
                req: i,
                rank: s.taken[i],
            });
        }
    }
    while budget > 0 {
        let Some(top) = s.heap.pop() else { break };
        if top.prob < input.min_phase2_prob {
            break; // All remaining candidates are below the utility cutoff.
        }
        let i = top.req;
        s.estimated[i] += top.prob;
        s.taken[i] += 1;
        budget -= 1;
        if s.taken[i] < s.ordered[i].len() {
            s.heap.push(GlobalEntry {
                prob: input.candidates[i].path_prob(s.ordered[i][s.taken[i]]),
                req: i,
                rank: s.taken[i],
            });
        }
    }
    s.budget_left = budget;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::TokenId;

    fn t(x: u32) -> TokenId {
        TokenId(x)
    }

    /// Builds the paper's Fig. 5 running example for request r0:
    /// root → t1 (0.7) → t3 (0.42) → t5 (0.294)
    ///      → t2 (0.2) ; t3 → t6 (0.21 under t2? see figure) …
    ///
    /// We reproduce the probabilities used in the figure.
    fn fig5_r0() -> TokenTree {
        let mut tree = TokenTree::new(t(0));
        let t1 = tree.add_child(tree.root(), t(1), 0.7).unwrap();
        tree.add_child(tree.root(), t(2), 0.2).unwrap();
        let t3 = tree.add_child(t1, t(3), 0.42).unwrap();
        tree.add_child(t1, t(4), 0.21).unwrap();
        tree.add_child(t3, t(5), 0.294).unwrap();
        tree.add_child(t3, t(6), 0.126).unwrap();
        tree
    }

    fn fig5_r1() -> TokenTree {
        let mut tree = TokenTree::new(t(0));
        let t1 = tree.add_child(tree.root(), t(1), 0.5).unwrap();
        let t2 = tree.add_child(tree.root(), t(2), 0.4).unwrap();
        tree.add_child(t1, t(3), 0.35).unwrap();
        tree.add_child(t1, t(4), 0.24).unwrap();
        tree.add_child(t2, t(5), 0.14).unwrap();
        tree.add_child(t2, t(6), 0.139).unwrap();
        tree
    }

    #[test]
    fn reproduces_fig5_selection() {
        // Fig. 5: budget 8 (2 roots + 6 speculated), A_cap(r0) = 0.6 → but
        // the figure counts acceptance *without* the root's 1.0 (its A_cap
        // values are fractions of a token). We therefore pass requirements
        // as 1 + A_cap to account for our root-inclusive convention.
        let r0 = fig5_r0();
        let r1 = fig5_r1();
        let input = ScsdInput {
            candidates: &[&r0, &r1],
            requirements: &[1.6, 1.8],
            budget: 6,
            n_max: 16,
            min_phase2_prob: 0.0,
        };
        let out = select_tokens(&input);
        // SLO phase: r1 (larger A) takes t1 (0.5) + t2 (0.4); r0 takes t1 (0.7).
        // Throughput phase: remaining 3 go to 0.42 (r0), 0.35 (r1), 0.294 (r0).
        assert_eq!(out.selections[0].len(), 3);
        assert_eq!(out.selections[1].len(), 3);
        assert!(out.slo_satisfied.iter().all(|&s| s));
        assert_eq!(out.budget_left, 0);
        let probs0: Vec<f64> = out.selections[0].iter().map(|&n| r0.path_prob(n)).collect();
        assert_eq!(probs0, vec![0.7, 0.42, 0.294]);
        let probs1: Vec<f64> = out.selections[1].iter().map(|&n| r1.path_prob(n)).collect();
        assert_eq!(probs1, vec![0.5, 0.4, 0.35]);
    }

    #[test]
    fn selections_are_connected() {
        let r0 = fig5_r0();
        let r1 = fig5_r1();
        for budget in 0..=12u64 {
            let input = ScsdInput {
                candidates: &[&r0, &r1],
                requirements: &[1.9, 1.7],
                budget,
                n_max: 4,
                min_phase2_prob: 0.0,
            };
            let out = select_tokens(&input);
            for (tree, sel) in [(&r0, &out.selections[0]), (&r1, &out.selections[1])] {
                tree.induced_subtree(sel).expect("connected selection");
            }
        }
    }

    #[test]
    fn n_max_caps_slo_phase_but_not_throughput_phase() {
        let r0 = fig5_r0();
        // Huge requirement, tiny n_max: the SLO phase stops at 1 token.
        let input = ScsdInput {
            candidates: &[&r0],
            requirements: &[5.0],
            budget: 2,
            n_max: 1,
            min_phase2_prob: 0.0,
        };
        let out = select_tokens(&input);
        assert!(!out.slo_satisfied[0]);
        // Throughput phase still spends the leftover token.
        assert_eq!(out.selections[0].len(), 2);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let r0 = fig5_r0();
        let r1 = fig5_r1();
        for budget in 0..=12u64 {
            let input = ScsdInput {
                candidates: &[&r0, &r1],
                requirements: &[2.0, 2.0],
                budget,
                n_max: 16,
                min_phase2_prob: 0.0,
            };
            let out = select_tokens(&input);
            let total: usize = out.selections.iter().map(Vec::len).sum();
            assert!(total as u64 <= budget);
            assert_eq!(out.budget_left, budget - total as u64);
        }
    }

    #[test]
    fn slower_requests_are_served_first_under_scarcity() {
        let r0 = fig5_r0(); // high-probability nodes
        let r1 = fig5_r1(); // slower request (larger A)
        let input = ScsdInput {
            candidates: &[&r0, &r1],
            requirements: &[1.3, 1.9],
            budget: 2,
            n_max: 16,
            min_phase2_prob: 0.0,
        };
        let out = select_tokens(&input);
        // r1's requirement (1.9) is processed first, consuming both tokens.
        assert_eq!(out.selections[1].len(), 2);
        assert_eq!(out.selections[0].len(), 0);
        assert!(out.slo_satisfied[1]);
        assert!(!out.slo_satisfied[0]);
    }

    #[test]
    fn zero_requirements_fall_through_to_throughput_phase() {
        let r0 = fig5_r0();
        let input = ScsdInput {
            candidates: &[&r0],
            requirements: &[0.0],
            budget: 3,
            n_max: 16,
            min_phase2_prob: 0.0,
        };
        let out = select_tokens(&input);
        assert_eq!(out.selections[0].len(), 3);
        let probs: Vec<f64> = out.selections[0].iter().map(|&n| r0.path_prob(n)).collect();
        assert_eq!(probs, vec![0.7, 0.42, 0.294], "highest-prob first");
    }

    #[test]
    fn estimated_accept_matches_selected_mass() {
        let r0 = fig5_r0();
        let input = ScsdInput {
            candidates: &[&r0],
            requirements: &[1.5],
            budget: 4,
            n_max: 16,
            min_phase2_prob: 0.0,
        };
        let out = select_tokens(&input);
        let expect: f64 = 1.0
            + out.selections[0]
                .iter()
                .map(|&n| r0.path_prob(n))
                .sum::<f64>();
        assert!((out.estimated_accept[0] - expect).abs() < 1e-12);
    }
}
