//! The SLO-customized scheduler (paper Fig. 6, §5).
//!
//! Holds the profiled token budgets, the adaptive `(d, w)` controller and
//! the iteration-latency estimate (`t_spec` in eq. 2, tracked as an EMA of
//! observed iteration latencies), and computes per-request requirements for
//! each decoding iteration.

use crate::adaptive::AdaptiveController;
use crate::formulation::slo_requirement;
use roofline::TokenBudgetProfile;
use serving::LiveRequest;
use spectree::SpecParams;

/// Scheduler configuration and state.
#[derive(Debug, Clone)]
pub struct SloCustomizedScheduler {
    /// Adaptive `(d, w)` controller (eq. 8–9).
    pub controller: AdaptiveController,
    /// Verification token budget per iteration (the paper's `B`).
    pub verify_budget: u64,
    /// Per-request token cap during SLO-customized selection.
    pub n_max: usize,
    /// Use the adaptive controller (true) or fixed parameters (ablations).
    pub adaptive: bool,
    /// Parameters used when `adaptive` is false.
    pub static_params: SpecParams,
    /// Disable the SLO-customized phase (ablation: throughput-only).
    pub slo_selection: bool,
    /// EMA of observed iteration latency (ms), the `t_spec` estimate.
    ema_iter_ms: f64,
    /// EMA smoothing factor for new observations.
    alpha: f64,
}

impl SloCustomizedScheduler {
    /// Builds a scheduler from a hardware profile.
    ///
    /// `initial_iter_ms` seeds the `t_spec` estimate (use the testbed's
    /// baseline decode latency).
    pub fn from_profile(profile: &TokenBudgetProfile, initial_iter_ms: f64) -> Self {
        Self {
            controller: AdaptiveController::new(profile.verify_budget, profile.spec_budget),
            verify_budget: profile.verify_budget,
            n_max: 8,
            adaptive: true,
            static_params: SpecParams::new(4, 2),
            slo_selection: true,
            ema_iter_ms: initial_iter_ms,
            alpha: 0.3,
        }
    }

    /// `(d, w)` for `n` active decoding requests.
    pub fn spec_params(&self, n: usize) -> SpecParams {
        if self.adaptive {
            self.controller.params(n)
        } else {
            self.static_params
        }
    }

    /// Current `t_spec` (predicted iteration latency, ms).
    pub fn t_spec_estimate(&self) -> f64 {
        self.ema_iter_ms
    }

    /// Folds an observed iteration latency into the estimate.
    pub fn observe_iteration(&mut self, iter_ms: f64) {
        if iter_ms > 0.0 {
            self.ema_iter_ms = (1.0 - self.alpha) * self.ema_iter_ms + self.alpha * iter_ms;
        }
    }

    /// Computes `A_cap(r)` for each decoding request.
    ///
    /// The returned requirement follows the paper's root-inclusive
    /// convention (Algorithm 2 initializes the per-request acceptance
    /// estimate at 1.0 for the guaranteed bonus token), so a requirement
    /// below 1.0 needs no speculated tokens.
    pub fn requirements(&self, requests: &[&LiveRequest], now_ms: f64, depth: u32) -> Vec<f64> {
        let mut out = Vec::new();
        self.requirements_into(requests.iter().copied(), now_ms, depth, &mut out);
        out
    }

    /// Scratch-buffer variant of [`SloCustomizedScheduler::requirements`]:
    /// fills `out` (cleared first) from any request iterator, so the
    /// engine's hot loop needs neither a `Vec<&LiveRequest>` nor a fresh
    /// result allocation per iteration.
    pub fn requirements_into<'a>(
        &self,
        requests: impl Iterator<Item = &'a LiveRequest>,
        now_ms: f64,
        depth: u32,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if !self.slo_selection {
            out.extend(requests.map(|_| 0.0));
            return;
        }
        out.extend(requests.map(|r| {
            slo_requirement(
                r.decode_latency_ms(now_ms),
                self.ema_iter_ms,
                r.generated(),
                r.spec.tpot_slo_ms,
                depth,
            )
            .capped
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Category, RequestSpec};

    fn profile() -> TokenBudgetProfile {
        TokenBudgetProfile {
            verify_budget: 160,
            spec_budget: 256,
            verify_latency_ms: 33.0,
            draft_step_latency_ms: 2.0,
        }
    }

    fn live(slo: f64, generated: u32) -> LiveRequest {
        let mut r = LiveRequest::new(RequestSpec {
            id: 1,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: 4,
            output_len: 100,
            tpot_slo_ms: slo,
            ttft_slo_ms: 1_000.0,
            stream_seed: 5,
            prefix: None,
        });
        r.decode_start_ms = Some(0.0);
        for i in 0..generated {
            r.advance_prefill(if i == 0 { 4 } else { 0 });
            r.push_token(simllm::TokenId(10 + i));
        }
        r
    }

    #[test]
    fn ema_tracks_observations() {
        let mut s = SloCustomizedScheduler::from_profile(&profile(), 30.0);
        assert_eq!(s.t_spec_estimate(), 30.0);
        s.observe_iteration(50.0);
        assert!((s.t_spec_estimate() - 36.0).abs() < 1e-9);
        s.observe_iteration(0.0); // ignored
        assert!((s.t_spec_estimate() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn requirements_rank_tight_slos_higher() {
        let s = SloCustomizedScheduler::from_profile(&profile(), 30.0);
        let tight = live(25.0, 2);
        let loose = live(150.0, 2);
        // Both requests 100 ms into decoding.
        let reqs = s.requirements(&[&tight, &loose], 100.0, 4);
        assert!(reqs[0] > reqs[1], "tight {} !> loose {}", reqs[0], reqs[1]);
    }

    #[test]
    fn ablation_disables_slo_phase() {
        let mut s = SloCustomizedScheduler::from_profile(&profile(), 30.0);
        s.slo_selection = false;
        let r = live(25.0, 0);
        assert_eq!(s.requirements(&[&r], 100.0, 4), vec![0.0]);
    }

    #[test]
    fn static_mode_ignores_load() {
        let mut s = SloCustomizedScheduler::from_profile(&profile(), 30.0);
        s.adaptive = false;
        assert_eq!(s.spec_params(1), s.spec_params(100));
        assert_eq!(s.spec_params(1), SpecParams::new(4, 2));
    }

    #[test]
    fn adaptive_mode_shrinks_under_load() {
        let s = SloCustomizedScheduler::from_profile(&profile(), 30.0);
        assert!(s.spec_params(100).depth < s.spec_params(1).depth);
    }
}
