//! Grid search for the adaptive controller's constants (paper §5.2:
//! "`c₁` and `c₂` are tunable constants, selected via grid search").
//!
//! The search serves a short calibration workload for each `(c₁, c₂)` cell
//! and scores it by SLO attainment (goodput breaking ties), returning the
//! best constants. Deterministic and CPU-only, it reproduces the paper's
//! offline tuning step as a first-class library feature.

use crate::engine::{AdaServeEngine, AdaServeOptions};
use serving::{Colocated, ServeSession, SystemConfig};
use workload::Workload;

/// One evaluated grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningCell {
    /// Depth-formula constant (`c₁`).
    pub c1: f64,
    /// Width-formula constant (`c₂`).
    pub c2: f64,
    /// SLO attainment achieved on the calibration workload (%).
    pub attainment_pct: f64,
    /// Goodput achieved (tokens/s).
    pub goodput_tps: f64,
}

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// All evaluated cells, in grid order.
    pub cells: Vec<TuningCell>,
    /// Index of the winning cell.
    pub best: usize,
}

impl TuningReport {
    /// The winning cell.
    pub fn best_cell(&self) -> TuningCell {
        self.cells[self.best]
    }
}

/// Grid-searches `(c₁, c₂)` on a calibration workload.
///
/// `make_config` builds a fresh deployment per cell (engines are stateful);
/// the same workload is served for every cell, so scores are comparable.
pub fn grid_search_constants(
    make_config: impl Fn() -> SystemConfig,
    workload: &Workload,
    c1_grid: &[f64],
    c2_grid: &[f64],
) -> TuningReport {
    assert!(
        !c1_grid.is_empty() && !c2_grid.is_empty(),
        "non-empty grids required"
    );
    let mut cells = Vec::with_capacity(c1_grid.len() * c2_grid.len());
    for &c1 in c1_grid {
        for &c2 in c2_grid {
            let mut engine =
                AdaServeEngine::with_options(make_config(), AdaServeOptions::default());
            engine.scheduler_mut().controller.c1 = c1;
            engine.scheduler_mut().controller.c2 = c2;
            let result = ServeSession::new(Colocated::new(Box::new(engine)))
                .serve(workload)
                .expect("calibration run completes");
            let report = result.report();
            cells.push(TuningCell {
                c1,
                c2,
                attainment_pct: report.attainment_pct,
                goodput_tps: report.goodput_tps,
            });
        }
    }
    let best = cells
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.attainment_pct
                .total_cmp(&b.attainment_pct)
                .then(a.goodput_tps.total_cmp(&b.goodput_tps))
        })
        .map(|(i, _)| i)
        .expect("non-empty grid");
    TuningReport { cells, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::WorkloadBuilder;

    #[test]
    fn grid_search_returns_best_cell() {
        let config = SystemConfig::llama70b(3);
        let wl = WorkloadBuilder::new(5, config.baseline_ms)
            .target_rps(2.0)
            .duration_ms(6_000.0)
            .build();
        let report =
            grid_search_constants(|| SystemConfig::llama70b(3), &wl, &[0.0, 1.0], &[0.0, 1.0]);
        assert_eq!(report.cells.len(), 4);
        let best = report.best_cell();
        for cell in &report.cells {
            assert!(
                best.attainment_pct >= cell.attainment_pct
                    || (best.attainment_pct == cell.attainment_pct
                        && best.goodput_tps >= cell.goodput_tps)
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        let config = SystemConfig::llama70b(3);
        let wl = WorkloadBuilder::new(5, config.baseline_ms)
            .target_rps(1.0)
            .duration_ms(2_000.0)
            .build();
        let _ = grid_search_constants(|| SystemConfig::llama70b(3), &wl, &[], &[1.0]);
    }
}
