//! [`AdaServeEngine`]: the full serving engine (paper Fig. 6).
//!
//! Each decoding iteration runs the four-step pipeline of §4.3:
//!
//! 1. **Speculation** — the draft model builds a beam-search candidate tree
//!    per decoding request (depth/width from the adaptive controller);
//! 2. **SLO-customized selection** — tokens are selected per request until
//!    its `A_cap(r)` is reached (slowest requests first, `n_max` capped);
//! 3. **Throughput-optimized selection** — the remaining verification budget
//!    goes to the globally most probable candidates;
//! 4. **Verification** — the target model verifies every draft tree in one
//!    batched pass (co-batched with chunked prefill of incoming prompts).
//!
//! Speculation and verification are charged to the (modelled) GPU; selection
//! is real CPU work measured with a wall-clock timer (reproducing the
//! paper's Fig. 15 overhead claim on *this* implementation).

use crate::scheduler::SloCustomizedScheduler;
use crate::scsd::{select_tokens_with, ScsdInput, ScsdScratch};
use roofline::{BudgetPolicy, ForwardPass, SeqWork, TokenBudgetProfile};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};
use spectree::{
    verify_tree_with, CandidateTree, SpecParams, SpeculateScratch, SubtreeScratch, TokenTree,
    VerifyScratch,
};
use std::collections::HashMap;
use std::time::Instant;

/// Tunables of the AdaServe engine (defaults follow the paper).
#[derive(Debug, Clone, Copy)]
pub struct AdaServeOptions {
    /// How the verification token budget is derived from profiling.
    pub budget_policy: BudgetPolicy,
    /// Per-request cap during SLO-customized selection (`n_max`).
    pub n_max: usize,
    /// Adaptive `(d, w)` control (eq. 8–9); false = fixed parameters.
    pub adaptive: bool,
    /// Fixed parameters used when `adaptive` is false.
    pub static_params: SpecParams,
    /// Prompt tokens co-batched with each verification pass (chunked
    /// prefill in the style of Sarathi-Serve / FlashInfer batched prefill).
    pub prefill_chunk: u32,
    /// Enable the SLO-customized selection phase (false = throughput-only,
    /// for ablations).
    pub slo_selection: bool,
    /// Marginal-utility cutoff for throughput-phase selection (see
    /// [`crate::scsd::ScsdInput::min_phase2_prob`]).
    pub min_phase2_prob: f64,
}

impl Default for AdaServeOptions {
    fn default() -> Self {
        Self {
            budget_policy: BudgetPolicy::LatencyStretch(2.5),
            n_max: 8,
            adaptive: true,
            static_params: SpecParams::new(4, 2),
            prefill_chunk: 128,
            slo_selection: true,
            min_phase2_prob: 0.08,
        }
    }
}

/// Iteration-scoped scratch state, hoisted out of [`AdaServeEngine::step`]
/// so the hot loop reuses buffers instead of reallocating them every
/// iteration (candidate trees, selections, requirement vectors, the
/// request-position map of the capacity pass).
#[derive(Debug, Default)]
struct IterScratch {
    /// Surviving decoding indices of the current iteration.
    decoding: Vec<usize>,
    /// Request-id worklist of the capacity pass.
    ids: Vec<u64>,
    /// Ids that kept their KV reservation.
    surviving: Vec<u64>,
    /// Lazily rebuilt id → running-index map (invalidated by preemption).
    positions: HashMap<u64, usize>,
    /// Per-request `A_cap` requirements.
    requirements: Vec<f64>,
    /// Selection working state (candidate orders, counters, heap).
    scsd: ScsdScratch,
    /// Beam-search buffers.
    spec: SpeculateScratch,
    /// Subtree-extraction buffers (kept-id sort, dense remap).
    subtree: SubtreeScratch,
    /// Verification-walk buffers (extended context, path tokens).
    verify: VerifyScratch,
    /// Pooled candidate trees (rebuilt in place each iteration).
    candidates: Vec<CandidateTree>,
    /// Pooled selected draft trees (rebuilt in place each iteration).
    draft_trees: Vec<TokenTree>,
    /// Iterations in which any buffer above grew its allocation.
    grow_events: u64,
}

impl IterScratch {
    /// Sum of tracked buffer capacities (allocation-discipline probe),
    /// including the pooled tree arenas — so a regression that breaks
    /// `TokenTree::reset` pooling shows up in `scratch_grow_events`.
    fn capacity_sum(&self) -> usize {
        self.decoding.capacity()
            + self.ids.capacity()
            + self.surviving.capacity()
            + self.positions.capacity()
            + self.requirements.capacity()
            + self.scsd.capacity_sum()
            + self.subtree.capacity_sum()
            + self.verify.capacity_sum()
            + self.candidates.capacity()
            + self
                .candidates
                .iter()
                .map(|c| c.tree().arena_capacity() + c.layers().len())
                .sum::<usize>()
            + self.draft_trees.capacity()
            + self
                .draft_trees
                .iter()
                .map(TokenTree::arena_capacity)
                .sum::<usize>()
    }
}

/// The AdaServe serving engine.
#[derive(Debug)]
pub struct AdaServeEngine {
    core: EngineCore,
    scheduler: SloCustomizedScheduler,
    options: AdaServeOptions,
    profile: TokenBudgetProfile,
    scratch: IterScratch,
}

impl AdaServeEngine {
    /// Creates an engine with default options.
    pub fn new(config: SystemConfig) -> Self {
        Self::with_options(config, AdaServeOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(config: SystemConfig, options: AdaServeOptions) -> Self {
        let profile = TokenBudgetProfile::profile(
            &config.testbed.target,
            &config.testbed.draft,
            512,
            options.budget_policy,
        );
        let mut scheduler = SloCustomizedScheduler::from_profile(&profile, config.baseline_ms);
        scheduler.n_max = options.n_max;
        scheduler.adaptive = options.adaptive;
        scheduler.static_params = options.static_params;
        scheduler.slo_selection = options.slo_selection;
        Self {
            core: EngineCore::new(config),
            scheduler,
            options,
            profile,
            scratch: IterScratch::default(),
        }
    }

    /// The hardware profile in use (budgets, latencies).
    pub fn profile(&self) -> &TokenBudgetProfile {
        &self.profile
    }

    /// The scheduler (exposed for tests and ablations).
    pub fn scheduler(&self) -> &SloCustomizedScheduler {
        &self.scheduler
    }

    /// Mutable scheduler access (tuning and ablations).
    pub fn scheduler_mut(&mut self) -> &mut SloCustomizedScheduler {
        &mut self.scheduler
    }

    /// Ensures KV headroom for every decoding request (context + d + 1
    /// tokens), preempting later-admitted requests on pressure. Fills
    /// `self.scratch.decoding` with the surviving decoding indices
    /// (stable order).
    ///
    /// Works by request id because preemption inside the loop reshuffles
    /// indices — but resolves ids through a position map that is only
    /// rebuilt when a preemption actually changed the batch, so the
    /// common (no-pressure) iteration is O(n) instead of the old
    /// O(n²) `position()`-per-id scan.
    fn ensure_decode_capacity(&mut self, depth: u32) {
        let scratch = &mut self.scratch;
        scratch.ids.clear();
        scratch.ids.extend(
            self.core
                .running
                .iter()
                .filter(|r| r.phase == Phase::Decoding)
                .map(|r| r.spec.id),
        );
        let rebuild = |positions: &mut HashMap<u64, usize>, core: &EngineCore| {
            positions.clear();
            positions.extend(core.running.iter().enumerate().map(|(i, r)| (r.spec.id, i)));
        };
        rebuild(&mut scratch.positions, &self.core);
        let mut map_len = self.core.running.len();
        scratch.surviving.clear();
        for &id in &scratch.ids {
            if self.core.running.len() != map_len {
                // A preemption (victim or self) shrank the batch: the map
                // is stale, rebuild it once before the next lookup.
                rebuild(&mut scratch.positions, &self.core);
                map_len = self.core.running.len();
            }
            let Some(&idx) = scratch.positions.get(&id) else {
                continue; // Preempted as a victim of an earlier growth.
            };
            if self.core.grow_with_preemption(idx, u64::from(depth) + 1) {
                scratch.surviving.push(id);
            } else {
                // Could not fit even alone: preempt self and retry later.
                // The failed growth evicted every other request, shifting
                // this one's position — re-resolve by id, never by the
                // stale index.
                if let Some(pos) = self.core.running.iter().position(|r| r.spec.id == id) {
                    self.core.preempt(pos);
                }
            }
        }
        if self.core.running.len() != map_len {
            rebuild(&mut scratch.positions, &self.core);
        }
        scratch.decoding.clear();
        scratch.decoding.extend(
            scratch
                .surviving
                .iter()
                .filter_map(|id| scratch.positions.get(id).copied()),
        );
    }

    /// One pure-prefill pass over waiting prompts (no decoding requests).
    fn prefill_only_step(&mut self, now_ms: f64) -> StepResult {
        let plan = self.core.plan_prefill(self.options.prefill_chunk.max(2048));
        if plan.is_empty() {
            // Admitted nothing and nothing to prefill: idle tick.
            return StepResult { latency_ms: 1.0 };
        }
        let mut pass = ForwardPass::default();
        for &(i, chunk) in &plan {
            pass.push(SeqWork::prefill(chunk, self.core.running[i].prefilled()));
        }
        let ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, false);
        self.core.apply_prefill(&plan);
        self.core.breakdown.prefill_ms += ms;
        self.core.stamp_decode_starts(now_ms + ms);
        StepResult { latency_ms: ms }
    }
}

impl ServingEngine for AdaServeEngine {
    fn name(&self) -> String {
        "AdaServe".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();

        // Adaptive parameters from the decoding population.
        let n_decoding = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .count();
        if n_decoding == 0 {
            return self.prefill_only_step(now_ms);
        }
        let mut params = self.scheduler.spec_params(n_decoding);
        if self.core.degraded {
            // Graceful degradation under recovery pressure: shed the
            // speculation tree down to plain decoding (depth 1 emits the
            // one committed token per iteration, no drafts) so compute
            // goes to catching up retried requests, not to gambles.
            params = SpecParams::new(1, 1);
        }

        // Snapshot before the capacity pass so its scratch growth (id
        // worklist, position map) counts toward the discipline probe too.
        let cap_before = self.scratch.capacity_sum();

        // Capacity first so the decoding set is stable for the iteration.
        self.ensure_decode_capacity(params.depth);
        if self.scratch.decoding.is_empty() {
            return self.prefill_only_step(now_ms);
        }
        let n = self.scratch.decoding.len();

        // ---- Step 1: speculation (draft model, GPU). ----
        let mut draft_ms = 0.0;
        {
            // First step: all roots (shape changes iteration to iteration →
            // eager); steps 2..d: n×w tokens with stable shapes → CUDA graph
            // (paper §5.2).
            let mut first = ForwardPass::default();
            for &i in &self.scratch.decoding {
                first.push(SeqWork::decode(self.core.running[i].context_len()));
            }
            draft_ms += self
                .core
                .config
                .testbed
                .draft
                .forward_latency_ms(&first, false);
            if params.depth > 1 {
                let mut rest = ForwardPass::default();
                for &i in &self.scratch.decoding {
                    rest.push(SeqWork {
                        new_tokens: params.width,
                        ctx_len: self.core.running[i].context_len(),
                    });
                }
                let per_step = self
                    .core
                    .config
                    .testbed
                    .draft
                    .forward_latency_ms(&rest, true);
                draft_ms += per_step * f64::from(params.depth - 1);
            }
        }
        {
            // Beam search per request into the pooled candidate trees —
            // arena, layer list and beam buffers all reused.
            let scratch = &mut self.scratch;
            if scratch.candidates.len() < n {
                scratch.candidates.resize_with(n, CandidateTree::empty);
            }
            let running = &self.core.running;
            let draft = self.core.config.pair.draft();
            for (cand, &i) in scratch.candidates.iter_mut().zip(&scratch.decoding) {
                cand.speculate_with(draft, &running[i].lm_context(), params, &mut scratch.spec);
            }
        }
        self.core.breakdown.speculation_ms += draft_ms;

        // ---- Steps 2–3: selection (CPU, wall-clock measured). ----
        let sched_timer = Instant::now();
        {
            let scratch = &mut self.scratch;
            self.scheduler.requirements_into(
                scratch.decoding.iter().map(|&i| &self.core.running[i]),
                now_ms,
                params.depth,
                &mut scratch.requirements,
            );
            // One small per-iteration allocation remains in the selection
            // path: this vec of n tree references for `ScsdInput` (borrow
            // rules keep it out of the scratch struct).
            let candidate_trees: Vec<&TokenTree> =
                scratch.candidates[..n].iter().map(|c| c.tree()).collect();
            let budget = self.scheduler.verify_budget.saturating_sub(n as u64); // roots
            select_tokens_with(
                &ScsdInput {
                    candidates: &candidate_trees,
                    requirements: &scratch.requirements,
                    budget,
                    n_max: self.scheduler.n_max,
                    min_phase2_prob: self.options.min_phase2_prob,
                },
                &mut scratch.scsd,
            );
            if scratch.draft_trees.len() < n {
                scratch
                    .draft_trees
                    .resize_with(n, || TokenTree::new(simllm::TokenId(0)));
            }
            for (k, cand) in candidate_trees.iter().enumerate() {
                cand.induced_subtree_into(
                    &scratch.scsd.ordered[k][..scratch.scsd.taken[k]],
                    &mut scratch.draft_trees[k],
                    &mut scratch.subtree,
                )
                .expect("connected selection");
            }
        }
        self.core.breakdown.scheduling_ms += sched_timer.elapsed().as_secs_f64() * 1e3;

        // ---- Step 4: verification (target model, GPU), co-batched with
        // chunked prefill. ----
        let draft_trees = &self.scratch.draft_trees;
        let prefill_plan = self.core.plan_prefill(self.options.prefill_chunk);
        let mut pass = ForwardPass::default();
        for (k, &i) in self.scratch.decoding.iter().enumerate() {
            let tree_tokens = draft_trees[k].num_speculated().max(1) as u32;
            pass.push(SeqWork::verify(
                tree_tokens,
                self.core.running[i].context_len(),
            ));
        }
        for &(i, chunk) in &prefill_plan {
            pass.push(SeqWork::prefill(chunk, self.core.running[i].prefilled()));
        }
        let cobatched = !prefill_plan.is_empty();
        let verify_ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, !cobatched);
        self.core.breakdown.verification_ms += verify_ms;

        // Apply verification outcomes against the synthetic target model.
        for (k, &i) in self.scratch.decoding.iter().enumerate() {
            let outcome = {
                let r = &self.core.running[i];
                verify_tree_with(
                    self.core.config.pair.target(),
                    &r.lm_context(),
                    &draft_trees[k],
                    u64::from(r.generated()),
                    self.core.config.verify_mode,
                    &mut self.scratch.verify,
                )
            };
            let num_speculated = draft_trees[k].num_speculated() as u64;
            let r = &mut self.core.running[i];
            let remaining = r.remaining() as usize;
            let mut advanced = 0usize;
            for &tok in outcome.accepted_tokens.iter().take(remaining) {
                r.push_token(tok);
                advanced += 1;
            }
            if advanced < remaining {
                r.push_token(outcome.bonus_token);
            }
            self.core.speculated_total += num_speculated;
            self.core.accepted_total += advanced as u64;
            let r = &mut self.core.running[i];
            r.accepted_tokens += advanced as u64;
            r.verify_steps += 1;
        }
        self.core.apply_prefill(&prefill_plan);

        // Hot-loop health counters: cache effectiveness and allocation
        // discipline, surfaced through `RunResult`/`UnitStats`.
        if self.scratch.capacity_sum() > cap_before {
            self.scratch.grow_events += 1;
        }
        let cache = self.core.config.pair.dist_cache_stats();
        self.core.hotloop.dist_cache_hits = cache.hits;
        self.core.hotloop.dist_cache_misses = cache.misses;
        self.core.hotloop.scratch_grow_events =
            self.scratch.grow_events + self.scratch.spec.grow_events();
        self.core.hotloop.iterations += 1;
        self.core.hotloop.peak_decode_batch = self.core.hotloop.peak_decode_batch.max(n as u64);

        let iter_ms = draft_ms + verify_ms;
        self.scheduler.observe_iteration(iter_ms);
        self.core.stamp_decode_starts(now_ms + iter_ms);
        self.core.collect_finished(now_ms + iter_ms);
        StepResult {
            latency_ms: iter_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::{Colocated, RunOptions, RunReport, ServeSession, ServingEngine};
    use workload::{Category, RequestSpec, Workload, WorkloadBuilder};

    /// Front-door drive of one engine (replaces the deprecated
    /// `serving::run`).
    fn run(engine: &mut dyn ServingEngine, wl: &Workload, options: RunOptions) -> RunReport {
        ServeSession::with_options(Colocated::borrowed(engine), options)
            .serve(wl)
            .expect("run completes")
    }

    fn tiny_workload(n: u64, category: Category, slo: f64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category,
                arrival_ms: id as f64 * 5.0,
                prompt_len: 32,
                output_len: 12,
                tpot_slo_ms: slo,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0xF00D,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "tiny".into(),
        }
    }

    #[test]
    fn serves_all_requests() {
        let mut engine = AdaServeEngine::new(SystemConfig::llama70b(1));
        let wl = tiny_workload(6, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert_eq!(result.records.len(), 6);
        for r in &result.records {
            assert_eq!(r.output_tokens, 12);
        }
    }

    #[test]
    fn speculation_advances_multiple_tokens_per_iteration() {
        let mut engine = AdaServeEngine::new(SystemConfig::llama70b(1));
        let wl = tiny_workload(4, Category::CodingCopilot, 30.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert!(
            result.mean_accepted_per_verify() > 0.8,
            "mean accepted = {}",
            result.mean_accepted_per_verify()
        );
    }

    #[test]
    fn tokens_match_autoregressive_stream() {
        // The same request served by AdaServe and by plain sampling must
        // produce the same number of tokens with the same per-position
        // process (verified indirectly: deterministic reruns agree).
        let wl = tiny_workload(3, Category::Chatbot, 50.0);
        let a = run(
            &mut AdaServeEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        );
        let b = run(
            &mut AdaServeEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        );
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn light_load_attains_tight_slos() {
        let config = SystemConfig::llama70b(1);
        let baseline = config.baseline_ms;
        let wl = WorkloadBuilder::new(5, baseline)
            .target_rps(1.0)
            .duration_ms(20_000.0)
            .build();
        let mut engine = AdaServeEngine::new(config);
        let result = run(&mut engine, &wl, RunOptions::default());
        let report = result.report();
        assert_eq!(report.requests, wl.requests.len());
        assert!(
            report.attainment_pct > 80.0,
            "attainment = {} at light load",
            report.attainment_pct
        );
    }

    #[test]
    fn scheduling_overhead_is_small() {
        let mut engine = AdaServeEngine::new(SystemConfig::llama70b(1));
        let wl = tiny_workload(8, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        let b = result.units[0].result.breakdown;
        let (sched_pct, _, _, _, _) = b.shares_pct();
        assert!(sched_pct < 5.0, "scheduling share = {sched_pct}%");
    }

    #[test]
    fn hot_loop_stats_are_surfaced_and_healthy() {
        // Satellite of the Fig. 15 claim: the CPU hot loop must stay
        // observable — the distribution cache actually hits (verification
        // re-reads draft-pass contexts through the shared memo) and the
        // iteration scratch stops growing once warm.
        let config = SystemConfig::llama70b(1);
        let wl = WorkloadBuilder::new(5, config.baseline_ms)
            .target_rps(2.0)
            .duration_ms(20_000.0)
            .build();
        let mut engine = AdaServeEngine::new(config);
        let result = run(&mut engine, &wl, RunOptions::default());
        let h = result.units[0].result.hotloop;
        assert!(h.iterations > 50, "enough decode iterations to warm up");
        assert!(
            h.dist_cache_hits + h.dist_cache_misses > 0,
            "cache lookups recorded"
        );
        assert!(
            h.dist_cache_hit_rate_pct() > 5.0,
            "verification should hit the draft pass's target-memo entries \
             (hit rate = {:.1}%)",
            h.dist_cache_hit_rate_pct()
        );
        assert!(h.peak_decode_batch >= 1);
        assert!(
            h.allocs_per_iteration() < 0.2,
            "scratch buffers must stop growing once warm \
             ({} grow events over {} iterations)",
            h.scratch_grow_events,
            h.iterations
        );
    }

    #[test]
    fn throughput_only_ablation_still_serves() {
        let options = AdaServeOptions {
            slo_selection: false,
            ..Default::default()
        };
        let mut engine = AdaServeEngine::with_options(SystemConfig::llama70b(1), options);
        let wl = tiny_workload(4, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert_eq!(result.records.len(), 4);
    }

    #[test]
    fn static_params_ablation_still_serves() {
        let options = AdaServeOptions {
            adaptive: false,
            static_params: SpecParams::new(3, 2),
            ..Default::default()
        };
        let mut engine = AdaServeEngine::with_options(SystemConfig::llama70b(1), options);
        let wl = tiny_workload(4, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert_eq!(result.records.len(), 4);
    }
}
