//! [`AdaServeEngine`]: the full serving engine (paper Fig. 6).
//!
//! Each decoding iteration runs the four-step pipeline of §4.3:
//!
//! 1. **Speculation** — the draft model builds a beam-search candidate tree
//!    per decoding request (depth/width from the adaptive controller);
//! 2. **SLO-customized selection** — tokens are selected per request until
//!    its `A_cap(r)` is reached (slowest requests first, `n_max` capped);
//! 3. **Throughput-optimized selection** — the remaining verification budget
//!    goes to the globally most probable candidates;
//! 4. **Verification** — the target model verifies every draft tree in one
//!    batched pass (co-batched with chunked prefill of incoming prompts).
//!
//! Speculation and verification are charged to the (modelled) GPU; selection
//! is real CPU work measured with a wall-clock timer (reproducing the
//! paper's Fig. 15 overhead claim on *this* implementation).

use crate::scheduler::SloCustomizedScheduler;
use crate::scsd::{select_tokens, ScsdInput};
use roofline::{BudgetPolicy, ForwardPass, SeqWork, TokenBudgetProfile};
use serving::{EngineCore, Phase, ServingEngine, StepResult, SystemConfig};
use spectree::{verify_tree, CandidateTree, SpecParams};
use std::time::Instant;

/// Tunables of the AdaServe engine (defaults follow the paper).
#[derive(Debug, Clone, Copy)]
pub struct AdaServeOptions {
    /// How the verification token budget is derived from profiling.
    pub budget_policy: BudgetPolicy,
    /// Per-request cap during SLO-customized selection (`n_max`).
    pub n_max: usize,
    /// Adaptive `(d, w)` control (eq. 8–9); false = fixed parameters.
    pub adaptive: bool,
    /// Fixed parameters used when `adaptive` is false.
    pub static_params: SpecParams,
    /// Prompt tokens co-batched with each verification pass (chunked
    /// prefill in the style of Sarathi-Serve / FlashInfer batched prefill).
    pub prefill_chunk: u32,
    /// Enable the SLO-customized selection phase (false = throughput-only,
    /// for ablations).
    pub slo_selection: bool,
    /// Marginal-utility cutoff for throughput-phase selection (see
    /// [`crate::scsd::ScsdInput::min_phase2_prob`]).
    pub min_phase2_prob: f64,
}

impl Default for AdaServeOptions {
    fn default() -> Self {
        Self {
            budget_policy: BudgetPolicy::LatencyStretch(2.5),
            n_max: 8,
            adaptive: true,
            static_params: SpecParams::new(4, 2),
            prefill_chunk: 128,
            slo_selection: true,
            min_phase2_prob: 0.08,
        }
    }
}

/// The AdaServe serving engine.
#[derive(Debug)]
pub struct AdaServeEngine {
    core: EngineCore,
    scheduler: SloCustomizedScheduler,
    options: AdaServeOptions,
    profile: TokenBudgetProfile,
}

impl AdaServeEngine {
    /// Creates an engine with default options.
    pub fn new(config: SystemConfig) -> Self {
        Self::with_options(config, AdaServeOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(config: SystemConfig, options: AdaServeOptions) -> Self {
        let profile = TokenBudgetProfile::profile(
            &config.testbed.target,
            &config.testbed.draft,
            512,
            options.budget_policy,
        );
        let mut scheduler = SloCustomizedScheduler::from_profile(&profile, config.baseline_ms);
        scheduler.n_max = options.n_max;
        scheduler.adaptive = options.adaptive;
        scheduler.static_params = options.static_params;
        scheduler.slo_selection = options.slo_selection;
        Self {
            core: EngineCore::new(config),
            scheduler,
            options,
            profile,
        }
    }

    /// The hardware profile in use (budgets, latencies).
    pub fn profile(&self) -> &TokenBudgetProfile {
        &self.profile
    }

    /// The scheduler (exposed for tests and ablations).
    pub fn scheduler(&self) -> &SloCustomizedScheduler {
        &self.scheduler
    }

    /// Mutable scheduler access (tuning and ablations).
    pub fn scheduler_mut(&mut self) -> &mut SloCustomizedScheduler {
        &mut self.scheduler
    }

    /// Ensures KV headroom for every decoding request (context + d + 1
    /// tokens), preempting later-admitted requests on pressure. Returns the
    /// surviving decoding indices (stable order).
    fn ensure_decode_capacity(&mut self, depth: u32) -> Vec<usize> {
        // Work by request id: preemption inside the loop reshuffles indices.
        let ids: Vec<u64> = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .map(|r| r.spec.id)
            .collect();
        let mut surviving = Vec::with_capacity(ids.len());
        for id in ids {
            let Some(idx) = self.core.running.iter().position(|r| r.spec.id == id) else {
                continue; // Preempted as a victim of an earlier growth.
            };
            if self.core.grow_with_preemption(idx, u64::from(depth) + 1) {
                surviving.push(id);
            } else {
                // Could not fit even alone: preempt self and retry later.
                self.core.preempt(idx);
            }
        }
        surviving
            .into_iter()
            .filter_map(|id| self.core.running.iter().position(|r| r.spec.id == id))
            .collect()
    }

    /// One pure-prefill pass over waiting prompts (no decoding requests).
    fn prefill_only_step(&mut self, now_ms: f64) -> StepResult {
        let plan = self.core.plan_prefill(self.options.prefill_chunk.max(2048));
        if plan.is_empty() {
            // Admitted nothing and nothing to prefill: idle tick.
            return StepResult { latency_ms: 1.0 };
        }
        let mut pass = ForwardPass::default();
        for &(i, chunk) in &plan {
            pass.push(SeqWork::prefill(chunk, self.core.running[i].prefilled()));
        }
        let ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, false);
        self.core.apply_prefill(&plan);
        self.core.breakdown.prefill_ms += ms;
        self.core.stamp_decode_starts(now_ms + ms);
        StepResult { latency_ms: ms }
    }
}

impl ServingEngine for AdaServeEngine {
    fn name(&self) -> String {
        "AdaServe".into()
    }

    fn core(&self) -> &EngineCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    fn step(&mut self, now_ms: f64) -> StepResult {
        self.core.admit_fifo();

        // Adaptive parameters from the decoding population.
        let n_decoding = self
            .core
            .running
            .iter()
            .filter(|r| r.phase == Phase::Decoding)
            .count();
        if n_decoding == 0 {
            return self.prefill_only_step(now_ms);
        }
        let params = self.scheduler.spec_params(n_decoding);

        // Capacity first so the decoding set is stable for the iteration.
        let decoding = self.ensure_decode_capacity(params.depth);
        if decoding.is_empty() {
            return self.prefill_only_step(now_ms);
        }
        let n = decoding.len();

        // ---- Step 1: speculation (draft model, GPU). ----
        let mut draft_ms = 0.0;
        {
            // First step: all roots (shape changes iteration to iteration →
            // eager); steps 2..d: n×w tokens with stable shapes → CUDA graph
            // (paper §5.2).
            let mut first = ForwardPass::default();
            for &i in &decoding {
                first.push(SeqWork::decode(self.core.running[i].context_len()));
            }
            draft_ms += self
                .core
                .config
                .testbed
                .draft
                .forward_latency_ms(&first, false);
            if params.depth > 1 {
                let mut rest = ForwardPass::default();
                for &i in &decoding {
                    rest.push(SeqWork {
                        new_tokens: params.width,
                        ctx_len: self.core.running[i].context_len(),
                    });
                }
                let per_step = self
                    .core
                    .config
                    .testbed
                    .draft
                    .forward_latency_ms(&rest, true);
                draft_ms += per_step * f64::from(params.depth - 1);
            }
        }
        let candidates: Vec<CandidateTree> = decoding
            .iter()
            .map(|&i| {
                let r = &self.core.running[i];
                CandidateTree::speculate(self.core.config.pair.draft(), &r.lm_context(), params)
            })
            .collect();
        self.core.breakdown.speculation_ms += draft_ms;

        // ---- Steps 2–3: selection (CPU, wall-clock measured). ----
        let sched_timer = Instant::now();
        let request_refs: Vec<&serving::LiveRequest> =
            decoding.iter().map(|&i| &self.core.running[i]).collect();
        let requirements = self
            .scheduler
            .requirements(&request_refs, now_ms, params.depth);
        let candidate_trees: Vec<&spectree::TokenTree> =
            candidates.iter().map(|c| c.tree()).collect();
        let budget = self.scheduler.verify_budget.saturating_sub(n as u64); // roots
        let selection = select_tokens(&ScsdInput {
            candidates: &candidate_trees,
            requirements: &requirements,
            budget,
            n_max: self.scheduler.n_max,
            min_phase2_prob: self.options.min_phase2_prob,
        });
        let draft_trees: Vec<spectree::TokenTree> = selection
            .selections
            .iter()
            .zip(&candidate_trees)
            .map(|(sel, cand)| cand.induced_subtree(sel).expect("connected selection"))
            .collect();
        self.core.breakdown.scheduling_ms += sched_timer.elapsed().as_secs_f64() * 1e3;

        // ---- Step 4: verification (target model, GPU), co-batched with
        // chunked prefill. ----
        let prefill_plan = self.core.plan_prefill(self.options.prefill_chunk);
        let mut pass = ForwardPass::default();
        for (k, &i) in decoding.iter().enumerate() {
            let tree_tokens = draft_trees[k].num_speculated().max(1) as u32;
            pass.push(SeqWork::verify(
                tree_tokens,
                self.core.running[i].context_len(),
            ));
        }
        for &(i, chunk) in &prefill_plan {
            pass.push(SeqWork::prefill(chunk, self.core.running[i].prefilled()));
        }
        let cobatched = !prefill_plan.is_empty();
        let verify_ms = self
            .core
            .config
            .testbed
            .target
            .forward_latency_ms(&pass, !cobatched);
        self.core.breakdown.verification_ms += verify_ms;

        // Apply verification outcomes against the synthetic target model.
        for (k, &i) in decoding.iter().enumerate() {
            let outcome = {
                let r = &self.core.running[i];
                verify_tree(
                    self.core.config.pair.target(),
                    &r.lm_context(),
                    &draft_trees[k],
                    u64::from(r.generated()),
                    self.core.config.verify_mode,
                )
            };
            let r = &mut self.core.running[i];
            let remaining = r.remaining() as usize;
            let mut advanced = 0usize;
            for &tok in outcome.accepted_tokens.iter().take(remaining) {
                r.push_token(tok);
                advanced += 1;
            }
            if advanced < remaining {
                r.push_token(outcome.bonus_token);
            }
            self.core.speculated_total += draft_trees[k].num_speculated() as u64;
            self.core.accepted_total += advanced as u64;
            let r = &mut self.core.running[i];
            r.accepted_tokens += advanced as u64;
            r.verify_steps += 1;
        }
        self.core.apply_prefill(&prefill_plan);

        let iter_ms = draft_ms + verify_ms;
        self.scheduler.observe_iteration(iter_ms);
        self.core.stamp_decode_starts(now_ms + iter_ms);
        self.core.collect_finished(now_ms + iter_ms);
        StepResult {
            latency_ms: iter_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serving::{Colocated, RunOptions, RunReport, ServeSession, ServingEngine};
    use workload::{Category, RequestSpec, Workload, WorkloadBuilder};

    /// Front-door drive of one engine (replaces the deprecated
    /// `serving::run`).
    fn run(engine: &mut dyn ServingEngine, wl: &Workload, options: RunOptions) -> RunReport {
        ServeSession::with_options(Colocated::borrowed(engine), options)
            .serve(wl)
            .expect("run completes")
    }

    fn tiny_workload(n: u64, category: Category, slo: f64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category,
                arrival_ms: id as f64 * 5.0,
                prompt_len: 32,
                output_len: 12,
                tpot_slo_ms: slo,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0xF00D,
            })
            .collect();
        Workload {
            requests,
            description: "tiny".into(),
        }
    }

    #[test]
    fn serves_all_requests() {
        let mut engine = AdaServeEngine::new(SystemConfig::llama70b(1));
        let wl = tiny_workload(6, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert_eq!(result.records.len(), 6);
        for r in &result.records {
            assert_eq!(r.output_tokens, 12);
        }
    }

    #[test]
    fn speculation_advances_multiple_tokens_per_iteration() {
        let mut engine = AdaServeEngine::new(SystemConfig::llama70b(1));
        let wl = tiny_workload(4, Category::CodingCopilot, 30.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert!(
            result.mean_accepted_per_verify() > 0.8,
            "mean accepted = {}",
            result.mean_accepted_per_verify()
        );
    }

    #[test]
    fn tokens_match_autoregressive_stream() {
        // The same request served by AdaServe and by plain sampling must
        // produce the same number of tokens with the same per-position
        // process (verified indirectly: deterministic reruns agree).
        let wl = tiny_workload(3, Category::Chatbot, 50.0);
        let a = run(
            &mut AdaServeEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        );
        let b = run(
            &mut AdaServeEngine::new(SystemConfig::llama70b(1)),
            &wl,
            RunOptions::default(),
        );
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn light_load_attains_tight_slos() {
        let config = SystemConfig::llama70b(1);
        let baseline = config.baseline_ms;
        let wl = WorkloadBuilder::new(5, baseline)
            .target_rps(1.0)
            .duration_ms(20_000.0)
            .build();
        let mut engine = AdaServeEngine::new(config);
        let result = run(&mut engine, &wl, RunOptions::default());
        let report = result.report();
        assert_eq!(report.requests, wl.requests.len());
        assert!(
            report.attainment_pct > 80.0,
            "attainment = {} at light load",
            report.attainment_pct
        );
    }

    #[test]
    fn scheduling_overhead_is_small() {
        let mut engine = AdaServeEngine::new(SystemConfig::llama70b(1));
        let wl = tiny_workload(8, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        let b = result.units[0].result.breakdown;
        let (sched_pct, _, _, _) = b.shares_pct();
        assert!(sched_pct < 5.0, "scheduling share = {sched_pct}%");
    }

    #[test]
    fn throughput_only_ablation_still_serves() {
        let options = AdaServeOptions {
            slo_selection: false,
            ..Default::default()
        };
        let mut engine = AdaServeEngine::with_options(SystemConfig::llama70b(1), options);
        let wl = tiny_workload(4, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert_eq!(result.records.len(), 4);
    }

    #[test]
    fn static_params_ablation_still_serves() {
        let options = AdaServeOptions {
            adaptive: false,
            static_params: SpecParams::new(3, 2),
            ..Default::default()
        };
        let mut engine = AdaServeEngine::with_options(SystemConfig::llama70b(1), options);
        let wl = tiny_workload(4, Category::Chatbot, 50.0);
        let result = run(&mut engine, &wl, RunOptions::default());
        assert_eq!(result.records.len(), 4);
    }
}
