//! The multi-SLO serving formulation (paper §3).
//!
//! For each request `r_i` in the batch, the TPOT constraint
//!
//! ```text
//! (l_i + t_spec) / (o_i + acc(T_i)) ≤ t_TPOT_i        (eq. 2)
//! ```
//!
//! rearranges to `acc(T_i) ≥ A(r_i)` with
//!
//! ```text
//! A(r_i) = (l_i + t_spec) / t_TPOT_i − o_i
//! ```
//!
//! the *minimum number of tokens that must be accepted for request `i` in
//! the current decoding iteration to stay on its SLO trajectory*. Since a
//! request can accept at most `d + 1` tokens per iteration (the deepest
//! candidate path plus the bonus token), the practical target is capped:
//! `A_cap(r) = min(A(r), d + 1)` (§4.3 step 2).

/// The per-iteration SLO requirement of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRequirement {
    /// Raw `A(r)`: tokens that must be accepted this iteration (may be ≤ 0
    /// when the request is ahead of its SLO trajectory, or large when
    /// behind).
    pub required: f64,
    /// `A_cap(r)`: requirement capped by what an iteration can deliver.
    pub capped: f64,
}

/// Computes `A(r)` / `A_cap(r)` for one request.
///
/// * `decode_latency_ms` — `l_i`, time since the request's first decode step;
/// * `iteration_latency_ms` — `t_spec`, the (predicted) latency of the
///   current decoding iteration;
/// * `generated` — `o_i`, output tokens already produced;
/// * `tpot_slo_ms` — the request's TPOT SLO;
/// * `max_depth` — the candidate-tree depth `d` bounding per-iteration
///   progress to `d + 1` tokens.
pub fn slo_requirement(
    decode_latency_ms: f64,
    iteration_latency_ms: f64,
    generated: u32,
    tpot_slo_ms: f64,
    max_depth: u32,
) -> SloRequirement {
    assert!(tpot_slo_ms > 0.0, "TPOT SLO must be positive");
    let required = (decode_latency_ms + iteration_latency_ms) / tpot_slo_ms - f64::from(generated);
    let capped = required.min(f64::from(max_depth) + 1.0).max(0.0);
    SloRequirement { required, capped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_request_needs_fraction_of_iteration() {
        // l=0, o=0: the requirement is t_spec / t_TPOT.
        let r = slo_requirement(0.0, 30.0, 0, 50.0, 4);
        assert!((r.required - 0.6).abs() < 1e-12);
        assert!((r.capped - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lagging_request_needs_more() {
        // 1000 ms elapsed, 15 tokens out, SLO 50 ms → needs 20.6 total, 5.6 now.
        let r = slo_requirement(1000.0, 30.0, 15, 50.0, 4);
        assert!((r.required - 5.6).abs() < 1e-9);
        assert_eq!(r.capped, 5.0, "capped at d + 1");
    }

    #[test]
    fn ahead_of_schedule_needs_nothing() {
        let r = slo_requirement(100.0, 30.0, 50, 50.0, 4);
        assert!(r.required < 0.0);
        assert_eq!(r.capped, 0.0);
    }

    #[test]
    fn tighter_slo_raises_requirement() {
        let strict = slo_requirement(500.0, 30.0, 10, 25.0, 8);
        let relaxed = slo_requirement(500.0, 30.0, 10, 150.0, 8);
        assert!(strict.required > relaxed.required);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slo_rejected() {
        let _ = slo_requirement(0.0, 30.0, 0, 0.0, 4);
    }
}
