//! AdaServe: SLO-customized LLM serving with fine-grained speculative
//! decoding — the paper's primary contribution.
//!
//! The crate is organized around the paper's structure:
//!
//! * [`formulation`] — §3's constrained-optimization quantities: the
//!   per-request SLO requirement `A(r)` and its capped variant `A_cap(r)`;
//! * [`optimal`] — §4.1's Algorithm 1: globally optimal token-tree
//!   construction under known path probabilities (with the INVALID case),
//!   tested against brute-force enumeration;
//! * [`scsd`] — §4.3's Algorithm 2: the practical speculate–select–verify
//!   selection (SLO-customized phase + throughput-optimized phase) over
//!   beam-search candidate trees;
//! * [`adaptive`] — §5.2's adaptive controller for speculation depth `d` and
//!   width `w` (equations 8 and 9);
//! * [`scheduler`] — the SLO-customized scheduler tying the four pipeline
//!   steps together for one decoding iteration (Fig. 6);
//! * [`tuning`] — the offline grid search for the controller constants
//!   (`c₁`, `c₂`), as §5.2 describes;
//! * [`engine`] — [`AdaServeEngine`], the full serving engine (request
//!   manager + execution engine) implementing `serving::ServingEngine`.
//!
//! # Quickstart
//!
//! ```
//! use adaserve_core::AdaServeEngine;
//! use serving::{Colocated, ServeSession, SystemConfig};
//! use workload::WorkloadBuilder;
//!
//! let config = SystemConfig::llama70b(42);
//! let workload = WorkloadBuilder::new(7, config.baseline_ms)
//!     .target_rps(2.0)
//!     .duration_ms(5_000.0)
//!     .build();
//! let engine = Box::new(AdaServeEngine::new(config));
//! let result = ServeSession::new(Colocated::new(engine))
//!     .serve(&workload)
//!     .unwrap();
//! let report = result.report();
//! assert_eq!(report.requests, workload.requests.len());
//! ```

pub mod adaptive;
pub mod engine;
pub mod formulation;
pub mod optimal;
pub mod scheduler;
pub mod scsd;
pub mod tuning;

pub use adaptive::AdaptiveController;
pub use engine::{AdaServeEngine, AdaServeOptions};
pub use formulation::{slo_requirement, SloRequirement};
pub use optimal::{optimal_trees, ExplicitProbTree, OptimalError};
pub use scheduler::SloCustomizedScheduler;
pub use scsd::{select_tokens, ScsdInput, ScsdOutput};
pub use tuning::{grid_search_constants, TuningCell, TuningReport};
