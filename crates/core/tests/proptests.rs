//! Property tests for Algorithms 1 and 2.

use adaserve_core::{optimal_trees, select_tokens, ExplicitProbTree, ScsdInput};
use proptest::prelude::*;
use simllm::TokenId;
use spectree::TokenTree;

/// Random candidate token tree with valid strictly-decreasing path probs.
fn arb_candidate_tree() -> impl Strategy<Value = TokenTree> {
    prop::collection::vec((0usize..12, 2u32..300, 0.05f64..0.95), 1..16).prop_map(|ops| {
        let mut tree = TokenTree::new(TokenId(1));
        for (pidx, token, frac) in ops {
            let parent = spectree::NodeId((pidx % tree.len()) as u32);
            let prob = tree.path_prob(parent) * frac;
            let _ = tree.add_child(parent, TokenId(token), prob);
        }
        tree
    })
}

/// Random explicit probability tree for Algorithm 1.
fn arb_prob_tree() -> impl Strategy<Value = ExplicitProbTree> {
    prop::collection::vec((0usize..10, 0.1f64..0.9), 0..10).prop_map(|ops| {
        let mut tree = ExplicitProbTree::new(TokenId(0));
        for (k, (pidx, edge)) in ops.into_iter().enumerate() {
            let parent = pidx % tree.len();
            tree.add(parent, TokenId(100 + k as u32), edge);
        }
        tree
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scsd_respects_budget_and_connectivity(
        trees in prop::collection::vec(arb_candidate_tree(), 1..6),
        reqs in prop::collection::vec(0.0f64..4.0, 1..6),
        budget in 0u64..40,
        n_max in 1usize..12,
        cutoff in 0.0f64..0.3,
    ) {
        let n = trees.len().min(reqs.len());
        let trees = &trees[..n];
        let reqs = &reqs[..n];
        let refs: Vec<&TokenTree> = trees.iter().collect();
        let out = select_tokens(&ScsdInput {
            candidates: &refs,
            requirements: reqs,
            budget,
            n_max,
            min_phase2_prob: cutoff,
        });
        let total: usize = out.selections.iter().map(Vec::len).sum();
        prop_assert!(total as u64 <= budget);
        for (tree, sel) in refs.iter().zip(&out.selections) {
            prop_assert!(tree.induced_subtree(sel).is_ok(), "disconnected selection");
        }
        // Estimated acceptance equals 1 + selected mass.
        for (tree, (sel, est)) in
            refs.iter().zip(out.selections.iter().zip(&out.estimated_accept))
        {
            let mass: f64 = sel.iter().map(|&id| tree.path_prob(id)).sum();
            prop_assert!((est - (1.0 + mass)).abs() < 1e-9);
        }
    }

    #[test]
    fn scsd_budget_monotonicity(
        tree in arb_candidate_tree(),
        req in 0.0f64..4.0,
    ) {
        // More budget never reduces the estimated acceptance.
        let refs = [&tree];
        let mut prev = 0.0f64;
        for budget in 0..12u64 {
            let out = select_tokens(&ScsdInput {
                candidates: &refs,
                requirements: &[req],
                budget,
                n_max: 64,
                min_phase2_prob: 0.0,
            });
            prop_assert!(out.estimated_accept[0] >= prev - 1e-12);
            prev = out.estimated_accept[0];
        }
    }

    #[test]
    fn algorithm1_output_is_valid_and_within_budget(
        trees in prop::collection::vec(arb_prob_tree(), 1..4),
        budget in 0u64..24,
    ) {
        let refs: Vec<&ExplicitProbTree> = trees.iter().collect();
        let reqs = vec![1.0; refs.len()];
        match optimal_trees(&refs, &reqs, budget) {
            Ok(out) => {
                let total: usize = out.iter().map(|t| t.len()).sum();
                prop_assert!(total as u64 <= budget.max(refs.len() as u64));
                for t in &out {
                    prop_assert!(t.validate().is_ok());
                }
            }
            Err(_) => {
                // INVALID only when roots alone exceed the budget (req = 1.0
                // is satisfied by the root).
                prop_assert!((budget as usize) < refs.len());
            }
        }
    }

    #[test]
    fn algorithm1_monotone_in_budget(
        trees in prop::collection::vec(arb_prob_tree(), 1..3),
        extra in 0u64..8,
    ) {
        // Objective value never decreases with more budget.
        let refs: Vec<&ExplicitProbTree> = trees.iter().collect();
        let reqs = vec![1.0; refs.len()];
        let b0 = refs.len() as u64;
        let total = |out: &[TokenTree]| -> f64 {
            out.iter().map(|t| t.expected_accepted()).sum()
        };
        let small = optimal_trees(&refs, &reqs, b0).map(|o| total(&o)).unwrap_or(0.0);
        let large =
            optimal_trees(&refs, &reqs, b0 + extra).map(|o| total(&o)).unwrap_or(0.0);
        prop_assert!(large >= small - 1e-12);
    }
}
