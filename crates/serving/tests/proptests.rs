//! Property tests for the paged KV block manager and the cross-request
//! prefix cache.

use proptest::prelude::*;
use serving::{BlockManager, PrefixCache};
use simllm::TokenId;

#[derive(Debug, Clone)]
enum Op {
    Reserve { request: u64, tokens: u64 },
    Release { request: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..12, 1u64..600).prop_map(|(request, tokens)| Op::Reserve { request, tokens }),
            (0u64..12).prop_map(|request| Op::Release { request }),
        ],
        0..80,
    )
}

proptest! {
    #[test]
    fn accounting_never_breaks(ops in arb_ops(), total in 1u64..64, block in 1u32..64) {
        let mut m = BlockManager::new(total, block);
        // Shadow model: per-request token high-water marks.
        let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
        for op in ops {
            match op {
                Op::Reserve { request, tokens } => {
                    let ok = m.reserve(request, tokens);
                    let predicted = m.can_hold(request, tokens);
                    if ok {
                        let blocks = tokens.div_ceil(u64::from(block));
                        let prev = shadow.entry(request).or_insert(0);
                        *prev = (*prev).max(blocks);
                        prop_assert!(predicted, "reserve succeeded but can_hold said no");
                    }
                }
                Op::Release { request } => {
                    m.release(request);
                    shadow.remove(&request);
                }
            }
            prop_assert!(m.validate().is_ok());
            let used: u64 = shadow.values().sum();
            prop_assert_eq!(m.free_blocks(), total - used);
            prop_assert!(m.utilization() >= 0.0 && m.utilization() <= 1.0);
        }
        // Release everything: the pool must be whole again.
        for request in 0..12u64 {
            m.release(request);
        }
        prop_assert_eq!(m.free_blocks(), total);
    }

    #[test]
    fn failed_reserve_changes_nothing(total in 1u64..8, block in 1u32..32) {
        let mut m = BlockManager::new(total, block);
        // Fill the pool with request 0.
        prop_assert!(m.reserve(0, total * u64::from(block)));
        let free_before = m.free_blocks();
        let held_before = m.held_by(1);
        prop_assert!(!m.reserve(1, 1));
        prop_assert_eq!(m.free_blocks(), free_before);
        prop_assert_eq!(m.held_by(1), held_before);
    }

    #[test]
    fn blocks_for_is_exact_ceiling(tokens in 0u64..10_000, block in 1u32..128) {
        let m = BlockManager::new(1, block);
        let blocks = m.blocks_for(tokens);
        prop_assert!(blocks * u64::from(block) >= tokens);
        if blocks > 0 {
            prop_assert!((blocks - 1) * u64::from(block) < tokens);
        }
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Insert { stream: u64, len: usize },
    LookupPin { id: u64, stream: u64, len: usize },
    Release { id: u64 },
}

/// Tiny alphabet ⇒ heavy prefix sharing ⇒ edge splits, merges and LRU
/// eviction all get exercised.
fn cache_tokens(stream: u64, len: usize) -> Vec<TokenId> {
    (0..len)
        .map(|i| TokenId((((stream >> (i % 8)) & 1) as u32) + 2))
        .collect()
}

fn arb_cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..8, 1usize..40).prop_map(|(stream, len)| CacheOp::Insert { stream, len }),
            (0u64..6, 0u64..8, 1usize..40).prop_map(|(id, stream, len)| CacheOp::LookupPin {
                id,
                stream,
                len
            }),
            (0u64..6).prop_map(|id| CacheOp::Release { id }),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn prefix_cache_accounting_and_pins_hold(
        ops in arb_cache_ops(),
        budget in 1u64..64,
        block in 1u32..8,
    ) {
        let mut c = PrefixCache::new(budget, block);
        // Shadow model: what each live pin is entitled to keep reusing.
        let mut pinned: std::collections::HashMap<u64, (Vec<TokenId>, u32, u32)> =
            Default::default();
        for op in ops {
            match op {
                CacheOp::Insert { stream, len } => c.insert(&cache_tokens(stream, len)),
                CacheOp::LookupPin { id, stream, len } => {
                    let tokens = cache_tokens(stream, len);
                    let max_reuse = (tokens.len() as u32).saturating_sub(1);
                    let reused = c.lookup_pin(id, &tokens, max_reuse);
                    prop_assert!(reused <= max_reuse);
                    pinned.insert(id, (tokens, max_reuse, reused));
                }
                CacheOp::Release { id } => {
                    c.release(id);
                    pinned.remove(&id);
                }
            }
            // Token accounting is conserved across splits/merges/evictions.
            prop_assert_eq!(c.audit_resident_tokens(), c.resident_tokens());
            // The budget holds unless pins force residency over it.
            prop_assert!(c.resident_tokens() <= budget || c.pinned_node_count() > 0);
            // A pinned prefix is never evicted out from under its request.
            for (tokens, max_reuse, reused) in pinned.values() {
                prop_assert!(c.peek(tokens, *max_reuse) >= *reused);
            }
        }
        // Releasing every pin makes the whole cache evictable again.
        for id in 0..6u64 {
            c.release(id);
        }
        prop_assert_eq!(c.pinned_node_count(), 0);
        c.insert(&cache_tokens(9, 1));
        prop_assert!(c.resident_tokens() <= budget);
    }
}
