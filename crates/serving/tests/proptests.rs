//! Property tests for the paged KV block manager.

use proptest::prelude::*;
use serving::BlockManager;

#[derive(Debug, Clone)]
enum Op {
    Reserve { request: u64, tokens: u64 },
    Release { request: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..12, 1u64..600).prop_map(|(request, tokens)| Op::Reserve { request, tokens }),
            (0u64..12).prop_map(|request| Op::Release { request }),
        ],
        0..80,
    )
}

proptest! {
    #[test]
    fn accounting_never_breaks(ops in arb_ops(), total in 1u64..64, block in 1u32..64) {
        let mut m = BlockManager::new(total, block);
        // Shadow model: per-request token high-water marks.
        let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
        for op in ops {
            match op {
                Op::Reserve { request, tokens } => {
                    let ok = m.reserve(request, tokens);
                    let predicted = m.can_hold(request, tokens);
                    if ok {
                        let blocks = tokens.div_ceil(u64::from(block));
                        let prev = shadow.entry(request).or_insert(0);
                        *prev = (*prev).max(blocks);
                        prop_assert!(predicted, "reserve succeeded but can_hold said no");
                    }
                }
                Op::Release { request } => {
                    m.release(request);
                    shadow.remove(&request);
                }
            }
            prop_assert!(m.validate().is_ok());
            let used: u64 = shadow.values().sum();
            prop_assert_eq!(m.free_blocks(), total - used);
            prop_assert!(m.utilization() >= 0.0 && m.utilization() <= 1.0);
        }
        // Release everything: the pool must be whole again.
        for request in 0..12u64 {
            m.release(request);
        }
        prop_assert_eq!(m.free_blocks(), total);
    }

    #[test]
    fn failed_reserve_changes_nothing(total in 1u64..8, block in 1u32..32) {
        let mut m = BlockManager::new(total, block);
        // Fill the pool with request 0.
        prop_assert!(m.reserve(0, total * u64::from(block)));
        let free_before = m.free_blocks();
        let held_before = m.held_by(1);
        prop_assert!(!m.reserve(1, 1));
        prop_assert_eq!(m.free_blocks(), free_before);
        prop_assert_eq!(m.held_by(1), held_before);
    }

    #[test]
    fn blocks_for_is_exact_ceiling(tokens in 0u64..10_000, block in 1u32..128) {
        let m = BlockManager::new(1, block);
        let blocks = m.blocks_for(tokens);
        prop_assert!(blocks * u64::from(block) >= tokens);
        if blocks > 0 {
            prop_assert!((blocks - 1) * u64::from(block) < tokens);
        }
    }
}
