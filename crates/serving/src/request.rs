//! Runtime request state.

use simllm::{ContentClass, LmContext, TokenId};
use workload::RequestSpec;

/// Lifecycle phase of a live request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// In the waiting queue; no KV allocated.
    Waiting,
    /// Admitted; prompt (or recomputation) partially prefilled.
    Prefilling,
    /// Actively decoding.
    Decoding,
    /// All output tokens emitted.
    Finished,
}

/// A request being served: static spec plus mutable progress.
#[derive(Debug, Clone)]
pub struct LiveRequest {
    /// The immutable workload spec.
    pub spec: RequestSpec,
    /// Prompt + generated tokens.
    tokens: Vec<TokenId>,
    /// Number of generated (output) tokens so far.
    generated: u32,
    /// Tokens prefilled into KV so far (≤ context length).
    prefilled: u32,
    /// Prompt tokens whose KV was reused from the cross-request prefix
    /// cache ([`crate::prefix`]): counted as already prefilled, and their
    /// blocks are shared with the cache rather than reserved privately.
    kv_reused: u32,
    /// Current phase.
    pub phase: Phase,
    /// When the first decode iteration started (set once).
    pub decode_start_ms: Option<f64>,
    /// When the final token was emitted.
    pub completion_ms: Option<f64>,
    /// Accepted speculated tokens, cumulative.
    pub accepted_tokens: u64,
    /// Verification / decode iterations participated in.
    pub verify_steps: u64,
    /// Preemption count.
    pub preemptions: u32,
}

impl LiveRequest {
    /// Materializes a live request from its spec.
    pub fn new(spec: RequestSpec) -> Self {
        let tokens = spec.prompt_tokens();
        Self {
            spec,
            tokens,
            generated: 0,
            prefilled: 0,
            kv_reused: 0,
            phase: Phase::Waiting,
            decode_start_ms: None,
            completion_ms: None,
            accepted_tokens: 0,
            verify_steps: 0,
            preemptions: 0,
        }
    }

    /// The request's content class (drives LM statistics).
    pub fn content_class(&self) -> ContentClass {
        self.spec.category.content_class()
    }

    /// Full token sequence (prompt + generated).
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Current context length (tokens in the logical KV cache when fully
    /// prefilled): prompt + generated.
    pub fn context_len(&self) -> u32 {
        self.tokens.len() as u32
    }

    /// Output tokens generated so far (the paper's `o_i`).
    pub fn generated(&self) -> u32 {
        self.generated
    }

    /// Output tokens still to generate.
    pub fn remaining(&self) -> u32 {
        self.spec.output_len.saturating_sub(self.generated)
    }

    /// Tokens prefilled so far.
    pub fn prefilled(&self) -> u32 {
        self.prefilled
    }

    /// Prompt tokens reused from the prefix cache (0 without a hit).
    pub fn kv_reused(&self) -> u32 {
        self.kv_reused
    }

    /// Marks the first `n` context tokens as served by the prefix cache:
    /// they count as already prefilled (the roofline pass only charges
    /// the uncached suffix) and [`LiveRequest::kv_need`] stops reserving
    /// blocks for them. Called once at admission, on a fresh reservation.
    ///
    /// # Panics
    ///
    /// Panics if prefill already progressed or `n` covers the whole
    /// context (at least one token must remain to genuinely prefill).
    pub fn reuse_prefix(&mut self, n: u32) {
        assert_eq!(self.prefilled, 0, "reuse applies before prefill starts");
        assert!(n < self.context_len(), "a token of real prefill remains");
        self.prefilled = n;
        self.kv_reused = n;
    }

    /// KV tokens this request must privately reserve to grow its context
    /// by `extra` tokens: the full context plus `extra`, minus the cached
    /// prefix shared with the prefix cache.
    pub fn kv_need(&self, extra: u64) -> u64 {
        u64::from(self.context_len()) + extra - u64::from(self.kv_reused)
    }

    /// Tokens of context still needing prefill before decode can proceed.
    pub fn prefill_remaining(&self) -> u32 {
        self.context_len().saturating_sub(self.prefilled)
    }

    /// Advances prefill progress by `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if advancing beyond the context length.
    pub fn advance_prefill(&mut self, n: u32) {
        assert!(self.prefilled + n <= self.context_len(), "prefill overrun");
        self.prefilled += n;
        self.phase = Phase::Prefilling;
        if self.prefill_remaining() == 0 {
            self.phase = Phase::Decoding;
        }
    }

    /// Appends one generated token (also counts as prefilled: verification /
    /// decode writes its KV entry in the same pass).
    ///
    /// # Panics
    ///
    /// Panics if the request is already finished.
    pub fn push_token(&mut self, token: TokenId) {
        assert!(
            self.generated < self.spec.output_len,
            "pushing past output length"
        );
        self.tokens.push(token);
        self.generated += 1;
        self.prefilled += 1;
    }

    /// Whether all output tokens have been emitted.
    pub fn is_done(&self) -> bool {
        self.generated >= self.spec.output_len
    }

    /// Drops KV state for preemption-by-recomputation (vLLM style): the
    /// request keeps its generated tokens but must re-prefill its whole
    /// context when re-admitted. Any prefix-cache reuse is forgotten too
    /// (re-admission performs a fresh lookup).
    pub fn drop_kv_for_preemption(&mut self) {
        self.prefilled = 0;
        self.kv_reused = 0;
        self.phase = Phase::Waiting;
        self.preemptions += 1;
    }

    /// Forgets prefix-cache reuse without losing prefill progress — the
    /// migration handoff: the decode side receives the *full* context KV,
    /// so it reserves for (and owns) every token.
    pub fn clear_kv_reused(&mut self) {
        self.kv_reused = 0;
    }

    /// Decode-time latency so far (the paper's `l_i`): time since the first
    /// decode step.
    pub fn decode_latency_ms(&self, now_ms: f64) -> f64 {
        self.decode_start_ms.map_or(0.0, |s| (now_ms - s).max(0.0))
    }

    /// Current average TPOT if the request finished at `now_ms`.
    pub fn current_avg_tpot_ms(&self, now_ms: f64) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        self.decode_latency_ms(now_ms) / f64::from(self.generated)
    }

    /// LM context for the current sequence tail.
    pub fn lm_context(&self) -> LmContext<'_> {
        LmContext::new(self.spec.stream_seed, self.content_class(), &self.tokens)
    }

    /// Converts a finished request into its telemetry record.
    ///
    /// # Panics
    ///
    /// Panics if the request has not finished (missing timestamps).
    pub fn into_record(self) -> metrics::RequestRecord {
        assert!(self.is_done(), "request not finished");
        metrics::RequestRecord {
            id: self.spec.id,
            category: self.spec.category,
            tpot_slo_ms: self.spec.tpot_slo_ms,
            ttft_slo_ms: self.spec.ttft_slo_ms,
            arrival_ms: self.spec.arrival_ms,
            decode_start_ms: self.decode_start_ms.expect("decode started"),
            completion_ms: self.completion_ms.expect("completion recorded"),
            output_tokens: self.generated,
            accepted_tokens: self.accepted_tokens,
            verify_steps: self.verify_steps,
            preemptions: self.preemptions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Category;

    fn spec() -> RequestSpec {
        RequestSpec {
            id: 1,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: 8,
            output_len: 4,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: 7,
            prefix: None,
        }
    }

    #[test]
    fn new_request_needs_full_prefill() {
        let r = LiveRequest::new(spec());
        assert_eq!(r.phase, Phase::Waiting);
        assert_eq!(r.context_len(), 8);
        assert_eq!(r.prefill_remaining(), 8);
        assert_eq!(r.remaining(), 4);
    }

    #[test]
    fn prefill_transitions_to_decoding() {
        let mut r = LiveRequest::new(spec());
        r.advance_prefill(5);
        assert_eq!(r.phase, Phase::Prefilling);
        r.advance_prefill(3);
        assert_eq!(r.phase, Phase::Decoding);
        assert_eq!(r.prefill_remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "prefill overrun")]
    fn prefill_overrun_panics() {
        let mut r = LiveRequest::new(spec());
        r.advance_prefill(9);
    }

    #[test]
    fn push_token_tracks_progress() {
        let mut r = LiveRequest::new(spec());
        r.advance_prefill(8);
        r.push_token(TokenId(42));
        assert_eq!(r.generated(), 1);
        assert_eq!(r.context_len(), 9);
        assert_eq!(r.prefill_remaining(), 0, "decode writes its own KV");
        assert!(!r.is_done());
        for t in [1u32, 2, 3] {
            r.push_token(TokenId(t));
        }
        assert!(r.is_done());
    }

    #[test]
    fn preemption_resets_prefill_but_keeps_tokens() {
        let mut r = LiveRequest::new(spec());
        r.advance_prefill(8);
        r.push_token(TokenId(42));
        r.drop_kv_for_preemption();
        assert_eq!(r.generated(), 1);
        assert_eq!(r.prefill_remaining(), 9, "whole context recomputed");
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.phase, Phase::Waiting);
    }

    #[test]
    fn record_roundtrip() {
        let mut r = LiveRequest::new(spec());
        r.advance_prefill(8);
        r.decode_start_ms = Some(10.0);
        for t in 0..4u32 {
            r.push_token(TokenId(t + 10));
        }
        r.completion_ms = Some(110.0);
        let rec = r.into_record();
        assert_eq!(rec.output_tokens, 4);
        assert!((rec.avg_tpot_ms() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn prefix_reuse_skips_prefill_and_shrinks_kv_need() {
        let mut r = LiveRequest::new(spec());
        assert_eq!(r.kv_need(1), 9, "full context + 1 without reuse");
        r.reuse_prefix(6);
        assert_eq!(r.kv_reused(), 6);
        assert_eq!(r.prefill_remaining(), 2, "only the suffix prefills");
        assert_eq!(r.kv_need(1), 3, "cached blocks are shared, not owned");
        // Preemption forgets the reuse along with the rest of the KV.
        r.advance_prefill(2);
        r.drop_kv_for_preemption();
        assert_eq!(r.kv_reused(), 0);
        assert_eq!(r.prefill_remaining(), 8);
    }

    #[test]
    #[should_panic(expected = "a token of real prefill remains")]
    fn reuse_cannot_cover_the_whole_context() {
        let mut r = LiveRequest::new(spec());
        r.reuse_prefix(8);
    }

    #[test]
    fn decode_latency_starts_at_decode() {
        let mut r = LiveRequest::new(spec());
        assert_eq!(r.decode_latency_ms(50.0), 0.0);
        r.decode_start_ms = Some(30.0);
        assert!((r.decode_latency_ms(50.0) - 20.0).abs() < 1e-9);
    }
}
