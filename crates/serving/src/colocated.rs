//! The colocated deployment: one engine serving the full request
//! lifecycle, behind the unified [`Deployment`] front door.

use crate::engine::{finalize_run, Pool, RunError, RunOptions, ServingEngine, StallGuard};
use crate::fault::FaultKind;
use crate::probe::{core_gauges, trace_replica, ProbeState, StepProbe};
use crate::session::{Deployment, DeploymentStep, LifecycleTracker, ReplicaAddr, UnitStats};
use metrics::telemetry::{GaugeSample, Tracer};
use workload::RequestSpec;

/// How the deployment holds its engine: owned for front-door callers,
/// borrowed for the legacy `run(&mut dyn ServingEngine, …)` shim.
enum EngineSlot<'a> {
    Owned(Box<dyn ServingEngine>),
    Borrowed(&'a mut dyn ServingEngine),
}

impl std::fmt::Debug for EngineSlot<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, name) = match self {
            EngineSlot::Owned(e) => ("Owned", e.name()),
            EngineSlot::Borrowed(e) => ("Borrowed", e.name()),
        };
        write!(f, "EngineSlot::{kind}({name})")
    }
}

/// A single [`ServingEngine`] (AdaServe or any baseline) wrapped as a
/// [`Deployment`]: the simplest shape a [`crate::ServeSession`] drives,
/// equivalent to — and the replacement for — the legacy single-engine
/// [`crate::engine::run`] driver.
#[derive(Debug)]
pub struct Colocated<'a> {
    engine: EngineSlot<'a>,
    clock_ms: f64,
    accepting: bool,
    down: bool,
    latency_factor: f64,
    routed: u64,
    guard: StallGuard,
    tracker: LifecycleTracker,
    finished_seen: usize,
    tracer: Tracer,
    probe_state: ProbeState,
}

impl<'a> Colocated<'a> {
    /// Wraps an owned engine.
    pub fn new(engine: Box<dyn ServingEngine>) -> Self {
        Self::from_slot(EngineSlot::Owned(engine))
    }

    /// Wraps a borrowed engine (the legacy-shim path; callers that still
    /// own the engine afterwards can inspect it).
    pub fn borrowed(engine: &'a mut dyn ServingEngine) -> Self {
        Self::from_slot(EngineSlot::Borrowed(engine))
    }

    fn from_slot(engine: EngineSlot<'a>) -> Self {
        Self {
            engine,
            clock_ms: 0.0,
            accepting: true,
            down: false,
            latency_factor: 1.0,
            routed: 0,
            guard: StallGuard::default(),
            tracker: LifecycleTracker::default(),
            finished_seen: 0,
            tracer: Tracer::off(),
            probe_state: ProbeState::default(),
        }
    }

    /// Whether a drain has been recorded against the lone replica.
    ///
    /// With a single replica there is nowhere else to route, so —
    /// matching the fleet-wide degrade-don't-drop rule — a drained
    /// colocated deployment keeps serving; the flag is observable state
    /// for callers modelling a drain window.
    pub fn accepting(&self) -> bool {
        self.accepting
    }

    /// Read-only access to the wrapped engine.
    pub fn engine(&self) -> &dyn ServingEngine {
        match &self.engine {
            EngineSlot::Owned(e) => e.as_ref(),
            EngineSlot::Borrowed(e) => &**e,
        }
    }

    fn engine_mut(&mut self) -> &mut dyn ServingEngine {
        match &mut self.engine {
            EngineSlot::Owned(e) => e.as_mut(),
            EngineSlot::Borrowed(e) => &mut **e,
        }
    }
}

impl Deployment for Colocated<'_> {
    fn name(&self) -> String {
        self.engine().name()
    }

    fn max_baseline_ms(&self) -> f64 {
        self.engine().core().config.baseline_ms
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.engine().core().kv_capacity_tokens()
    }

    fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u32 {
        self.engine().core().cached_prefix_tokens(spec)
    }

    fn submit(&mut self, spec: RequestSpec, now_ms: f64) {
        self.engine_mut().core_mut().on_arrival(spec);
        self.clock_ms = self.clock_ms.max(now_ms);
        self.routed += 1;
    }

    fn next_event_ms(&self) -> Option<f64> {
        // A crashed replica is frozen: it holds no work (the crash
        // evicted everything) and steps again only after the session
        // clears the fault.
        if self.down {
            return None;
        }
        self.engine().core().has_work().then_some(self.clock_ms)
    }

    fn step(&mut self, options: &RunOptions) -> Result<DeploymentStep, RunError> {
        let now_ms = self.clock_ms;
        let probe = StepProbe::begin(&self.tracer, self.engine().core());
        let step = self.engine_mut().step(now_ms);
        // An injected slowdown multiplies the modelled iteration latency
        // (factor 1.0 — the healthy case — is an exact IEEE identity, so
        // fault-free runs stay bit-identical).
        let latency_ms = step.latency_ms * self.latency_factor;
        self.engine_mut().core_mut().iterations += 1;
        self.guard
            .observe(latency_ms)
            .map_err(|e| e.at(Pool::Decode, 0))?;
        self.clock_ms += latency_ms.max(1e-6);
        if self.engine().core().iterations > options.max_iterations {
            return Err(RunError::iteration_cap().at(Pool::Decode, 0));
        }
        if self.clock_ms > options.max_sim_ms {
            return Err(RunError::time_cap().at(Pool::Decode, 0));
        }
        let mut events = Vec::new();
        let at_ms = self.clock_ms;
        let core = match &self.engine {
            EngineSlot::Owned(e) => e.core(),
            EngineSlot::Borrowed(e) => e.core(),
        };
        if let Some(probe) = probe {
            probe.finish(
                &self.tracer,
                core,
                trace_replica(ReplicaAddr::serving(0)),
                at_ms,
                latency_ms,
                &mut self.probe_state,
            );
        }
        self.tracker.scan_core(
            core,
            ReplicaAddr::serving(0),
            at_ms,
            &mut self.finished_seen,
            &mut events,
        );
        Ok(DeploymentStep {
            events,
            latency_ms: Some(latency_ms),
            replica: Some(ReplicaAddr::serving(0)),
        })
    }

    fn inject_fault(&mut self, fault: &FaultKind, now_ms: f64) -> Vec<RequestSpec> {
        self.clock_ms = self.clock_ms.max(now_ms);
        match fault {
            FaultKind::ReplicaCrash { replica, .. } => {
                if *replica != ReplicaAddr::serving(0) {
                    return Vec::new();
                }
                self.down = true;
                let lost = self.engine_mut().core_mut().evict_all_for_crash();
                // The lost requests will re-announce their lifecycle if
                // the session re-dispatches them.
                for spec in &lost {
                    self.tracker.forget(spec.id);
                }
                lost
            }
            FaultKind::SlowReplica {
                replica, factor, ..
            } => {
                if *replica == ReplicaAddr::serving(0) {
                    self.latency_factor = *factor;
                }
                Vec::new()
            }
            // No KV interconnect to fault on a colocated engine.
            FaultKind::LinkDegrade { .. } | FaultKind::LinkOutage { .. } => Vec::new(),
        }
    }

    fn clear_fault(&mut self, fault: &FaultKind, now_ms: f64) {
        self.clock_ms = self.clock_ms.max(now_ms);
        match fault {
            FaultKind::ReplicaCrash { replica, .. } => {
                if *replica == ReplicaAddr::serving(0) {
                    self.down = false;
                }
            }
            FaultKind::SlowReplica { replica, .. } => {
                if *replica == ReplicaAddr::serving(0) {
                    self.latency_factor = 1.0;
                }
            }
            FaultKind::LinkDegrade { .. } | FaultKind::LinkOutage { .. } => {}
        }
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.engine_mut().core_mut().degraded = degraded;
    }

    fn set_accepting(&mut self, replica: ReplicaAddr, accepting: bool, now_ms: f64) {
        assert_eq!(
            replica,
            ReplicaAddr::serving(0),
            "colocated deployments have one serving replica"
        );
        self.accepting = accepting;
        self.clock_ms = self.clock_ms.max(now_ms);
    }

    fn iterations(&self) -> u64 {
        self.engine().core().iterations
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn gauges(&self) -> GaugeSample {
        core_gauges(self.engine().core())
    }

    fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    fn drain(&mut self) -> Result<Vec<UnitStats>, RunError> {
        let end_ms = self.clock_ms;
        let result = finalize_run(self.engine_mut(), end_ms);
        Ok(vec![UnitStats {
            replica: ReplicaAddr::serving(0),
            routed: self.routed,
            result,
            prefilled_requests: 0,
            prefill_tokens: 0,
        }])
    }
}
