//! The [`ServingEngine`] trait and the discrete-event driver.
//!
//! Engines advance in *iterations*: each [`ServingEngine::step`] plans one
//! device iteration (admission, prefill, speculation, verification — however
//! the engine's policy composes them), applies its results against the
//! synthetic models and returns the iteration's modelled latency. The driver
//! owns the simulation clock: it injects arrivals whose timestamps have
//! passed, invokes `step`, and advances time by the returned latency —
//! exactly the continuous-batching execution model (iteration-granularity
//! scheduling, §2).

use crate::core::EngineCore;
use metrics::{LatencyBreakdown, RequestRecord};
use workload::Workload;

/// Result of one engine iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Modelled wall-clock duration of the iteration, in milliseconds.
    pub latency_ms: f64,
}

/// A serving engine: policy logic over an [`EngineCore`].
pub trait ServingEngine {
    /// Engine name for reports (e.g. `"vLLM"`, `"AdaServe"`).
    fn name(&self) -> String;

    /// Immutable access to the shared core.
    fn core(&self) -> &EngineCore;

    /// Mutable access to the shared core.
    fn core_mut(&mut self) -> &mut EngineCore;

    /// Executes one iteration at simulation time `now_ms`.
    ///
    /// Must make forward progress whenever [`EngineCore::has_work`] holds;
    /// the returned latency advances the simulation clock.
    fn step(&mut self, now_ms: f64) -> StepResult;
}

/// Driver options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Hard cap on simulated time (guards against runaway runs).
    pub max_sim_ms: f64,
    /// Hard cap on iterations.
    pub max_iterations: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_sim_ms: 4.0 * 3600.0 * 1e3,
            max_iterations: 20_000_000,
        }
    }
}

/// Errors from a driver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The engine stopped making progress (zero-latency steps with work).
    Stalled,
    /// The iteration cap was hit.
    IterationCap,
    /// The simulated-time cap was hit.
    TimeCap,
    /// A request can never fit its target's KV pool (e.g. a migrated
    /// context larger than the whole decode-side allocator).
    KvCapacity,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled => write!(f, "engine stalled (zero-latency steps with work)"),
            RunError::IterationCap => write!(f, "iteration cap exceeded"),
            RunError::TimeCap => write!(f, "simulated-time cap exceeded"),
            RunError::KvCapacity => write!(f, "request exceeds a replica's KV capacity"),
        }
    }
}

impl std::error::Error for RunError {}

/// Detects engines that stop making progress.
///
/// Both the single-engine [`run`] driver and external drivers that
/// interleave several engines under one clock (the `cluster` crate) feed
/// every step latency through a guard; a long run of zero-latency steps
/// while work remains means the engine's policy is stuck.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallGuard {
    zero_steps: u32,
}

impl StallGuard {
    /// Consecutive zero-latency steps tolerated before declaring a stall.
    pub const MAX_ZERO_STEPS: u32 = 1000;

    /// Records one step's latency; errors once the zero-step run exceeds
    /// [`StallGuard::MAX_ZERO_STEPS`].
    pub fn observe(&mut self, latency_ms: f64) -> Result<(), RunError> {
        if latency_ms <= 0.0 {
            self.zero_steps += 1;
            if self.zero_steps > Self::MAX_ZERO_STEPS {
                return Err(RunError::Stalled);
            }
        } else {
            self.zero_steps = 0;
        }
        Ok(())
    }
}

/// Packages a served-out engine's state into a [`RunResult`].
///
/// Drains the completion records, snapshots the breakdown and iteration
/// count, and computes the run-wide mean accepted-per-verify. Called by
/// [`run`] at the end of a single-engine run and by multi-engine drivers
/// for each replica once the cluster-wide clock stops.
pub fn finalize_run(engine: &mut dyn ServingEngine, end_ms: f64) -> RunResult {
    let name = engine.name();
    let core = engine.core_mut();
    let records = core.take_finished();
    let breakdown = core.breakdown;
    let iterations = core.iterations;
    let mean_accepted = {
        let verifies: u64 = records.iter().map(|r| r.verify_steps).sum();
        let accepted: u64 = records.iter().map(|r| r.accepted_tokens).sum();
        if verifies == 0 {
            0.0
        } else {
            accepted as f64 / verifies as f64
        }
    };
    RunResult {
        engine: name,
        records,
        breakdown,
        end_ms,
        iterations,
        mean_accepted_per_verify: mean_accepted,
    }
}

/// Outcome of serving one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Engine name.
    pub engine: String,
    /// Completion records (every request that finished).
    pub records: Vec<RequestRecord>,
    /// Latency breakdown accumulated by the engine.
    pub breakdown: LatencyBreakdown,
    /// Simulation end time.
    pub end_ms: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Mean accepted speculated tokens per verification across the whole run
    /// (0 for non-speculative engines).
    pub mean_accepted_per_verify: f64,
}

impl RunResult {
    /// Builds the paper-style SLO report for this run.
    pub fn report(&self) -> metrics::SloReport {
        metrics::SloReport::from_records(&self.records)
    }
}

/// Serves `workload` to completion on `engine`.
///
/// Arrivals are injected when the clock passes their timestamps; when the
/// engine is idle the clock jumps to the next arrival. Returns an error only
/// if a hard cap is hit (misbehaving engine).
pub fn run(
    engine: &mut dyn ServingEngine,
    workload: &Workload,
    options: RunOptions,
) -> Result<RunResult, RunError> {
    let mut now_ms = 0.0f64;
    let mut next_arrival = 0usize;
    let mut guard = StallGuard::default();
    let requests = &workload.requests;

    loop {
        // Inject all arrivals that have happened by `now_ms`.
        while next_arrival < requests.len() && requests[next_arrival].arrival_ms <= now_ms {
            engine.core_mut().on_arrival(requests[next_arrival].clone());
            next_arrival += 1;
        }
        if !engine.core().has_work() {
            if next_arrival >= requests.len() {
                break; // All served.
            }
            now_ms = requests[next_arrival].arrival_ms;
            continue;
        }
        let step = engine.step(now_ms);
        engine.core_mut().iterations += 1;
        guard.observe(step.latency_ms)?;
        now_ms += step.latency_ms.max(1e-6);
        if engine.core().iterations > options.max_iterations {
            return Err(RunError::IterationCap);
        }
        if now_ms > options.max_sim_ms {
            return Err(RunError::TimeCap);
        }
    }

    Ok(finalize_run(engine, now_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use workload::{Category, RequestSpec};

    /// Minimal engine: admits FIFO, prefills whole prompts, decodes one
    /// token per running request per iteration.
    struct NaiveEngine {
        core: EngineCore,
    }

    impl NaiveEngine {
        fn new() -> Self {
            Self {
                core: EngineCore::new(SystemConfig::llama70b(3)),
            }
        }
    }

    impl ServingEngine for NaiveEngine {
        fn name(&self) -> String {
            "naive".into()
        }

        fn core(&self) -> &EngineCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut EngineCore {
            &mut self.core
        }

        fn step(&mut self, now_ms: f64) -> StepResult {
            self.core.admit_fifo();
            let plan = self.core.plan_prefill(u32::MAX);
            if !plan.is_empty() {
                let mut pass = roofline::ForwardPass::default();
                for &(i, chunk) in &plan {
                    pass.push(roofline::SeqWork::prefill(
                        chunk,
                        self.core.running[i].prefilled(),
                    ));
                }
                self.core.apply_prefill(&plan);
                let ms = self
                    .core
                    .config
                    .testbed
                    .target
                    .forward_latency_ms(&pass, false);
                self.core.breakdown.prefill_ms += ms;
                self.core.stamp_decode_starts(now_ms + ms);
                return StepResult { latency_ms: ms };
            }
            let decoding = self.core.decoding_indices();
            if decoding.is_empty() {
                // Nothing admitted fits; wait a bit.
                return StepResult { latency_ms: 1.0 };
            }
            let mut pass = roofline::ForwardPass::default();
            for &i in &decoding {
                pass.push(roofline::SeqWork::decode(
                    self.core.running[i].context_len(),
                ));
            }
            let ms = self
                .core
                .config
                .testbed
                .target
                .forward_latency_ms(&pass, true);
            for &i in &decoding {
                if self.core.grow_with_preemption(i, 1) {
                    let t = self.core.next_token(i);
                    self.core.running[i].push_token(t);
                    self.core.running[i].verify_steps += 1;
                }
            }
            self.core.breakdown.verification_ms += ms;
            self.core.collect_finished(now_ms + ms);
            StepResult { latency_ms: ms }
        }
    }

    fn tiny_workload(n: u64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: id as f64 * 10.0,
                prompt_len: 12,
                output_len: 6,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x1234,
            })
            .collect();
        Workload {
            requests,
            description: "tiny".into(),
        }
    }

    #[test]
    fn driver_serves_every_request() {
        let mut engine = NaiveEngine::new();
        let wl = tiny_workload(5);
        let result = run(&mut engine, &wl, RunOptions::default()).expect("run succeeds");
        assert_eq!(result.records.len(), 5, "conservation");
        for r in &result.records {
            assert_eq!(r.output_tokens, 6);
            assert!(r.completion_ms > r.arrival_ms);
        }
    }

    #[test]
    fn driver_is_deterministic() {
        let wl = tiny_workload(4);
        let a = run(&mut NaiveEngine::new(), &wl, RunOptions::default()).unwrap();
        let b = run(&mut NaiveEngine::new(), &wl, RunOptions::default()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.end_ms, b.end_ms);
    }

    #[test]
    fn clock_jumps_over_idle_gaps() {
        let mut wl = tiny_workload(2);
        wl.requests[1].arrival_ms = 60_000.0;
        let result = run(&mut NaiveEngine::new(), &wl, RunOptions::default()).unwrap();
        assert!(result.end_ms >= 60_000.0);
        assert_eq!(result.records.len(), 2);
        // Iterations stay small: no busy-waiting through the gap.
        assert!(
            result.iterations < 200,
            "iterations = {}",
            result.iterations
        );
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let mut engine = NaiveEngine::new();
        let wl = tiny_workload(3);
        let err = run(
            &mut engine,
            &wl,
            RunOptions {
                max_sim_ms: f64::MAX,
                max_iterations: 2,
            },
        )
        .unwrap_err();
        assert_eq!(err, RunError::IterationCap);
    }

    #[test]
    fn report_integrates_with_metrics() {
        let mut engine = NaiveEngine::new();
        let wl = tiny_workload(5);
        let result = run(&mut engine, &wl, RunOptions::default()).unwrap();
        let report = result.report();
        assert_eq!(report.requests, 5);
        assert!(report.makespan_ms > 0.0);
    }
}
