//! The [`ServingEngine`] trait and the discrete-event driver.
//!
//! Engines advance in *iterations*: each [`ServingEngine::step`] plans one
//! device iteration (admission, prefill, speculation, verification — however
//! the engine's policy composes them), applies its results against the
//! synthetic models and returns the iteration's modelled latency. The driver
//! owns the simulation clock: it injects arrivals whose timestamps have
//! passed, invokes `step`, and advances time by the returned latency —
//! exactly the continuous-batching execution model (iteration-granularity
//! scheduling, §2).

use crate::core::EngineCore;
use metrics::{HotLoopStats, LatencyBreakdown, RequestRecord};
use workload::Workload;

/// Result of one engine iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Modelled wall-clock duration of the iteration, in milliseconds.
    pub latency_ms: f64,
}

/// A serving engine: policy logic over an [`EngineCore`].
///
/// `Send` is a supertrait so multi-replica drivers can step boxed engines
/// on scoped worker threads (each replica stays single-threaded; only
/// ownership moves across the scope).
pub trait ServingEngine: Send {
    /// Engine name for reports (e.g. `"vLLM"`, `"AdaServe"`).
    fn name(&self) -> String;

    /// Immutable access to the shared core.
    fn core(&self) -> &EngineCore;

    /// Mutable access to the shared core.
    fn core_mut(&mut self) -> &mut EngineCore;

    /// Executes one iteration at simulation time `now_ms`.
    ///
    /// Must make forward progress whenever [`EngineCore::has_work`] holds;
    /// the returned latency advances the simulation clock.
    fn step(&mut self, now_ms: f64) -> StepResult;
}

/// Driver options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Hard cap on simulated time (guards against runaway runs).
    pub max_sim_ms: f64,
    /// Hard cap on iterations.
    pub max_iterations: u64,
    /// How multi-replica deployments execute batched replica stepping
    /// (see [`crate::exec::ExecMode`]); deployments may override it with
    /// their own `with_exec_mode` builder. Output is record-identical
    /// across modes.
    pub exec: crate::exec::ExecMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            max_sim_ms: 4.0 * 3600.0 * 1e3,
            max_iterations: 20_000_000,
            exec: crate::exec::ExecMode::default(),
        }
    }
}

/// The pool a replica belongs to within a deployment.
///
/// Colocated and cluster deployments run a single pool of full-lifecycle
/// replicas, addressed as [`Pool::Decode`]; disaggregated deployments add
/// a [`Pool::Prefill`] tier whose replicas never decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pool {
    /// The prefill-only pool of a disaggregated deployment.
    Prefill,
    /// The decode (serving) pool — in colocated deployments, every replica.
    Decode,
}

impl Pool {
    /// Lowercase display label (`"prefill"` / `"decode"`).
    pub fn label(self) -> &'static str {
        match self {
            Pool::Prefill => "prefill",
            Pool::Decode => "decode",
        }
    }
}

/// Where — and for which request — a run failed.
///
/// Every [`RunError`] carries one of these so a failure in a multi-replica
/// sweep is attributable without rerunning: drivers annotate errors with
/// the pool/replica that raised them (and the request id where one is
/// known) as they bubble up. Fields are `None` when the corresponding
/// dimension does not apply (e.g. a single-engine run has no pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorSite {
    /// Pool the failing replica belongs to.
    pub pool: Option<Pool>,
    /// Index of the failing replica within its pool.
    pub replica: Option<usize>,
    /// Request being served or placed when the failure surfaced.
    pub request: Option<u64>,
}

impl ErrorSite {
    /// Whether no context has been attached.
    pub fn is_empty(&self) -> bool {
        self.pool.is_none() && self.replica.is_none() && self.request.is_none()
    }

    fn describe(&self) -> String {
        let mut parts = Vec::new();
        match (self.pool, self.replica) {
            (Some(pool), Some(replica)) => {
                parts.push(format!("{} replica {replica}", pool.label()))
            }
            (Some(pool), None) => parts.push(format!("{} pool", pool.label())),
            (None, Some(replica)) => parts.push(format!("replica {replica}")),
            (None, None) => {}
        }
        if let Some(id) = self.request {
            parts.push(format!("request {id}"));
        }
        parts.join(", ")
    }
}

/// The failure class of a [`RunError`], independent of where it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// The engine stopped making progress.
    Stalled,
    /// The iteration cap was hit.
    IterationCap,
    /// The simulated-time cap was hit.
    TimeCap,
    /// A request can never fit a KV pool.
    KvCapacity,
}

/// Errors from a driver run, each carrying an [`ErrorSite`].
///
/// Construct with the kind constructors ([`RunError::stalled`],
/// [`RunError::iteration_cap`], …) and attach context with
/// [`RunError::at`] / [`RunError::for_request`]; compare in tests with
/// [`RunError::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunError {
    /// The engine stopped making progress (zero-latency steps with work).
    Stalled(ErrorSite),
    /// The iteration cap was hit.
    IterationCap(ErrorSite),
    /// The simulated-time cap was hit.
    TimeCap(ErrorSite),
    /// A request can never fit its target's KV pool (e.g. a migrated
    /// context larger than the whole decode-side allocator).
    KvCapacity(ErrorSite),
}

impl RunError {
    /// A context-free stall error.
    pub fn stalled() -> Self {
        RunError::Stalled(ErrorSite::default())
    }

    /// A context-free iteration-cap error.
    pub fn iteration_cap() -> Self {
        RunError::IterationCap(ErrorSite::default())
    }

    /// A context-free time-cap error.
    pub fn time_cap() -> Self {
        RunError::TimeCap(ErrorSite::default())
    }

    /// A context-free KV-capacity error.
    pub fn kv_capacity() -> Self {
        RunError::KvCapacity(ErrorSite::default())
    }

    /// The failure class, ignoring the site.
    pub fn kind(&self) -> RunErrorKind {
        match self {
            RunError::Stalled(_) => RunErrorKind::Stalled,
            RunError::IterationCap(_) => RunErrorKind::IterationCap,
            RunError::TimeCap(_) => RunErrorKind::TimeCap,
            RunError::KvCapacity(_) => RunErrorKind::KvCapacity,
        }
    }

    /// The attached failure site.
    pub fn site(&self) -> ErrorSite {
        match self {
            RunError::Stalled(s)
            | RunError::IterationCap(s)
            | RunError::TimeCap(s)
            | RunError::KvCapacity(s) => *s,
        }
    }

    fn site_mut(&mut self) -> &mut ErrorSite {
        match self {
            RunError::Stalled(s)
            | RunError::IterationCap(s)
            | RunError::TimeCap(s)
            | RunError::KvCapacity(s) => s,
        }
    }

    /// Attaches the pool/replica that raised the error, keeping any
    /// already-attached (innermost, most precise) location.
    #[must_use]
    pub fn at(mut self, pool: Pool, replica: usize) -> Self {
        let site = self.site_mut();
        if site.pool.is_none() && site.replica.is_none() {
            site.pool = Some(pool);
            site.replica = Some(replica);
        }
        self
    }

    /// Attaches the request involved, keeping any already-attached id.
    #[must_use]
    pub fn for_request(mut self, id: u64) -> Self {
        let site = self.site_mut();
        if site.request.is_none() {
            site.request = Some(id);
        }
        self
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let base = match self.kind() {
            RunErrorKind::Stalled => "engine stalled (zero-latency steps with work)",
            RunErrorKind::IterationCap => "iteration cap exceeded",
            RunErrorKind::TimeCap => "simulated-time cap exceeded",
            RunErrorKind::KvCapacity => "request exceeds a replica's KV capacity",
        };
        let site = self.site();
        if site.is_empty() {
            write!(f, "{base}")
        } else {
            write!(f, "{base} ({})", site.describe())
        }
    }
}

impl std::error::Error for RunError {}

/// Detects engines that stop making progress.
///
/// Both the single-engine [`run`] driver and external drivers that
/// interleave several engines under one clock (the `cluster` crate) feed
/// every step latency through a guard; a long run of zero-latency steps
/// while work remains means the engine's policy is stuck.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallGuard {
    zero_steps: u32,
}

impl StallGuard {
    /// Consecutive zero-latency steps tolerated before declaring a stall.
    pub const MAX_ZERO_STEPS: u32 = 1000;

    /// Records one step's latency; errors once the zero-step run exceeds
    /// [`StallGuard::MAX_ZERO_STEPS`].
    pub fn observe(&mut self, latency_ms: f64) -> Result<(), RunError> {
        if latency_ms <= 0.0 {
            self.zero_steps += 1;
            if self.zero_steps > Self::MAX_ZERO_STEPS {
                return Err(RunError::stalled());
            }
        } else {
            self.zero_steps = 0;
        }
        Ok(())
    }
}

/// Packages a served-out engine's state into a [`RunResult`].
///
/// Drains the completion records, snapshots the breakdown and iteration
/// count, and computes the run-wide mean accepted-per-verify. Called by
/// [`run`] at the end of a single-engine run and by multi-engine drivers
/// for each replica once the cluster-wide clock stops.
pub fn finalize_run(engine: &mut dyn ServingEngine, end_ms: f64) -> RunResult {
    let name = engine.name();
    let core = engine.core_mut();
    let records = core.take_finished();
    let breakdown = core.breakdown;
    let hotloop = core.hotloop;
    let iterations = core.iterations;
    let mean_accepted = {
        let verifies: u64 = records.iter().map(|r| r.verify_steps).sum();
        let accepted: u64 = records.iter().map(|r| r.accepted_tokens).sum();
        if verifies == 0 {
            0.0
        } else {
            accepted as f64 / verifies as f64
        }
    };
    RunResult {
        engine: name,
        records,
        breakdown,
        hotloop,
        end_ms,
        iterations,
        mean_accepted_per_verify: mean_accepted,
    }
}

/// Outcome of serving one workload.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Engine name.
    pub engine: String,
    /// Completion records (every request that finished).
    pub records: Vec<RequestRecord>,
    /// Latency breakdown accumulated by the engine.
    pub breakdown: LatencyBreakdown,
    /// Hot-loop health counters (distribution-cache hit rate, scratch
    /// allocation discipline, peak decode batch).
    pub hotloop: HotLoopStats,
    /// Simulation end time.
    pub end_ms: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Mean accepted speculated tokens per verification across the whole run
    /// (0 for non-speculative engines).
    pub mean_accepted_per_verify: f64,
}

impl RunResult {
    /// Builds the paper-style SLO report for this run, including
    /// prefix-cache effectiveness from the hot-loop counters.
    pub fn report(&self) -> metrics::SloReport {
        metrics::SloReport::from_records(&self.records).with_prefix_stats(&self.hotloop)
    }
}

/// Serves `workload` to completion on `engine`.
///
/// Arrivals are injected when the clock passes their timestamps; when the
/// engine is idle the clock jumps to the next arrival. Returns an error only
/// if a hard cap is hit (misbehaving engine).
///
/// # Deprecated
///
/// This is now a thin shim over the unified front door — a
/// [`crate::ServeSession`] driving a [`crate::Colocated`] deployment —
/// which additionally supports mid-run submission, scaling and per-request
/// lifecycle events. Output is byte-identical to the pre-shim driver (see
/// `tests/output_equivalence.rs`). Migrate by wrapping the same engine:
///
/// ```
/// use serving::{Colocated, RunError, RunOptions, RunReport, ServeSession, ServingEngine};
/// use workload::Workload;
///
/// // before: serving::run(engine, workload, options)?
/// fn migrated(
///     engine: &mut dyn ServingEngine,
///     workload: &Workload,
///     options: RunOptions,
/// ) -> Result<RunReport, RunError> {
///     ServeSession::with_options(Colocated::borrowed(engine), options).serve(workload)
/// }
/// ```
///
/// [`RunReport::into_colocated_result`](crate::RunReport::into_colocated_result)
/// recovers the old [`RunResult`] shape where callers still need it.
#[deprecated(note = "drive a `ServeSession` over a `Colocated` deployment instead")]
pub fn run(
    engine: &mut dyn ServingEngine,
    workload: &Workload,
    options: RunOptions,
) -> Result<RunResult, RunError> {
    let mut session = crate::session::ServeSession::with_options(
        crate::colocated::Colocated::borrowed(engine),
        options,
    )
    .admission_control(false);
    Ok(session.serve(workload)?.into_colocated_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colocated::Colocated;
    use crate::config::SystemConfig;
    use crate::session::{RunReport, ServeSession};
    use workload::{Category, RequestSpec};

    /// Front-door drive of a single engine (what the deprecated [`run`]
    /// shims over; the shim itself is pinned in the workspace's
    /// `tests/output_equivalence.rs`).
    fn serve(
        engine: &mut dyn ServingEngine,
        workload: &Workload,
        options: RunOptions,
    ) -> Result<RunReport, RunError> {
        ServeSession::with_options(Colocated::borrowed(engine), options).serve(workload)
    }

    /// Minimal engine: admits FIFO, prefills whole prompts, decodes one
    /// token per running request per iteration.
    struct NaiveEngine {
        core: EngineCore,
    }

    impl NaiveEngine {
        fn new() -> Self {
            Self {
                core: EngineCore::new(SystemConfig::llama70b(3)),
            }
        }
    }

    impl ServingEngine for NaiveEngine {
        fn name(&self) -> String {
            "naive".into()
        }

        fn core(&self) -> &EngineCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut EngineCore {
            &mut self.core
        }

        fn step(&mut self, now_ms: f64) -> StepResult {
            self.core.admit_fifo();
            let plan = self.core.plan_prefill(u32::MAX);
            if !plan.is_empty() {
                let mut pass = roofline::ForwardPass::default();
                for &(i, chunk) in &plan {
                    pass.push(roofline::SeqWork::prefill(
                        chunk,
                        self.core.running[i].prefilled(),
                    ));
                }
                self.core.apply_prefill(&plan);
                let ms = self
                    .core
                    .config
                    .testbed
                    .target
                    .forward_latency_ms(&pass, false);
                self.core.breakdown.prefill_ms += ms;
                self.core.stamp_decode_starts(now_ms + ms);
                return StepResult { latency_ms: ms };
            }
            let decoding = self.core.decoding_indices();
            if decoding.is_empty() {
                // Nothing admitted fits; wait a bit.
                return StepResult { latency_ms: 1.0 };
            }
            let mut pass = roofline::ForwardPass::default();
            for &i in &decoding {
                pass.push(roofline::SeqWork::decode(
                    self.core.running[i].context_len(),
                ));
            }
            let ms = self
                .core
                .config
                .testbed
                .target
                .forward_latency_ms(&pass, true);
            for &i in &decoding {
                if self.core.grow_with_preemption(i, 1) {
                    let t = self.core.next_token(i);
                    self.core.running[i].push_token(t);
                    self.core.running[i].verify_steps += 1;
                }
            }
            self.core.breakdown.verification_ms += ms;
            self.core.collect_finished(now_ms + ms);
            StepResult { latency_ms: ms }
        }
    }

    fn tiny_workload(n: u64) -> Workload {
        let requests = (0..n)
            .map(|id| RequestSpec {
                id,
                category: Category::Chatbot,
                arrival_ms: id as f64 * 10.0,
                prompt_len: 12,
                output_len: 6,
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                stream_seed: id ^ 0x1234,
                prefix: None,
            })
            .collect();
        Workload {
            requests,
            description: "tiny".into(),
        }
    }

    #[test]
    fn driver_serves_every_request() {
        let mut engine = NaiveEngine::new();
        let wl = tiny_workload(5);
        let result = serve(&mut engine, &wl, RunOptions::default()).expect("run succeeds");
        assert_eq!(result.records.len(), 5, "conservation");
        for r in &result.records {
            assert_eq!(r.output_tokens, 6);
            assert!(r.completion_ms > r.arrival_ms);
        }
    }

    #[test]
    fn driver_is_deterministic() {
        let wl = tiny_workload(4);
        let a = serve(&mut NaiveEngine::new(), &wl, RunOptions::default()).unwrap();
        let b = serve(&mut NaiveEngine::new(), &wl, RunOptions::default()).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.end_ms, b.end_ms);
    }

    #[test]
    fn clock_jumps_over_idle_gaps() {
        let mut wl = tiny_workload(2);
        wl.requests[1].arrival_ms = 60_000.0;
        let result = serve(&mut NaiveEngine::new(), &wl, RunOptions::default()).unwrap();
        assert!(result.end_ms >= 60_000.0);
        assert_eq!(result.records.len(), 2);
        // Iterations stay small: no busy-waiting through the gap.
        assert!(
            result.iterations < 200,
            "iterations = {}",
            result.iterations
        );
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let mut engine = NaiveEngine::new();
        let wl = tiny_workload(3);
        let err = serve(
            &mut engine,
            &wl,
            RunOptions {
                max_sim_ms: f64::MAX,
                max_iterations: 2,
                ..RunOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), RunErrorKind::IterationCap);
    }

    #[test]
    fn report_integrates_with_metrics() {
        let mut engine = NaiveEngine::new();
        let wl = tiny_workload(5);
        let result = serve(&mut engine, &wl, RunOptions::default()).unwrap();
        let report = result.report();
        assert_eq!(report.requests, 5);
        assert!(report.makespan_ms > 0.0);
    }
}
