//! Paged KV-cache block manager (PagedAttention-style).
//!
//! vLLM's key idea — and the memory model every engine here runs on — is to
//! allocate KV cache in fixed-size token blocks, eliminating reservation
//! fragmentation and enabling preemption. The manager tracks per-request
//! block counts; when the pool is exhausted, engines preempt requests
//! (recompute-style: KV is dropped and the context re-prefilled later).

use std::collections::HashMap;

/// A paged KV allocator over a fixed pool of token blocks.
#[derive(Debug, Clone)]
pub struct BlockManager {
    block_tokens: u32,
    total_blocks: u64,
    free_blocks: u64,
    allocated: HashMap<u64, u64>,
}

impl BlockManager {
    /// Creates a manager for a pool of `total_blocks` blocks of
    /// `block_tokens` tokens each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(total_blocks: u64, block_tokens: u32) -> Self {
        assert!(total_blocks > 0 && block_tokens > 0);
        Self {
            block_tokens,
            total_blocks,
            free_blocks: total_blocks,
            allocated: HashMap::new(),
        }
    }

    /// Sizes a pool from byte capacity and per-token KV bytes.
    pub fn from_capacity(capacity_bytes: u64, kv_bytes_per_token: u64, block_tokens: u32) -> Self {
        let tokens = capacity_bytes / kv_bytes_per_token.max(1);
        let blocks = (tokens / u64::from(block_tokens)).max(1);
        Self::new(blocks, block_tokens)
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u32 {
        self.block_tokens
    }

    /// Total pool size in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Pool utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_blocks as f64 / self.total_blocks as f64
    }

    /// Blocks needed to hold `tokens` tokens.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(u64::from(self.block_tokens))
    }

    /// Whether `request` could grow to `tokens` total tokens right now.
    pub fn can_hold(&self, request: u64, tokens: u64) -> bool {
        let need = self.blocks_for(tokens);
        let have = self.allocated.get(&request).copied().unwrap_or(0);
        need.saturating_sub(have) <= self.free_blocks
    }

    /// Grows (or creates) `request`'s allocation to hold `tokens` tokens.
    ///
    /// Returns `false` (and changes nothing) if the pool cannot satisfy the
    /// growth. Shrinking is not performed here; use [`BlockManager::release`].
    pub fn reserve(&mut self, request: u64, tokens: u64) -> bool {
        let need = self.blocks_for(tokens);
        let have = self.allocated.get(&request).copied().unwrap_or(0);
        if need <= have {
            return true;
        }
        let extra = need - have;
        if extra > self.free_blocks {
            return false;
        }
        self.free_blocks -= extra;
        self.allocated.insert(request, need);
        true
    }

    /// Releases all of `request`'s blocks (no-op if absent).
    pub fn release(&mut self, request: u64) {
        if let Some(blocks) = self.allocated.remove(&request) {
            self.free_blocks += blocks;
            debug_assert!(self.free_blocks <= self.total_blocks);
        }
    }

    /// Blocks currently held by `request`.
    pub fn held_by(&self, request: u64) -> u64 {
        self.allocated.get(&request).copied().unwrap_or(0)
    }

    /// Number of distinct requests holding blocks.
    pub fn active_requests(&self) -> usize {
        self.allocated.len()
    }

    /// Checks pool accounting invariants.
    pub fn validate(&self) -> Result<(), String> {
        let used: u64 = self.allocated.values().sum();
        if used + self.free_blocks != self.total_blocks {
            return Err(format!(
                "accounting mismatch: used {used} + free {} != total {}",
                self.free_blocks, self.total_blocks
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut m = BlockManager::new(10, 16);
        assert!(m.reserve(1, 40)); // 3 blocks
        assert_eq!(m.held_by(1), 3);
        assert_eq!(m.free_blocks(), 7);
        m.release(1);
        assert_eq!(m.free_blocks(), 10);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn growth_only_charges_delta() {
        let mut m = BlockManager::new(10, 16);
        assert!(m.reserve(1, 16)); // 1 block
        assert!(m.reserve(1, 17)); // grow to 2
        assert_eq!(m.held_by(1), 2);
        assert_eq!(m.free_blocks(), 8);
        // Shrink requests are no-ops.
        assert!(m.reserve(1, 1));
        assert_eq!(m.held_by(1), 2);
    }

    #[test]
    fn exhaustion_fails_without_state_change() {
        let mut m = BlockManager::new(2, 16);
        assert!(m.reserve(1, 32));
        assert!(!m.reserve(2, 16));
        assert_eq!(m.free_blocks(), 0);
        assert_eq!(m.held_by(2), 0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn can_hold_predicts_reserve() {
        let mut m = BlockManager::new(3, 16);
        assert!(m.can_hold(1, 48));
        assert!(!m.can_hold(1, 49));
        assert!(m.reserve(1, 48));
        assert!(m.can_hold(1, 48));
        assert!(!m.can_hold(2, 1));
    }

    #[test]
    fn from_capacity_sizes_pool() {
        // 1 MiB capacity, 1 KiB per token → 1024 tokens → 64 blocks of 16.
        let m = BlockManager::from_capacity(1 << 20, 1 << 10, 16);
        assert_eq!(m.total_blocks(), 64);
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut m = BlockManager::new(4, 16);
        assert_eq!(m.utilization(), 0.0);
        m.reserve(1, 32);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }
}
