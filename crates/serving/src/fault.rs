//! Seeded fault injection and the session's recovery policy.
//!
//! A [`FaultPlan`] is pure data: a deterministic schedule of
//! [`FaultKind`]s on the session timeline, alongside the scaling
//! timeline (`scale_at`). The session applies each fault to its
//! deployment at the planned instant and automatically schedules the
//! matching recovery at `at_ms + duration`, so an injected fault can
//! never wedge the event loop — hardware always comes back, only
//! requests can be lost.
//!
//! What a fault *means* is deployment-specific (see
//! [`crate::Deployment::inject_fault`]): a replica crash loses every
//! request the replica held (their KV is gone), a slow replica
//! multiplies its iteration latency for a window, and link faults
//! degrade or abort in-flight KV migrations in disaggregated
//! deployments. Lost requests return to the front door, where the
//! session's [`RecoveryPolicy`] decides their fate: re-dispatch with
//! exponential backoff while the per-request retry budget lasts,
//! terminal rejection once it is exhausted. Sustained recovery pressure
//! triggers graceful degradation — shed speculation depth first, then
//! refuse the loosest SLO tier at admission — instead of collapse.

use crate::session::ReplicaAddr;

/// One injectable fault. All variants carry their own duration; the
/// session schedules the recovery automatically.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The replica crashes: every request it holds (running *and*
    /// queued) loses its KV and returns to the front door; the replica
    /// takes no work until it recovers `down_ms` later.
    ReplicaCrash {
        /// The crashed replica.
        replica: ReplicaAddr,
        /// How long the replica stays down, in milliseconds.
        down_ms: f64,
    },
    /// Transient slowdown: the replica's iteration latency is multiplied
    /// by `factor` for the window (stragglers stress the sharded
    /// executor's work stealing); no requests are lost.
    SlowReplica {
        /// The slowed replica.
        replica: ReplicaAddr,
        /// Latency multiplier (> 1 slows the replica down).
        factor: f64,
        /// How long the slowdown lasts, in milliseconds.
        duration_ms: f64,
    },
    /// The disaggregated KV interconnect degrades: transfers enqueued
    /// during the window take `factor`× their modelled wire time.
    /// No-op on deployments without a KV link.
    LinkDegrade {
        /// Wire-time multiplier (> 1 slows transfers down).
        factor: f64,
        /// How long the degradation lasts, in milliseconds.
        duration_ms: f64,
    },
    /// The disaggregated KV interconnect goes dark: every in-flight
    /// transfer aborts mid-migration (those requests lose their KV and
    /// return to the front door) and no new transfer departs until the
    /// link heals — prefill output backs up behind the outage. No-op on
    /// deployments without a KV link.
    LinkOutage {
        /// How long the outage lasts, in milliseconds.
        duration_ms: f64,
    },
}

impl FaultKind {
    /// How long the fault lasts before the session clears it.
    pub fn duration_ms(&self) -> f64 {
        match self {
            FaultKind::ReplicaCrash { down_ms, .. } => *down_ms,
            FaultKind::SlowReplica { duration_ms, .. }
            | FaultKind::LinkDegrade { duration_ms, .. }
            | FaultKind::LinkOutage { duration_ms } => *duration_ms,
        }
    }

    /// The replica the fault targets, when it targets one (link faults
    /// hit the shared interconnect instead).
    pub fn replica(&self) -> Option<ReplicaAddr> {
        match self {
            FaultKind::ReplicaCrash { replica, .. } | FaultKind::SlowReplica { replica, .. } => {
                Some(*replica)
            }
            FaultKind::LinkDegrade { .. } | FaultKind::LinkOutage { .. } => None,
        }
    }

    /// Short label of what the fault targets (`decode-1`, `kv-link`).
    pub fn target_label(&self) -> String {
        match self.replica() {
            Some(addr) => addr.to_string(),
            None => "kv-link".to_string(),
        }
    }

    /// Human-readable description for traces and logs.
    pub fn describe(&self) -> String {
        match self {
            FaultKind::ReplicaCrash { down_ms, .. } => format!("crash for {down_ms:.0}ms"),
            FaultKind::SlowReplica {
                factor,
                duration_ms,
                ..
            } => format!("slow x{factor:.1} for {duration_ms:.0}ms"),
            FaultKind::LinkDegrade {
                factor,
                duration_ms,
            } => format!("link degraded x{factor:.1} for {duration_ms:.0}ms"),
            FaultKind::LinkOutage { duration_ms } => format!("link outage for {duration_ms:.0}ms"),
        }
    }
}

/// One scheduled fault: the injection instant plus the fault itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulation time at which the fault is injected.
    pub at_ms: f64,
    /// The fault.
    pub kind: FaultKind,
}

/// A deterministic chaos schedule — pure data, built explicitly or
/// derived from a seed, handed to
/// [`crate::ServeSession::with_fault_plan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; serving is bit-identical to a
    /// session without a plan).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `at_ms` (builder style).
    #[must_use]
    pub fn at(mut self, at_ms: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at_ms, kind });
        self
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A seeded chaos schedule over `replicas` decode replicas inside
    /// the window `[start_ms, start_ms + window_ms)`: one replica crash,
    /// one transient slowdown on a different replica, and — when
    /// `with_link` is set — one link degradation. Deterministic in
    /// `seed` (the same hash stream that seeds workloads), so a chaos
    /// run reproduces exactly under `ADASERVE_SEED`.
    pub fn seeded(
        seed: u64,
        start_ms: f64,
        window_ms: f64,
        replicas: usize,
        with_link: bool,
    ) -> Self {
        assert!(replicas >= 1, "a fault plan needs a replica to target");
        assert!(window_ms > 0.0, "fault window must be positive");
        let h = |i: u64| simllm::hash::seed_stream(seed ^ 0xC4A0_5F17, i);
        let frac = |x: u64| (x % 10_000) as f64 / 10_000.0;
        let crash_target = (h(0) as usize) % replicas;
        let crash_at = start_ms + frac(h(1)) * window_ms * 0.5;
        let crash_down = window_ms * (0.15 + frac(h(2)) * 0.2);
        let slow_target = if replicas > 1 {
            (crash_target + 1 + (h(3) as usize) % (replicas - 1)) % replicas
        } else {
            crash_target
        };
        let slow_at = start_ms + frac(h(4)) * window_ms * 0.5;
        let slow_for = window_ms * (0.2 + frac(h(5)) * 0.3);
        let mut plan = Self::new()
            .at(
                crash_at,
                FaultKind::ReplicaCrash {
                    replica: ReplicaAddr::serving(crash_target),
                    down_ms: crash_down,
                },
            )
            .at(
                slow_at,
                FaultKind::SlowReplica {
                    replica: ReplicaAddr::serving(slow_target),
                    factor: 2.0 + frac(h(6)) * 2.0,
                    duration_ms: slow_for,
                },
            );
        if with_link {
            plan = plan.at(
                start_ms + frac(h(7)) * window_ms * 0.6,
                FaultKind::LinkOutage {
                    duration_ms: window_ms * (0.1 + frac(h(8)) * 0.15),
                },
            );
        }
        plan
    }
}

/// How the session handles requests lost to faults, and when sustained
/// recovery pressure triggers graceful degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries each request may consume before it is terminally
    /// rejected ([`crate::RejectReason::RetryBudgetExhausted`]).
    pub retry_budget: u32,
    /// Backoff before the first retry, in milliseconds.
    pub backoff_base_ms: f64,
    /// Multiplier applied to the backoff on every further retry.
    pub backoff_mult: f64,
    /// Recovering-request count at which the deployment sheds
    /// speculation depth ([`crate::Deployment::set_degraded`]).
    pub shed_speculation_pressure: usize,
    /// Recovering-request count at which new arrivals of the loosest
    /// SLO tier are refused at admission
    /// ([`crate::RejectReason::DegradedShed`]).
    pub shed_tier_pressure: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            retry_budget: 3,
            backoff_base_ms: 50.0,
            backoff_mult: 2.0,
            shed_speculation_pressure: 4,
            shed_tier_pressure: 8,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never retries: every lost request is terminally
    /// rejected on the spot. This is the "fault without recovery"
    /// baseline the chaos benchmark compares against.
    pub fn no_retry() -> Self {
        Self {
            retry_budget: 0,
            ..Self::default()
        }
    }

    /// Exponential backoff before retry number `attempt` (1-based).
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        self.backoff_base_ms * self.backoff_mult.powi(attempt.saturating_sub(1) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_in_window() {
        let a = FaultPlan::seeded(42, 1_000.0, 4_000.0, 3, true);
        let b = FaultPlan::seeded(42, 1_000.0, 4_000.0, 3, true);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.events().len(), 3);
        for e in a.events() {
            assert!(e.at_ms >= 1_000.0 && e.at_ms < 5_000.0);
            assert!(e.kind.duration_ms() > 0.0);
        }
        let c = FaultPlan::seeded(43, 1_000.0, 4_000.0, 3, true);
        assert_ne!(a, c, "different seed perturbs the schedule");
    }

    #[test]
    fn seeded_slow_target_differs_from_crash_target() {
        for seed in 0..32 {
            let plan = FaultPlan::seeded(seed, 0.0, 1_000.0, 4, false);
            let targets: Vec<_> = plan
                .events()
                .iter()
                .filter_map(|e| e.kind.replica())
                .collect();
            assert_eq!(targets.len(), 2);
            assert_ne!(targets[0], targets[1], "seed {seed}: distinct targets");
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy::default();
        assert!((p.backoff_ms(1) - 50.0).abs() < 1e-9);
        assert!((p.backoff_ms(2) - 100.0).abs() < 1e-9);
        assert!((p.backoff_ms(3) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn describe_and_target_are_stable() {
        let crash = FaultKind::ReplicaCrash {
            replica: ReplicaAddr::serving(1),
            down_ms: 400.0,
        };
        assert_eq!(crash.describe(), "crash for 400ms");
        assert_eq!(crash.target_label(), "decode-1");
        let outage = FaultKind::LinkOutage { duration_ms: 200.0 };
        assert_eq!(outage.target_label(), "kv-link");
    }
}
