//! Swap-based preemption cost model.
//!
//! vLLM offers two preemption strategies: *recompute* (drop KV, re-prefill
//! later — the default modelled by [`crate::request::LiveRequest::drop_kv_for_preemption`])
//! and *swap* (copy the victim's KV blocks to host memory over PCIe and
//! copy them back on resume). Recompute trades GPU compute for memory
//! traffic; swap is cheaper for long contexts but serializes on the PCIe
//! link. This module models the swap path so engines (and ablations) can
//! compare both policies on equal footing.

/// PCIe link model for KV swapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapLink {
    /// Sustained host↔device bandwidth in GB/s (PCIe 4.0 x16 ≈ 24 GB/s
    /// effective).
    pub bandwidth_gbps: f64,
    /// Per-transfer setup latency in microseconds.
    pub setup_us: f64,
}

impl Default for SwapLink {
    fn default() -> Self {
        Self {
            bandwidth_gbps: 24.0,
            setup_us: 20.0,
        }
    }
}

impl SwapLink {
    /// Time (ms) to move `bytes` across the link in one direction.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.setup_us * 1e-3 + bytes as f64 / (self.bandwidth_gbps * 1e9) * 1e3
    }

    /// Time (ms) to swap out a context of `tokens` tokens at
    /// `kv_bytes_per_token`.
    pub fn swap_out_ms(&self, tokens: u64, kv_bytes_per_token: u64) -> f64 {
        self.transfer_ms(tokens * kv_bytes_per_token)
    }

    /// Time (ms) to swap the same context back in.
    pub fn swap_in_ms(&self, tokens: u64, kv_bytes_per_token: u64) -> f64 {
        self.transfer_ms(tokens * kv_bytes_per_token)
    }

    /// Whether swapping a context beats recomputing it.
    ///
    /// `recompute_ms` is the prefill cost of regenerating the KV; the swap
    /// round trip (out + in) must be cheaper to be worthwhile.
    pub fn swap_beats_recompute(
        &self,
        tokens: u64,
        kv_bytes_per_token: u64,
        recompute_ms: f64,
    ) -> bool {
        self.swap_out_ms(tokens, kv_bytes_per_token) + self.swap_in_ms(tokens, kv_bytes_per_token)
            < recompute_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roofline::{ForwardPass, LatencyModel, SeqWork};

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = SwapLink::default();
        let small = link.transfer_ms(1 << 20);
        let big = link.transfer_ms(1 << 30);
        assert!(big > 100.0 * small);
    }

    #[test]
    fn kv_swap_of_long_context_is_tens_of_ms() {
        // 2048 tokens × ~328 KB/token ≈ 0.67 GB → ~28 ms at 24 GB/s.
        let link = SwapLink::default();
        let kv = roofline::ModelSpec::llama_70b().kv_bytes_per_token();
        let ms = link.swap_out_ms(2048, kv);
        assert!(ms > 10.0 && ms < 60.0, "swap = {ms} ms");
    }

    #[test]
    fn swap_beats_recompute_for_long_contexts_on_70b() {
        let link = SwapLink::default();
        let target = LatencyModel::llama70b_4xa100();
        let kv = target.model().kv_bytes_per_token();
        for tokens in [256u64, 1024, 4096] {
            let recompute_ms = target.forward_latency_ms(
                &ForwardPass::new(vec![SeqWork::prefill(tokens as u32, 0)]),
                false,
            );
            let swap_roundtrip = link.swap_out_ms(tokens, kv) + link.swap_in_ms(tokens, kv);
            // On the 70B model recompute costs ~0.22 ms/token while the swap
            // round trip costs ~0.027 ms/token: swap should win at scale.
            if tokens >= 1024 {
                assert!(
                    link.swap_beats_recompute(tokens, kv, recompute_ms),
                    "tokens={tokens}: swap {swap_roundtrip:.1} !< recompute {recompute_ms:.1}"
                );
            }
        }
    }
}
