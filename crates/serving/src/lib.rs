//! The serving substrate shared by AdaServe and every baseline engine.
//!
//! This crate is the "execution engine + request manager" half of the
//! paper's Fig. 6, factored so all serving systems run on identical
//! infrastructure:
//!
//! * [`request`] — runtime request state (prompt, generated tokens, phase,
//!   per-phase timestamps);
//! * [`kv`] — a PagedAttention-style block manager with preemption support
//!   (vLLM \[22\]'s memory model, which the paper's baselines rely on);
//! * [`config`] — a deployed system: latency testbed + synthetic model pair;
//! * [`engine`] — the [`engine::ServingEngine`] trait and the discrete-event
//!   [`engine::run`] driver that advances simulated GPU time;
//! * [`core`] — [`core::EngineCore`], the queueing/admission/prefill and
//!   bookkeeping machinery engines compose (waiting queue, running batch,
//!   completion records, latency breakdown).
//!
//! GPU passes are *timed* by the roofline model but their *results* (which
//! tokens get generated/accepted) come from real computation against the
//! synthetic language models — the scheduling logic under study runs for
//! real.

pub mod config;
pub mod core;
pub mod engine;
pub mod kv;
pub mod request;
pub mod swap;

pub use config::SystemConfig;
pub use core::EngineCore;
pub use engine::{
    finalize_run, run, RunError, RunOptions, RunResult, ServingEngine, StallGuard, StepResult,
};
pub use kv::BlockManager;
pub use request::{LiveRequest, Phase};
pub use swap::SwapLink;
