//! The serving substrate shared by AdaServe and every baseline engine —
//! and the workspace's **front door** for running them.
//!
//! This crate is the "execution engine + request manager" half of the
//! paper's Fig. 6, factored so all serving systems run on identical
//! infrastructure:
//!
//! * [`request`] — runtime request state (prompt, generated tokens, phase,
//!   per-phase timestamps);
//! * [`kv`] — a PagedAttention-style block manager with preemption support
//!   (vLLM \[22\]'s memory model, which the paper's baselines rely on);
//! * [`prefix`] — a cross-request radix [`prefix::PrefixCache`] modeling
//!   automatic prefix caching: shared prompt prefixes (system prompts,
//!   multi-turn sessions) skip their portion of prefill and shrink KV
//!   reservations, opt-in via
//!   [`config::SystemConfig::with_prefix_cache`];
//! * [`config`] — a deployed system: latency testbed + synthetic model pair;
//! * [`engine`] — the [`engine::ServingEngine`] trait, run caps and the
//!   context-carrying [`engine::RunError`];
//! * [`core`] — [`core::EngineCore`], the queueing/admission/prefill and
//!   bookkeeping machinery engines compose (waiting queue, running batch,
//!   completion records, latency breakdown).
//!
//! The front door is the [`session`] module: any deployment shape — a
//! single [`colocated`] engine, a multi-replica `cluster::Cluster`, a
//! disaggregated `disagg::DisaggCluster` — implements the
//! [`session::Deployment`] trait, and one [`session::ServeSession`] event
//! loop drives them all **online**: requests are submitted at their
//! arrival times (open-loop from a workload, or mid-run from a client
//! hook), surfaced as per-request [`session::DeploymentEvent`]s, and
//! finalized into one [`session::RunReport`]. The legacy batch entry
//! points (`serving::run`, `Cluster::run`, `DisaggCluster::run`) remain
//! as deprecated, output-equivalent shims over it.
//!
//! GPU passes are *timed* by the roofline model but their *results* (which
//! tokens get generated/accepted) come from real computation against the
//! synthetic language models — the scheduling logic under study runs for
//! real.

#![warn(missing_docs)]

pub mod colocated;
pub mod config;
pub mod core;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod kv;
pub mod prefix;
pub mod probe;
pub mod request;
pub mod session;
pub mod swap;

pub use colocated::Colocated;
pub use config::SystemConfig;
pub use core::EngineCore;
#[allow(deprecated)]
pub use engine::run;
pub use engine::{
    finalize_run, ErrorSite, Pool, RunError, RunErrorKind, RunOptions, RunResult, ServingEngine,
    StallGuard, StepResult,
};
pub use exec::{ExecMode, ShardedExecutor};
pub use fault::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
pub use kv::BlockManager;
pub use prefix::{PrefixCache, PrefixStats};
pub use probe::{core_gauges, trace_replica, ProbeState, StepProbe};
pub use request::{LiveRequest, Phase};
pub use session::{
    Deployment, DeploymentEvent, DeploymentStep, LifecycleTracker, RejectReason, ReplicaAddr,
    RunReport, ScalePlan, ScalingAction, ServeSession, SessionHandle, UnitStats,
};
pub use swap::SwapLink;
