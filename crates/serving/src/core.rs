//! [`EngineCore`]: the queueing/admission/bookkeeping machinery every
//! serving engine composes.
//!
//! The core owns the waiting queue, the running batch, the KV block manager
//! and the completion records. Engines differ in how they *plan* iterations
//! (what to prefill, decode, speculate, verify) but share this state and its
//! invariants, keeping baselines and AdaServe comparable.

use crate::config::SystemConfig;
use crate::kv::BlockManager;
use crate::prefix::PrefixCache;
use crate::request::{LiveRequest, Phase};
use metrics::{HotLoopStats, LatencyBreakdown, RequestRecord};
use simllm::{sample_seeded, Lm, TokenId};
use std::collections::VecDeque;
use workload::RequestSpec;

/// Shared engine state: queues, memory, records, accounting.
#[derive(Debug, Clone)]
pub struct EngineCore {
    /// Deployment configuration.
    pub config: SystemConfig,
    /// Paged KV allocator.
    pub blocks: BlockManager,
    /// Requests waiting for admission (FIFO unless the engine reorders).
    pub waiting: VecDeque<LiveRequest>,
    /// Admitted requests (prefilling or decoding).
    pub running: Vec<LiveRequest>,
    /// Completed-request records.
    finished: Vec<RequestRecord>,
    /// Accumulated latency breakdown.
    pub breakdown: LatencyBreakdown,
    /// Hot-loop health counters (distribution-cache hit rate, scratch
    /// allocation discipline, peak decode batch). Engines with scratch
    /// machinery update this each iteration; simple baselines leave it
    /// zeroed.
    pub hotloop: HotLoopStats,
    /// Iterations executed.
    pub iterations: u64,
    /// Total speculated tokens submitted for verification (all requests).
    pub speculated_total: u64,
    /// Total speculated tokens accepted.
    pub accepted_total: u64,
    /// Cross-request prefix cache ([`crate::prefix`]); present when
    /// [`SystemConfig::prefix_cache_tokens`] is set. Admission consults it
    /// (a hit pre-marks the cached prefix as prefilled and reserves
    /// blocks only for the uncached suffix), prefill completion feeds it,
    /// and finish/preempt/migrate release its pins.
    pub prefix: Option<PrefixCache>,
    /// Graceful-degradation flag, set by the session under sustained
    /// recovery pressure ([`crate::Deployment::set_degraded`]). Engines
    /// that speculate clamp their speculation depth while it is set,
    /// trading peak throughput for predictable recovery latency.
    pub degraded: bool,
}

impl EngineCore {
    /// Creates a core for `config` with a full KV pool.
    pub fn new(config: SystemConfig) -> Self {
        let blocks = config.block_manager();
        let prefix = config
            .prefix_cache_tokens
            .map(|budget| PrefixCache::new(budget, config.kv_block_tokens));
        Self {
            config,
            blocks,
            prefix,
            waiting: VecDeque::new(),
            running: Vec::new(),
            finished: Vec::new(),
            breakdown: LatencyBreakdown::new(),
            hotloop: HotLoopStats::default(),
            iterations: 0,
            speculated_total: 0,
            accepted_total: 0,
            degraded: false,
        }
    }

    /// Enqueues a new arrival.
    pub fn on_arrival(&mut self, spec: RequestSpec) {
        self.waiting.push_back(LiveRequest::new(spec));
    }

    /// Whether any request is waiting or running.
    pub fn has_work(&self) -> bool {
        !self.waiting.is_empty() || !self.running.is_empty()
    }

    /// Read-only view of the completion records accumulated so far.
    ///
    /// Drivers that surface per-request lifecycle events peek at this
    /// between iterations; [`EngineCore::take_finished`] still drains the
    /// records at finalization.
    pub fn finished_records(&self) -> &[RequestRecord] {
        &self.finished
    }

    /// Total tokens the KV pool can hold — the largest context a single
    /// request could ever occupy on this core (capacity introspection for
    /// admission control).
    pub fn kv_capacity_tokens(&self) -> u64 {
        self.blocks.total_blocks() * u64::from(self.blocks.block_tokens())
    }

    /// The longest block-aligned prefix of `spec`'s prompt resident in
    /// this engine's prefix cache, in tokens (0 without a cache).
    /// Read-only: no statistics, pinning, or LRU side effects — safe for
    /// admission-control and routing probes.
    pub fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u32 {
        self.prefix.as_ref().map_or(0, |c| {
            c.peek(&spec.prompt_tokens(), spec.prompt_len.saturating_sub(1))
        })
    }

    /// Admits waiting requests FIFO while the batch cap and KV pool allow.
    ///
    /// A request is admitted when its *uncached* context (prompt plus any
    /// previously generated tokens, minus whatever prefix the
    /// [`crate::prefix::PrefixCache`] already holds) fits in free blocks —
    /// so under a warm cache a request can be admitted even when its full
    /// prompt would not fit. A hit pre-marks the cached prefix as
    /// prefilled and pins it against eviction. Returns the number
    /// admitted.
    pub fn admit_fifo(&mut self) -> usize {
        let mut admitted = 0;
        while self.running.len() < self.config.max_batch {
            let Some(front) = self.waiting.front() else {
                break;
            };
            let reuse = self.prefix.as_ref().map_or(0, |c| {
                c.peek(front.tokens(), front.context_len().saturating_sub(1))
            });
            let need = u64::from(front.context_len()) + 1 - u64::from(reuse);
            if !self.blocks.can_hold(front.spec.id, need) {
                break;
            }
            let mut req = self.waiting.pop_front().expect("front exists");
            if let Some(cache) = self.prefix.as_mut() {
                let max_reuse = req.context_len().saturating_sub(1);
                let reused = cache.lookup_pin(req.spec.id, req.tokens(), max_reuse);
                debug_assert_eq!(reused, reuse, "peek and lookup agree");
                self.hotloop.prefix_lookups += 1;
                if reused > 0 {
                    req.reuse_prefix(reused);
                    self.hotloop.prefix_hits += 1;
                    self.hotloop.prefill_tokens_saved += u64::from(reused);
                }
            }
            let ok = self.blocks.reserve(req.spec.id, need);
            debug_assert!(ok, "can_hold implies reserve succeeds");
            req.phase = Phase::Prefilling;
            self.running.push(req);
            admitted += 1;
        }
        admitted
    }

    /// Plans prefill chunks across running requests, up to `budget` tokens.
    ///
    /// Returns `(running_index, chunk_tokens)` pairs in batch order. Pass
    /// `u32::MAX` to prefill whole remaining prompts (vLLM-style full
    /// prefill).
    pub fn plan_prefill(&self, budget: u32) -> Vec<(usize, u32)> {
        let mut remaining = budget;
        let mut plan = Vec::new();
        for (i, r) in self.running.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if r.phase == Phase::Prefilling {
                let chunk = r.prefill_remaining().min(remaining);
                if chunk > 0 {
                    plan.push((i, chunk));
                    remaining = remaining.saturating_sub(chunk);
                }
            }
        }
        plan
    }

    /// Applies a prefill plan, advancing per-request progress.
    ///
    /// A request completing its first prefill here has its prompt
    /// inserted into the prefix cache (when one is configured), making
    /// the prefix reusable by every later request that shares it.
    pub fn apply_prefill(&mut self, plan: &[(usize, u32)]) {
        for &(i, chunk) in plan {
            self.running[i].advance_prefill(chunk);
            let r = &self.running[i];
            if r.phase == Phase::Decoding && r.generated() == 0 {
                if let Some(cache) = self.prefix.as_mut() {
                    cache.insert(&r.tokens()[..r.spec.prompt_len as usize]);
                }
            }
        }
    }

    /// Indices of running requests currently in the decode phase.
    pub fn decoding_indices(&self) -> Vec<usize> {
        self.running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.phase == Phase::Decoding)
            .map(|(i, _)| i)
            .collect()
    }

    /// Samples the next output token for request `i` auto-regressively.
    ///
    /// The token at output position `k` is a pure function of the request
    /// stream, so speculative and non-speculative engines produce identical
    /// outputs for the same request.
    pub fn next_token(&self, i: usize) -> TokenId {
        let r = &self.running[i];
        let dist = self.config.pair.target().next_dist(&r.lm_context());
        match self.config.verify_mode {
            spectree::VerifyMode::Greedy => dist.top1(),
            spectree::VerifyMode::Stochastic => {
                sample_seeded(&dist, r.spec.stream_seed, u64::from(r.generated()))
            }
        }
    }

    /// Grows request `i`'s KV reservation to its context plus `extra`
    /// tokens, preempting other requests (latest-admitted first, vLLM's
    /// recompute policy) if the pool is exhausted.
    ///
    /// Returns `false` if even preempting everything else cannot satisfy the
    /// growth (the request itself is then preempted by the caller's policy).
    pub fn grow_with_preemption(&mut self, i: usize, extra: u64) -> bool {
        let id = self.running[i].spec.id;
        // A prefix-cache hit shrinks the private reservation: the cached
        // prefix's blocks stay owned (and pinned) by the cache.
        let need = self.running[i].kv_need(extra);
        loop {
            if self.blocks.reserve(id, need) {
                return true;
            }
            // Preempt the most recently admitted other request. The
            // growing request is protected by id, not by index: evicting
            // a victim below `i` shifts the batch, and a stale index
            // could otherwise preempt the very request being grown.
            let victim = (0..self.running.len())
                .rev()
                .find(|&j| self.running[j].spec.id != id);
            let Some(j) = victim else { return false };
            self.preempt(j);
        }
    }

    /// Preempts running request `j`: drops its KV and requeues it (front).
    pub fn preempt(&mut self, j: usize) {
        let mut req = self.running.remove(j);
        self.blocks.release(req.spec.id);
        if let Some(cache) = self.prefix.as_mut() {
            cache.release(req.spec.id);
        }
        req.drop_kv_for_preemption();
        self.waiting.push_front(req);
    }

    /// Marks request `i` finished at `now_ms`; its record is collected and
    /// its blocks are released. Call only when `is_done()`.
    fn finish(&mut self, i: usize, now_ms: f64) {
        let mut req = self.running.remove(i);
        req.phase = Phase::Finished;
        req.completion_ms = Some(now_ms);
        self.blocks.release(req.spec.id);
        if let Some(cache) = self.prefix.as_mut() {
            cache.release(req.spec.id);
        }
        self.finished.push(req.into_record());
    }

    /// Sweeps the running batch, finishing every request that has emitted
    /// all of its output tokens. Returns the number finished.
    pub fn collect_finished(&mut self, now_ms: f64) -> usize {
        let mut n = 0;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].is_done() {
                self.finish(i, now_ms);
                n += 1;
            } else {
                i += 1;
            }
        }
        n
    }

    /// Takes all completion records accumulated so far.
    pub fn take_finished(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.finished)
    }

    /// Completed-request count (without draining).
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// Removes and returns every running request that has completed prefill
    /// but not yet generated a token, releasing its KV reservation.
    ///
    /// This is the prefill side of disaggregated serving: a prefill-only
    /// replica calls it after each iteration to hand freshly prefilled
    /// requests to KV migration. Requests keep their prefill progress
    /// (`prefill_remaining() == 0`) so the decode side admits them straight
    /// into the decode phase.
    pub fn take_prefilled(&mut self) -> Vec<LiveRequest> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].phase == Phase::Decoding && self.running[i].generated() == 0 {
                let mut req = self.running.remove(i);
                self.blocks.release(req.spec.id);
                // Migration ships the full context KV: the decode side
                // owns every token, so the prefill side's cache pins and
                // the request's shared-prefix discount both end here.
                if let Some(cache) = self.prefix.as_mut() {
                    cache.release(req.spec.id);
                }
                req.clear_kv_reused();
                out.push(req);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Admits a request whose KV cache was migrated in from a prefill
    /// replica (prefill complete, nothing generated yet).
    ///
    /// Reserves blocks for the full context plus one token and places the
    /// request directly in the running batch in the decode phase —
    /// bypassing the waiting queue, exactly as a disaggregated decode
    /// instance receives work. Returns the request back if the KV pool
    /// cannot hold it right now (the caller retries once memory frees up).
    ///
    /// # Panics
    ///
    /// Panics if the request still has prefill remaining — migrating a
    /// half-prefilled request would lose KV state.
    // The Err payload *is* the API: a rejected request goes back to the
    // caller's landing queue by value, not by allocation.
    #[allow(clippy::result_large_err)]
    pub fn admit_migrated(&mut self, mut req: LiveRequest) -> Result<(), LiveRequest> {
        assert_eq!(
            req.prefill_remaining(),
            0,
            "only fully prefilled requests migrate"
        );
        let need = u64::from(req.context_len()) + 1;
        if !self.blocks.can_hold(req.spec.id, need) {
            return Err(req);
        }
        let ok = self.blocks.reserve(req.spec.id, need);
        debug_assert!(ok, "can_hold implies reserve succeeds");
        req.phase = Phase::Decoding;
        self.running.push(req);
        Ok(())
    }

    /// Crash semantics for fault injection: every request this core holds
    /// — running *and* waiting — loses its KV and leaves. Returns the lost
    /// requests' specs so the front door can decide their fate
    /// ([`crate::RecoveryPolicy`]); a retried request regenerates the
    /// identical output because [`EngineCore::next_token`] is a pure
    /// function of the request stream.
    ///
    /// Device memory is wiped wholesale: the KV pool returns to full and
    /// the prefix cache (entries *and* pins) is rebuilt cold.
    pub fn evict_all_for_crash(&mut self) -> Vec<RequestSpec> {
        let mut lost = Vec::with_capacity(self.running.len() + self.waiting.len());
        for req in self.running.drain(..) {
            self.blocks.release(req.spec.id);
            lost.push(req.spec);
        }
        lost.extend(self.waiting.drain(..).map(|req| req.spec));
        self.prefix = self
            .config
            .prefix_cache_tokens
            .map(|budget| PrefixCache::new(budget, self.config.kv_block_tokens));
        lost
    }

    /// Marks the start of decoding for any request that just finished
    /// prefill and has no decode timestamp yet.
    pub fn stamp_decode_starts(&mut self, now_ms: f64) {
        for r in &mut self.running {
            if r.phase == Phase::Decoding && r.decode_start_ms.is_none() {
                r.decode_start_ms = Some(now_ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::Category;

    fn spec(id: u64, prompt: u32, output: u32) -> RequestSpec {
        RequestSpec {
            id,
            category: Category::Chatbot,
            arrival_ms: 0.0,
            prompt_len: prompt,
            output_len: output,
            tpot_slo_ms: 50.0,
            ttft_slo_ms: 1_000.0,
            stream_seed: id ^ 0xABC,
            prefix: None,
        }
    }

    fn small_core() -> EngineCore {
        let mut config = SystemConfig::llama70b(1);
        config.max_batch = 4;
        let mut core = EngineCore::new(config);
        // Shrink the pool to make memory pressure testable: 8 blocks of 16.
        core.blocks = BlockManager::new(8, 16);
        core
    }

    #[test]
    fn admit_fifo_respects_batch_cap() {
        let mut core = small_core();
        for id in 0..6 {
            core.on_arrival(spec(id, 8, 4));
        }
        let n = core.admit_fifo();
        assert_eq!(n, 4, "batch cap");
        assert_eq!(core.waiting.len(), 2);
    }

    #[test]
    fn admit_fifo_respects_memory() {
        let mut core = small_core();
        core.on_arrival(spec(0, 100, 4)); // 7 blocks
        core.on_arrival(spec(1, 100, 4)); // would need 7 more
        assert_eq!(core.admit_fifo(), 1);
        assert_eq!(core.waiting.len(), 1);
        assert!(core.blocks.validate().is_ok());
    }

    #[test]
    fn prefill_plan_chunks_across_requests() {
        let mut core = small_core();
        core.on_arrival(spec(0, 20, 4));
        core.on_arrival(spec(1, 20, 4));
        core.admit_fifo();
        let plan = core.plan_prefill(30);
        assert_eq!(plan, vec![(0, 20), (1, 10)]);
        core.apply_prefill(&plan);
        assert_eq!(core.running[0].phase, Phase::Decoding);
        assert_eq!(core.running[1].prefill_remaining(), 10);
    }

    #[test]
    fn preemption_frees_blocks_and_requeues() {
        let mut core = small_core();
        core.on_arrival(spec(0, 30, 4));
        core.on_arrival(spec(1, 30, 4));
        core.admit_fifo();
        assert_eq!(core.running.len(), 2);
        core.preempt(1);
        assert_eq!(core.running.len(), 1);
        assert_eq!(core.waiting.len(), 1);
        assert_eq!(core.waiting[0].preemptions, 1);
        assert!(core.blocks.validate().is_ok());
    }

    #[test]
    fn grow_with_preemption_evicts_latest() {
        let mut core = small_core();
        core.on_arrival(spec(0, 60, 40)); // 4 blocks now
        core.on_arrival(spec(1, 60, 4)); // 4 blocks now
        core.admit_fifo();
        assert_eq!(core.running.len(), 2);
        // Growing request 0 by 64 tokens needs 4 more blocks → evict req 1.
        assert!(core.grow_with_preemption(0, 64));
        assert_eq!(core.running.len(), 1);
        assert_eq!(core.waiting.len(), 1);
        assert_eq!(core.waiting[0].spec.id, 1);
    }

    #[test]
    fn grow_fails_when_alone_and_oversized() {
        let mut core = small_core();
        core.on_arrival(spec(0, 30, 4));
        core.admit_fifo();
        assert!(!core.grow_with_preemption(0, 10_000));
    }

    #[test]
    fn finish_and_collect_records() {
        let mut core = small_core();
        core.on_arrival(spec(0, 8, 2));
        core.admit_fifo();
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        core.stamp_decode_starts(5.0);
        let t1 = core.next_token(0);
        core.running[0].push_token(t1);
        let t2 = core.next_token(0);
        core.running[0].push_token(t2);
        assert_eq!(core.collect_finished(42.0), 1);
        let records = core.take_finished();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].output_tokens, 2);
        assert_eq!(core.blocks.free_blocks(), core.blocks.total_blocks());
    }

    #[test]
    fn take_prefilled_extracts_fresh_decode_ready_requests() {
        let mut core = small_core();
        core.on_arrival(spec(0, 20, 4));
        core.on_arrival(spec(1, 40, 4));
        core.admit_fifo();
        // Finish request 0's prefill only.
        core.apply_prefill(&[(0, 20), (1, 10)]);
        let taken = core.take_prefilled();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].spec.id, 0);
        assert_eq!(taken[0].prefill_remaining(), 0);
        assert_eq!(core.running.len(), 1, "half-prefilled request stays");
        // Request 0's blocks were released along with the extraction.
        assert!(core.blocks.validate().is_ok());
    }

    #[test]
    fn admit_migrated_lands_in_decode_phase() {
        let mut source = small_core();
        source.on_arrival(spec(7, 24, 4));
        source.admit_fifo();
        source.apply_prefill(&source.plan_prefill(u32::MAX));
        let req = source.take_prefilled().pop().expect("prefilled");

        let mut sink = small_core();
        sink.admit_migrated(req).expect("fits in an empty pool");
        assert_eq!(sink.running.len(), 1);
        assert_eq!(sink.running[0].phase, Phase::Decoding);
        assert_eq!(sink.running[0].prefill_remaining(), 0);
        assert!(sink.blocks.validate().is_ok());
    }

    #[test]
    fn admit_migrated_backpressures_when_full() {
        let mut source = small_core();
        source.on_arrival(spec(7, 100, 4)); // 7 of 8 blocks
        source.admit_fifo();
        source.apply_prefill(&source.plan_prefill(u32::MAX));
        let req = source.take_prefilled().pop().expect("prefilled");

        let mut sink = small_core();
        sink.on_arrival(spec(9, 100, 4)); // occupy the sink's pool
        sink.admit_fifo();
        let rejected = sink.admit_migrated(req).expect_err("pool is full");
        assert_eq!(rejected.spec.id, 7);
        assert_eq!(rejected.prefill_remaining(), 0, "progress survives");
        assert_eq!(sink.running.len(), 1);
    }

    fn shared_spec(id: u64, prompt: u32, output: u32) -> RequestSpec {
        let mut s = spec(id, prompt, output);
        s.stream_seed = id ^ 0xDEF;
        s.prefix = Some(workload::PrefixSpec { seed: 42, len: 64 });
        s
    }

    fn cached_core() -> EngineCore {
        let mut config = SystemConfig::llama70b(1);
        config.max_batch = 4;
        config = config.with_prefix_cache(4_096);
        let mut core = EngineCore::new(config);
        core.blocks = BlockManager::new(32, 16);
        core
    }

    #[test]
    fn admission_reuses_a_cached_shared_prefix() {
        let mut core = cached_core();
        core.on_arrival(shared_spec(0, 96, 4));
        core.admit_fifo();
        assert_eq!(core.running[0].kv_reused(), 0, "cold cache");
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        assert_eq!(core.running[0].phase, Phase::Decoding);

        core.on_arrival(shared_spec(1, 96, 4));
        core.admit_fifo();
        let r = &core.running[1];
        assert_eq!(r.kv_reused(), 64, "the shared prefix is reused");
        assert_eq!(r.prefill_remaining(), 32, "only the suffix prefills");
        assert_eq!(core.hotloop.prefix_hits, 1);
        assert_eq!(core.hotloop.prefill_tokens_saved, 64);
        assert!(core.blocks.validate().is_ok());
    }

    #[test]
    fn prefix_aware_admission_admits_what_would_not_fit() {
        let mut core = cached_core();
        // 8 blocks × 16 tokens = 128 tokens of KV.
        core.blocks = BlockManager::new(8, 16);
        core.on_arrival(shared_spec(0, 96, 2));
        core.admit_fifo();
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        core.running[0].decode_start_ms = Some(1.0);
        for _ in 0..2 {
            let t = core.next_token(0);
            core.running[0].push_token(t);
        }
        core.collect_finished(10.0);
        assert!(core.running.is_empty(), "warm-up request finished");

        // A 140-token prompt needs 141 tokens of KV uncached — more
        // than the whole 128-token pool. Its 64-token cached prefix
        // shrinks the reservation to 77 tokens, which fits.
        core.on_arrival(shared_spec(2, 140, 2));
        let admitted = core.admit_fifo();
        assert_eq!(admitted, 1, "141 - 64 = 77 tokens fit");
        assert_eq!(core.running[0].kv_reused(), 64);
        assert!(core.blocks.validate().is_ok());
    }

    #[test]
    fn preemption_releases_pins_and_forgets_reuse() {
        let mut core = cached_core();
        core.on_arrival(shared_spec(0, 96, 4));
        core.admit_fifo();
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        core.on_arrival(shared_spec(1, 96, 4));
        core.admit_fifo();
        assert_eq!(core.running[1].kv_reused(), 64);
        let pinned_before = core.prefix.as_ref().unwrap().pinned_node_count();
        assert!(pinned_before > 0);
        core.preempt(1);
        assert_eq!(core.waiting[0].kv_reused(), 0, "reuse forgotten");
        // Re-admission looks the prefix up again and re-pins it.
        core.admit_fifo();
        assert_eq!(core.running[1].kv_reused(), 64, "re-hit on re-admission");
        assert_eq!(core.hotloop.prefix_hits, 2);
    }

    #[test]
    fn disjoint_prompts_never_hit() {
        let mut core = cached_core();
        for id in 0..3 {
            core.on_arrival(spec(id, 64, 2));
        }
        core.admit_fifo();
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        assert_eq!(core.hotloop.prefix_hits, 0);
        assert_eq!(core.hotloop.prefix_lookups, 3);
        for i in 0..3 {
            assert_eq!(core.running[i].kv_reused(), 0);
        }
    }

    #[test]
    fn crash_eviction_loses_everything_and_resets_memory() {
        let mut core = cached_core();
        for id in 0..6 {
            core.on_arrival(shared_spec(id, 96, 4));
        }
        core.admit_fifo();
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        assert_eq!(core.running.len(), 4);
        assert_eq!(core.waiting.len(), 2);
        let lost = core.evict_all_for_crash();
        let ids: Vec<u64> = lost.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5], "running first, then waiting");
        assert!(core.running.is_empty() && core.waiting.is_empty());
        assert_eq!(core.blocks.free_blocks(), core.blocks.total_blocks());
        let cache = core.prefix.as_ref().expect("cache still configured");
        assert_eq!(cache.pinned_node_count(), 0, "crash wiped the pins");
        // The rebuilt cache is cold: the shared prefix misses again.
        core.on_arrival(shared_spec(7, 96, 4));
        core.admit_fifo();
        assert_eq!(core.running[0].kv_reused(), 0, "cold after crash");
    }

    #[test]
    fn next_token_is_deterministic_per_position() {
        let mut core = small_core();
        core.on_arrival(spec(0, 8, 4));
        core.admit_fifo();
        core.apply_prefill(&core.plan_prefill(u32::MAX));
        let a = core.next_token(0);
        let b = core.next_token(0);
        assert_eq!(a, b, "same position, same token");
    }
}
