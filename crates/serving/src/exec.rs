//! Execution modes and the persistent sharded executor behind parallel
//! replica stepping.
//!
//! Multi-replica drivers (`cluster::Cluster`, the decode pool of
//! `disagg::DisaggCluster`) advance many independent replicas between two
//! synchronization points (the next arrival, scaling event, KV-transfer
//! landing or prefill iteration). [`ExecMode`] selects *how* that batch of
//! per-replica work runs; [`ShardedExecutor`] is the long-lived worker
//! pool that runs it when real parallelism is requested.
//!
//! # Determinism guarantee
//!
//! Replicas interact only at the synchronization points the session
//! injects **between** batches — routing, scaling, KV handoff — never
//! inside one. Each task in a batch therefore owns its replica
//! exclusively, and the driver merges per-replica results in
//! replica-index order after the batch completes. Output is
//! **record-for-record identical** across every `ExecMode` (and every
//! worker count): same completion records, same end time, same iteration
//! count. Only the interleaving of surfaced lifecycle events differs.
//! This is pinned by `tests/output_equivalence.rs` and the cluster/disagg
//! proptests.
//!
//! # Shard ownership
//!
//! [`ShardedExecutor::run`] splits the batch's task indices into
//! contiguous shards, one per worker. Each worker claims the tasks of its
//! own shard first (good locality: a worker keeps revisiting the same
//! replicas batch after batch), then *steals* unclaimed tasks from other
//! shards so a straggler shard — one replica with far more due iterations
//! than the rest — cannot idle the remaining workers. Claims are atomic
//! swaps, so every task runs exactly once no matter how workers race.
//!
//! The pool is created once per deployment and reused across every batch
//! and every `serve()` call; workers park on a condvar between batches
//! instead of being respawned (the `std::thread::scope`-per-batch design
//! this replaces lost to sequential stepping at 4 replicas — see
//! `BENCH_perf.json`).

// The executor hands lifetime-erased task-closure pointers to its
// persistent workers; `run` blocks until every worker is done touching
// the closure, which the `unsafe` blocks below document individually.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a multi-replica driver executes a batch of independent per-replica
/// stepping tasks between two synchronization points.
///
/// The default is [`ExecMode::Sharded`] with an auto-detected worker
/// count. Every mode produces **identical completion records** (see the
/// [module docs](self) for the determinism guarantee); the choice only
/// affects wall-clock cost and the interleaving of surfaced lifecycle
/// events:
///
/// * [`ExecMode::Sequential`] — one engine iteration at a time, globally
///   ordered by replica clock. Strictly sequential event ordering; pays
///   an O(replicas) scheduling scan per iteration.
/// * [`ExecMode::Sharded`] — batch every due replica to the horizon via
///   the persistent [`ShardedExecutor`]. With `workers > 1` replicas
///   advance on parallel worker threads; with one effective worker the
///   batch runs inline on the caller thread (no pool, no handoff), which
///   still amortizes the per-iteration scheduling scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Step one iteration of the earliest-clock replica at a time.
    Sequential,
    /// Batch-step due replicas to the horizon on a persistent worker
    /// pool; each worker owns a contiguous shard of the batch and steals
    /// stragglers' tasks.
    Sharded {
        /// Worker threads to use; `None` auto-detects
        /// [`std::thread::available_parallelism`]. Clamped to at least 1;
        /// counts above the replica count are harmless (extra workers
        /// find their shards empty and steal).
        workers: Option<usize>,
    },
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Sharded { workers: None }
    }
}

impl ExecMode {
    /// Display label: `"sequential"`, `"sharded"` or `"sharded:N"`.
    pub fn label(&self) -> String {
        match self {
            ExecMode::Sequential => "sequential".into(),
            ExecMode::Sharded { workers: None } => "sharded".into(),
            ExecMode::Sharded { workers: Some(n) } => format!("sharded:{n}"),
        }
    }

    /// Parses a mode label: `"sequential"`, `"sharded"` or `"sharded:N"`
    /// (the [`ExecMode::label`] forms). Returns `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "sequential" => Some(ExecMode::Sequential),
            "sharded" => Some(ExecMode::Sharded { workers: None }),
            other => {
                let n = other.strip_prefix("sharded:")?.parse().ok()?;
                Some(ExecMode::Sharded { workers: Some(n) })
            }
        }
    }

    /// Reads a mode from environment variable `var` ([`ExecMode::parse`]
    /// syntax). Returns `None` when the variable is unset.
    ///
    /// # Panics
    ///
    /// Panics on a malformed value — a typo'd CI override should fail the
    /// job, not silently fall back.
    pub fn from_env(var: &str) -> Option<Self> {
        let raw = std::env::var(var).ok()?;
        Some(Self::parse(&raw).unwrap_or_else(|| {
            panic!("{var}={raw:?} is not a valid exec mode (sequential | sharded | sharded:N)")
        }))
    }

    /// The worker count this mode resolves to on this host: 1 for
    /// [`ExecMode::Sequential`], the explicit or auto-detected count
    /// (clamped to ≥ 1) for [`ExecMode::Sharded`].
    pub fn effective_workers(&self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Sharded { workers: Some(n) } => (*n).max(1),
            ExecMode::Sharded { workers: None } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Live worker threads spawned by all [`ShardedExecutor`]s in this
/// process. Tests use this to assert drivers reuse one pool across
/// repeated `serve()` calls instead of leaking threads.
pub fn live_worker_threads() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// One published batch: a lifetime-erased task closure plus the claim /
/// completion state its workers share.
struct JobState {
    /// The caller's `Fn(usize)` with its lifetime erased. Valid for the
    /// whole job: [`ShardedExecutor::run`] does not return until every
    /// worker has decremented [`JobState::active`], which each does only
    /// after its last use of this pointer.
    task: ErasedTaskFn,
    /// Number of tasks (`f` is invoked with each index in `0..tasks`).
    tasks: usize,
    /// Worker count the shard split is computed against.
    workers: usize,
    /// Per-task claim flags: an atomic swap decides the unique runner.
    claimed: Vec<AtomicBool>,
    /// Workers still touching this job; the last one out clears the
    /// pool's published job and wakes the caller.
    active: AtomicUsize,
    /// First panic payload raised by a task, re-raised on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct ErasedTaskFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer is only dereferenced while the originating
// `ShardedExecutor::run` frame is alive (see `JobState::task`).
unsafe impl Send for ErasedTaskFn {}
unsafe impl Sync for ErasedTaskFn {}

impl JobState {
    /// One worker's share of the job: claim-and-run the contiguous own
    /// shard, then sweep the rest of the index space for unclaimed
    /// (straggler) tasks.
    fn run_worker(&self, worker: usize) {
        // SAFETY: `run` keeps the closure alive until `active` drains;
        // this thread decrements `active` only after returning from here.
        let f = unsafe { &*self.task.0 };
        let per = self.tasks.div_ceil(self.workers);
        let start = (worker * per).min(self.tasks);
        let end = ((worker + 1) * per).min(self.tasks);
        let own = start..end;
        let steal = (end..self.tasks).chain(0..start);
        for i in own.chain(steal) {
            if self.claimed[i].swap(true, Ordering::AcqRel) {
                continue;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                let mut slot = self.panic.lock().expect("panic slot");
                slot.get_or_insert(payload);
            }
        }
    }
}

struct PoolState {
    /// Bumped once per published batch; workers run each epoch once.
    epoch: u64,
    /// The in-flight batch, cleared by the last worker to finish it.
    job: Option<Arc<JobState>>,
    /// Set by `Drop` to retire the workers.
    exiting: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work_cv: Condvar,
    /// The caller parks here until the batch completes.
    done_cv: Condvar,
}

/// A persistent worker pool executing batches of index-addressed tasks
/// with shard ownership and work stealing (see the [module docs](self)).
///
/// Created once per deployment and reused for every batch; dropping it
/// joins the workers. With fewer than two workers no threads are spawned
/// at all and [`ShardedExecutor::run`] executes inline on the caller.
pub struct ShardedExecutor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ShardedExecutor {
    /// Builds a pool of `workers` persistent threads (none for
    /// `workers <= 1`; `run` then executes inline).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                exiting: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = if workers > 1 {
            (0..workers)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
                    std::thread::Builder::new()
                        .name(format!("shard-worker-{w}"))
                        .spawn(move || worker_main(&shared, w))
                        .expect("spawn shard worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            shared,
            handles,
            workers,
        }
    }

    /// The pool's worker count (as requested at construction).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i)` exactly once for every `i in 0..tasks`, returning when
    /// all tasks have completed.
    ///
    /// Tasks are distributed by contiguous shard with work stealing;
    /// distinct indices may run concurrently, so `f` must serialize any
    /// shared mutation itself (drivers give each index exclusive state).
    /// With `tasks <= 1` or a pool of fewer than two workers, everything
    /// runs inline on the caller thread.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any task raised (the rest of the batch
    /// still runs to completion first).
    pub fn run<F: Fn(usize) + Sync>(&mut self, tasks: usize, f: F) {
        if tasks <= 1 || self.handles.is_empty() {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erasing the closure's lifetime to hand it to the
        // persistent workers. The pointee outlives every dereference: we
        // block below until the last worker clears `state.job`, and
        // workers decrement `active` (the gate for that clear) only after
        // their final use of the pointer.
        let task = ErasedTaskFn(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f_ref)
        });
        let job = Arc::new(JobState {
            task,
            tasks,
            workers: self.handles.len(),
            claimed: (0..tasks).map(|_| AtomicBool::new(false)).collect(),
            active: AtomicUsize::new(self.handles.len()),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.epoch += 1;
            state.job = Some(Arc::clone(&job));
            self.shared.work_cv.notify_all();
            while state.job.is_some() {
                state = self.shared.done_cv.wait(state).expect("pool state");
            }
        }
        let payload = job.panic.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.exiting = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            h.join().expect("shard worker exits cleanly");
        }
    }
}

fn worker_main(shared: &Shared, worker: usize) {
    // Balance the `fetch_add` at spawn even if a task panic unwinds past
    // `catch_unwind` somehow; `Drop` then still observes a sane count.
    struct LiveGuard;
    impl Drop for LiveGuard {
        fn drop(&mut self) {
            LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _live = LiveGuard;
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state");
            loop {
                if state.exiting {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(job) = &state.job {
                        seen_epoch = state.epoch;
                        break Arc::clone(job);
                    }
                }
                state = shared.work_cv.wait(state).expect("pool state");
            }
        };
        job.run_worker(worker);
        if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last worker out: retire the batch and wake the caller.
            let mut state = shared.state.lock().expect("pool state");
            state.job = None;
            drop(state);
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn default_mode_is_auto_sharded() {
        assert_eq!(ExecMode::default(), ExecMode::Sharded { workers: None });
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for mode in [
            ExecMode::Sequential,
            ExecMode::Sharded { workers: None },
            ExecMode::Sharded { workers: Some(7) },
        ] {
            assert_eq!(ExecMode::parse(&mode.label()), Some(mode));
        }
        assert_eq!(
            ExecMode::parse("  sharded:3 "),
            Some(ExecMode::Sharded { workers: Some(3) })
        );
        assert_eq!(ExecMode::parse("parallel"), None);
        assert_eq!(ExecMode::parse("sharded:x"), None);
    }

    #[test]
    fn effective_workers_clamps_to_one() {
        assert_eq!(ExecMode::Sequential.effective_workers(), 1);
        assert_eq!(
            ExecMode::Sharded { workers: Some(0) }.effective_workers(),
            1
        );
        assert_eq!(
            ExecMode::Sharded { workers: Some(5) }.effective_workers(),
            5
        );
        assert!(ExecMode::Sharded { workers: None }.effective_workers() >= 1);
    }

    /// Every index runs exactly once, whatever the worker/task ratio —
    /// including workers > tasks (empty shards steal) and tasks that
    /// don't divide evenly into shards.
    #[test]
    fn run_executes_each_task_exactly_once() {
        for workers in [1, 2, 3, 8] {
            let mut pool = ShardedExecutor::new(workers);
            for tasks in [0usize, 1, 2, 5, 17] {
                let hits: Vec<AtomicU64> = (0..tasks).map(|_| AtomicU64::new(0)).collect();
                pool.run(tasks, |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::SeqCst),
                        1,
                        "task {i} of {tasks} with {workers} workers"
                    );
                }
            }
        }
    }

    /// The pool survives many batches (the persistence the design is
    /// about) and a straggler task cannot lose its batch-mates' work.
    #[test]
    fn pool_is_reusable_across_batches() {
        let mut pool = ShardedExecutor::new(3);
        let total = AtomicU64::new(0);
        for round in 1..=50u64 {
            pool.run(4, |i| {
                if i == 0 {
                    // Straggler shard: others must steal nothing here but
                    // still complete their own shards.
                    std::thread::yield_now();
                }
                total.fetch_add(round, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), (1..=50u64).sum::<u64>() * 4);
    }

    #[test]
    fn task_panics_propagate_to_the_caller() {
        let mut pool = ShardedExecutor::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |i| {
                assert!(i != 2, "task 2 exploded");
            });
        }));
        assert!(caught.is_err(), "panic crossed the pool boundary");
        // The pool is still usable afterwards.
        let ran = AtomicU64::new(0);
        pool.run(3, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_worker_pool_runs_inline_without_threads() {
        let before = live_worker_threads();
        let mut pool = ShardedExecutor::new(1);
        assert_eq!(live_worker_threads(), before, "no threads for 1 worker");
        let ran = AtomicU64::new(0);
        pool.run(5, |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 5);
    }
}
