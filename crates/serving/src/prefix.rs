//! Cross-request radix prefix cache with modeled KV reuse.
//!
//! Production prompt traffic is dominated by shared prefixes — system
//! prompts, multi-turn chat histories, RAG templates — yet a per-context
//! memo (the hot loop's `DistMemo`) cannot exploit them: it has no
//! *structural* sharing across requests. [`PrefixCache`] is that
//! structure: a radix tree over prompt token streams whose nodes carry
//! compressed edges, ref-counted pins and an LRU clock, bounded by a
//! configurable token budget.
//!
//! Node identity is the **incremental `LmContext` hash** of the token
//! path from the root ([`simllm::hash::hash_token_iter`] folded edge by
//! edge), so two requests whose prompts agree token-for-token meet at the
//! same node regardless of how edges happen to be split at the time.
//!
//! # Modeled KV reuse
//!
//! A lookup hit means the KV entries for the matched prefix are already
//! resident, so the owning [`crate::EngineCore`] (a) starts the request
//! with that many tokens pre-marked as prefilled — the roofline prefill
//! pass then only charges the uncached suffix — and (b) reserves KV
//! blocks only for the *uncached* portion, since the cached blocks are
//! shared with the cache (the cache's own budget models the HBM set
//! aside for it). Reuse is **block-granular**: matches quantize down to a
//! multiple of the deployment's KV block size, and anything below one
//! block is not a hit — which also makes accidental one-token stream
//! collisions irrelevant, keeping cache-on runs record-identical to
//! cache-off on disjoint-prefix traffic.
//!
//! Crucially, caching changes only when prefill work is *charged*, never
//! which tokens get generated: the synthetic LM's next-token function is
//! a pure function of the token stream, not of timing.
//!
//! # Example: a shared system prompt hits
//!
//! ```
//! use serving::prefix::PrefixCache;
//! use workload::{Category, PrefixSpec, RequestSpec};
//!
//! // Two chat requests sharing a 32-token system prompt.
//! let spec = |id, seed| RequestSpec {
//!     id,
//!     category: Category::Chatbot,
//!     arrival_ms: 0.0,
//!     prompt_len: 48,
//!     output_len: 4,
//!     tpot_slo_ms: 50.0,
//!     ttft_slo_ms: 1_000.0,
//!     stream_seed: seed,
//!     prefix: Some(PrefixSpec { seed: 7, len: 32 }),
//! };
//! let (a, b) = (spec(0, 1), spec(1, 2));
//!
//! let mut cache = PrefixCache::new(4_096, 16);
//! assert_eq!(cache.lookup_pin(a.id, &a.prompt_tokens(), 47), 0, "cold");
//! cache.insert(&a.prompt_tokens());
//! let hit = cache.lookup_pin(b.id, &b.prompt_tokens(), 47);
//! assert_eq!(hit, 32, "the shared system prompt is reused");
//! assert_eq!(cache.stats().prefill_tokens_saved, 32);
//! cache.release(a.id);
//! cache.release(b.id);
//! ```

use simllm::hash::hash_token_iter;
use simllm::TokenId;
use std::collections::{BTreeMap, HashMap};

/// Root of every path hash (an arbitrary fixed seed; the tree is shared
/// across requests, so node hashes must not depend on any stream seed).
const PATH_HASH_SEED: u64 = 0x5EED_CACE;

/// Counters of a [`PrefixCache`]'s effectiveness and churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Lookups performed (one per admission attempt).
    pub lookups: u64,
    /// Lookups that matched at least one KV block.
    pub hits: u64,
    /// Prompt tokens whose prefill was skipped, summed over hits.
    pub prefill_tokens_saved: u64,
    /// Tokens added to the tree by insertions.
    pub inserted_tokens: u64,
    /// Tokens removed by LRU eviction.
    pub evicted_tokens: u64,
}

impl PrefixStats {
    /// Hit rate over lookups, in percent (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.lookups as f64
        }
    }
}

/// One radix node: a compressed edge from its parent plus bookkeeping.
#[derive(Debug, Clone)]
struct Node {
    /// Token run on the edge from `parent` to this node (empty at root).
    edge: Vec<TokenId>,
    /// Arena index of the parent (the root is its own parent).
    parent: usize,
    /// Children keyed by the first token of their edge.
    children: BTreeMap<u32, usize>,
    /// Requests currently relying on this node's KV residency.
    pins: u32,
    /// Logical LRU timestamp of the last touch.
    last_use: u64,
    /// Incremental hash of the full token path root → end of this edge.
    path_hash: u64,
}

impl Node {
    fn first_token(&self) -> u32 {
        self.edge.first().expect("non-root nodes have an edge").0
    }
}

/// A cross-request radix tree of cached prompt prefixes.
///
/// Deterministic by construction: the LRU clock is a logical counter,
/// eviction scans the arena in index order, and hash maps are only ever
/// accessed by key — so two runs that perform the same operations hold
/// bit-identical trees.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    /// Node arena; index 0 is the root (empty edge, never evicted).
    nodes: Vec<Node>,
    /// Freed arena slots available for reuse.
    free: Vec<usize>,
    /// Token budget: eviction trims unpinned leaves beyond this.
    budget_tokens: u64,
    /// Tokens currently resident (sum of all edge lengths).
    resident: u64,
    /// KV block size: matches quantize down to a multiple of this, and
    /// shorter matches do not count as hits.
    block_tokens: u32,
    /// Logical LRU clock, bumped once per lookup/insert.
    clock: u64,
    /// Pinned paths by request id (released on finish/preempt/migrate).
    pinned: HashMap<u64, Vec<usize>>,
    stats: PrefixStats,
}

impl PrefixCache {
    /// Creates a cache holding at most `budget_tokens` tokens, reusing
    /// KV at `block_tokens` granularity.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(budget_tokens: u64, block_tokens: u32) -> Self {
        assert!(budget_tokens > 0, "a cache needs a non-zero budget");
        assert!(block_tokens > 0, "a KV block holds at least one token");
        Self {
            nodes: vec![Node {
                edge: Vec::new(),
                parent: 0,
                children: BTreeMap::new(),
                pins: 0,
                last_use: 0,
                path_hash: PATH_HASH_SEED,
            }],
            free: Vec::new(),
            budget_tokens,
            resident: 0,
            block_tokens,
            clock: 0,
            pinned: HashMap::new(),
            stats: PrefixStats::default(),
        }
    }

    /// Effectiveness/churn counters so far.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Tokens currently resident in the tree.
    pub fn resident_tokens(&self) -> u64 {
        self.resident
    }

    /// The configured token budget.
    pub fn budget_tokens(&self) -> u64 {
        self.budget_tokens
    }

    /// Live (non-freed) nodes, excluding the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1 - self.free.len()
    }

    /// Nodes currently pinned by at least one request.
    pub fn pinned_node_count(&self) -> usize {
        let mut seen: Vec<usize> = self.pinned.values().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Longest reusable prefix of `tokens`, walking matching edges.
    /// Returns `(matched_tokens, path_node_indices)`; the last path node
    /// may be only partially matched.
    fn walk(&self, tokens: &[TokenId]) -> (u32, Vec<usize>) {
        let mut node = 0usize;
        let mut matched = 0usize;
        let mut path = Vec::new();
        while matched < tokens.len() {
            let Some(&child) = self.nodes[node].children.get(&tokens[matched].0) else {
                break;
            };
            let edge = &self.nodes[child].edge;
            let common = edge
                .iter()
                .zip(&tokens[matched..])
                .take_while(|(a, b)| a == b)
                .count();
            matched += common;
            path.push(child);
            if common < edge.len() {
                break;
            }
            node = child;
        }
        (matched as u32, path)
    }

    /// Quantizes a raw match down to reusable length: a whole number of
    /// KV blocks, at most `max_reuse` (callers pass `context_len - 1` so
    /// at least one token of genuine prefill always remains).
    fn reusable(&self, matched: u32, max_reuse: u32) -> u32 {
        let quantized = matched - matched % self.block_tokens;
        quantized.min(max_reuse)
    }

    /// Read-only variant of [`PrefixCache::lookup_pin`]: the reusable
    /// prefix length `tokens` would hit right now, without pinning,
    /// touching LRU state or counting stats. Routers and front-door
    /// admission use this to prefer/size against warm replicas.
    pub fn peek(&self, tokens: &[TokenId], max_reuse: u32) -> u32 {
        let (matched, _) = self.walk(tokens);
        self.reusable(matched, max_reuse)
    }

    /// Looks up the longest cached prefix of `tokens` and pins the
    /// matched path for request `id`, returning the reusable length in
    /// tokens (0 = miss). Pinned nodes cannot be evicted until
    /// [`PrefixCache::release`] is called for `id`.
    pub fn lookup_pin(&mut self, id: u64, tokens: &[TokenId], max_reuse: u32) -> u32 {
        self.release(id);
        self.clock += 1;
        self.stats.lookups += 1;
        let (matched, path) = self.walk(tokens);
        for &n in &path {
            self.nodes[n].last_use = self.clock;
        }
        let reusable = self.reusable(matched, max_reuse);
        if reusable == 0 {
            return 0;
        }
        for &n in &path {
            self.nodes[n].pins += 1;
        }
        self.pinned.insert(id, path);
        self.stats.hits += 1;
        self.stats.prefill_tokens_saved += u64::from(reusable);
        reusable
    }

    /// Releases request `id`'s pins (idempotent; unknown ids are no-ops).
    pub fn release(&mut self, id: u64) {
        if let Some(path) = self.pinned.remove(&id) {
            for n in path {
                debug_assert!(self.nodes[n].pins > 0, "pin underflow");
                self.nodes[n].pins = self.nodes[n].pins.saturating_sub(1);
            }
        }
    }

    /// Inserts `tokens` as a cached path, splitting edges on partial
    /// matches, then evicts least-recently-used unpinned leaves until the
    /// tree fits the budget again (pinned paths are never evicted, even
    /// if that leaves the tree over budget).
    pub fn insert(&mut self, tokens: &[TokenId]) {
        self.clock += 1;
        let mut node = 0usize;
        let mut consumed = 0usize;
        loop {
            self.nodes[node].last_use = self.clock;
            if consumed == tokens.len() {
                break;
            }
            match self.nodes[node].children.get(&tokens[consumed].0).copied() {
                None => {
                    // New leaf for the whole remaining run.
                    let rest = tokens[consumed..].to_vec();
                    self.resident += rest.len() as u64;
                    self.stats.inserted_tokens += rest.len() as u64;
                    let leaf = self.alloc(Node {
                        path_hash: hash_token_iter(
                            self.nodes[node].path_hash,
                            rest.iter().map(|t| t.0),
                        ),
                        edge: rest,
                        parent: node,
                        children: BTreeMap::new(),
                        pins: 0,
                        last_use: self.clock,
                    });
                    self.nodes[node].children.insert(tokens[consumed].0, leaf);
                    self.nodes[leaf].last_use = self.clock;
                    break;
                }
                Some(child) => {
                    let common = self.nodes[child]
                        .edge
                        .iter()
                        .zip(&tokens[consumed..])
                        .take_while(|(a, b)| a == b)
                        .count();
                    if common == self.nodes[child].edge.len() {
                        // Full edge match: descend.
                        consumed += common;
                        node = child;
                    } else {
                        // Partial match: split the edge at the divergence.
                        let mid = self.split(node, child, common);
                        consumed += common;
                        node = mid;
                    }
                }
            }
        }
        self.evict_to_budget();
    }

    /// Splits `child`'s edge after `at` tokens, interposing a new node
    /// between `parent` and `child`. Returns the new intermediate node.
    /// Token accounting is conserved (the split only re-buckets an edge),
    /// and `child` keeps its pins — as a descendant of the intermediate
    /// node it continues to protect the whole path.
    fn split(&mut self, parent: usize, child: usize, at: usize) -> usize {
        debug_assert!(at > 0 && at < self.nodes[child].edge.len());
        let head: Vec<TokenId> = self.nodes[child].edge[..at].to_vec();
        let tail: Vec<TokenId> = self.nodes[child].edge[at..].to_vec();
        let first = head[0].0;
        let mid = self.alloc(Node {
            path_hash: hash_token_iter(self.nodes[parent].path_hash, head.iter().map(|t| t.0)),
            edge: head,
            parent,
            children: BTreeMap::new(),
            pins: 0,
            last_use: self.nodes[child].last_use,
        });
        self.nodes[mid].children.insert(tail[0].0, child);
        self.nodes[child].edge = tail;
        self.nodes[child].parent = mid;
        self.nodes[parent].children.insert(first, mid);
        mid
    }

    /// Evicts least-recently-used unpinned leaves until the resident
    /// token count fits the budget, merging pass-through nodes the
    /// evictions leave behind. Stops early when only pinned paths remain.
    fn evict_to_budget(&mut self) {
        while self.resident > self.budget_tokens {
            let Some(victim) = self.lru_unpinned_leaf() else {
                break;
            };
            self.remove_leaf(victim);
        }
    }

    /// The unpinned leaf with the oldest `last_use` (ties: lowest arena
    /// index), scanning the arena directly so the choice is deterministic.
    fn lru_unpinned_leaf(&self) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if self.free.contains(&i) || n.pins > 0 || !n.children.is_empty() {
                continue;
            }
            let key = (n.last_use, i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, i)| i)
    }

    /// Removes leaf `i`, merging its parent with a now-single sibling
    /// when that keeps the tree a proper radix tree (no unpinned
    /// pass-through nodes with exactly one child).
    fn remove_leaf(&mut self, i: usize) {
        debug_assert!(self.nodes[i].children.is_empty() && self.nodes[i].pins == 0);
        let parent = self.nodes[i].parent;
        let first = self.nodes[i].first_token();
        let removed = self.nodes[i].edge.len() as u64;
        self.nodes[parent].children.remove(&first);
        self.resident -= removed;
        self.stats.evicted_tokens += removed;
        self.free_node(i);
        self.maybe_merge(parent);
    }

    /// Merges `node` with its only child when both are unpinned and
    /// `node` is not the root — the inverse of [`PrefixCache::split`],
    /// keeping edges maximally compressed after deletions. The child's
    /// subtree is unaffected (its `path_hash` covers the same tokens).
    fn maybe_merge(&mut self, node: usize) {
        if node == 0 || self.nodes[node].pins > 0 || self.nodes[node].children.len() != 1 {
            return;
        }
        let child = *self.nodes[node]
            .children
            .values()
            .next()
            .expect("one child");
        if self.nodes[child].pins > 0 {
            return;
        }
        let tail = std::mem::take(&mut self.nodes[child].edge);
        let children = std::mem::take(&mut self.nodes[child].children);
        let path_hash = self.nodes[child].path_hash;
        let last_use = self.nodes[node].last_use.max(self.nodes[child].last_use);
        for &grandchild in children.values() {
            self.nodes[grandchild].parent = node;
        }
        let merged = &mut self.nodes[node];
        merged.edge.extend(tail);
        merged.children = children;
        merged.path_hash = path_hash;
        merged.last_use = last_use;
        self.free_node(child);
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn free_node(&mut self, i: usize) {
        self.nodes[i] = Node {
            edge: Vec::new(),
            parent: i,
            children: BTreeMap::new(),
            pins: 0,
            last_use: 0,
            path_hash: 0,
        };
        self.free.push(i);
    }

    /// Recomputes the resident token count from the arena — `O(nodes)`,
    /// for tests asserting token accounting is conserved.
    pub fn audit_resident_tokens(&self) -> u64 {
        self.nodes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(i, _)| !self.free.contains(i))
            .map(|(_, n)| n.edge.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ids: &[u32]) -> Vec<TokenId> {
        ids.iter().map(|&t| TokenId(t)).collect()
    }

    /// A run of `n` tokens from a tiny deterministic stream.
    fn stream(seed: u32, n: usize) -> Vec<TokenId> {
        (0..n as u32).map(|i| TokenId(seed * 10_000 + i)).collect()
    }

    #[test]
    fn cold_lookup_misses_and_insert_hits() {
        let mut c = PrefixCache::new(1_000, 4);
        let p = stream(1, 12);
        assert_eq!(c.lookup_pin(0, &p, 11), 0);
        c.insert(&p);
        assert_eq!(c.resident_tokens(), 12);
        // A second request with the same 12-token prompt matches all 12
        // (already block-aligned), then caps at max_reuse = 11 so one
        // token of genuine prefill remains.
        assert_eq!(c.lookup_pin(1, &p, 11), 11);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().prefill_tokens_saved, 11);
    }

    #[test]
    fn sub_block_matches_are_not_hits() {
        let mut c = PrefixCache::new(1_000, 16);
        c.insert(&toks(&[1, 2, 3]));
        // Only 3 tokens match — less than one 16-token block.
        assert_eq!(c.lookup_pin(0, &toks(&[1, 2, 3, 4]), 3), 0);
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.pinned_node_count(), 0, "misses pin nothing");
    }

    #[test]
    fn partial_match_splits_the_edge() {
        let mut c = PrefixCache::new(1_000, 2);
        c.insert(&toks(&[1, 2, 3, 4, 5, 6]));
        assert_eq!(c.node_count(), 1, "one compressed edge");
        // Diverge after 4 tokens: the edge must split into head + 2 tails.
        c.insert(&toks(&[1, 2, 3, 4, 9, 9]));
        assert_eq!(c.node_count(), 3, "head + two tails");
        assert_eq!(c.resident_tokens(), 8, "6 original + 2 new");
        assert_eq!(c.audit_resident_tokens(), 8, "accounting conserved");
        // Both full paths stay findable.
        assert_eq!(c.peek(&toks(&[1, 2, 3, 4, 5, 6]), 6), 6);
        assert_eq!(c.peek(&toks(&[1, 2, 3, 4, 9, 9]), 6), 6);
        assert_eq!(c.peek(&toks(&[1, 2, 3, 4]), 4), 4, "the shared head");
    }

    #[test]
    fn split_preserves_descendant_path_hashes() {
        let mut c = PrefixCache::new(1_000, 2);
        c.insert(&toks(&[1, 2, 3, 4]));
        let before = {
            let (_, path) = c.walk(&toks(&[1, 2, 3, 4]));
            c.nodes[*path.last().unwrap()].path_hash
        };
        c.insert(&toks(&[1, 2, 9]));
        let after = {
            let (_, path) = c.walk(&toks(&[1, 2, 3, 4]));
            c.nodes[*path.last().unwrap()].path_hash
        };
        assert_eq!(before, after, "node identity survives edge splits");
    }

    #[test]
    fn eviction_respects_budget_and_lru_order() {
        let mut c = PrefixCache::new(8, 2);
        c.insert(&stream(1, 4));
        c.insert(&stream(2, 4));
        assert_eq!(c.resident_tokens(), 8);
        // Touch stream 1 so stream 2 is the LRU victim.
        assert!(c.lookup_pin(0, &stream(1, 4), 3) > 0);
        c.release(0);
        c.insert(&stream(3, 4));
        assert_eq!(c.resident_tokens(), 8, "budget enforced");
        assert!(c.peek(&stream(1, 4), 3) > 0, "recently used survives");
        assert_eq!(c.peek(&stream(2, 4), 3), 0, "LRU entry evicted");
        assert_eq!(c.stats().evicted_tokens, 4);
    }

    #[test]
    fn pinned_paths_are_never_evicted() {
        let mut c = PrefixCache::new(4, 2);
        c.insert(&stream(1, 4));
        // Matched 4 tokens quantize to a full 2-block run, then the
        // max_reuse cap trims to 3 (one genuine prefill token remains).
        assert_eq!(c.lookup_pin(7, &stream(1, 4), 3), 3);
        // Inserting over budget cannot evict the pinned path.
        c.insert(&stream(2, 6));
        assert!(c.peek(&stream(1, 4), 3) > 0, "pinned path survives");
        assert!(
            c.resident_tokens() >= 4,
            "over budget rather than evicting pins"
        );
        // Releasing the pin makes it evictable again.
        c.release(7);
        c.insert(&stream(3, 4));
        assert!(c.resident_tokens() <= 4 + 6);
    }

    #[test]
    fn release_is_idempotent_and_unpins() {
        let mut c = PrefixCache::new(100, 2);
        c.insert(&stream(1, 4));
        c.lookup_pin(1, &stream(1, 4), 3);
        assert!(c.pinned_node_count() > 0);
        c.release(1);
        assert_eq!(c.pinned_node_count(), 0);
        c.release(1); // no-op
        c.release(99); // unknown id: no-op
    }

    #[test]
    fn eviction_merges_passthrough_nodes() {
        let mut c = PrefixCache::new(1_000, 2);
        c.insert(&toks(&[1, 2, 3, 4, 5, 6]));
        c.insert(&toks(&[1, 2, 3, 4, 9, 9]));
        assert_eq!(c.node_count(), 3, "split into head + two tails");
        // Evict the [9, 9] tail by shrinking the budget via direct LRU
        // pressure: touch the [5, 6] path, then force eviction.
        c.lookup_pin(0, &toks(&[1, 2, 3, 4, 5, 6]), 6);
        c.release(0);
        c.budget_tokens = 6;
        c.evict_to_budget();
        assert_eq!(c.node_count(), 1, "head and surviving tail re-merged");
        assert_eq!(c.peek(&toks(&[1, 2, 3, 4, 5, 6]), 6), 6);
        assert_eq!(c.audit_resident_tokens(), c.resident_tokens());
    }

    #[test]
    fn lookup_is_deterministic_across_clones() {
        let mut a = PrefixCache::new(64, 4);
        for s in 0..6 {
            a.insert(&stream(s, 12));
        }
        let mut b = a.clone();
        for s in 0..6 {
            assert_eq!(
                a.lookup_pin(u64::from(s), &stream(s, 12), 11),
                b.lookup_pin(u64::from(s), &stream(s, 12), 11)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }
}
