//! Iteration-granularity trace probing.
//!
//! The engines know nothing about tracing; instead, the deployment
//! drivers snapshot the [`EngineCore`] counters around each
//! `engine.step()` call and derive the per-iteration trace events from
//! the deltas: draft/accepted token counts, the scheduler's real
//! wall-clock share, and request lifecycle transitions (first entry into
//! a running batch, preemption, resumption) read off the running/waiting
//! queues. All of it is gated on [`Tracer::enabled`], so a disabled
//! tracer costs one branch per iteration and zero allocations.

use crate::core::EngineCore;
use crate::engine::Pool;
use crate::session::ReplicaAddr;
use metrics::telemetry::{EventKind, GaugeSample, TraceReplica, Tracer};
use std::collections::HashSet;

/// Converts a serving replica address into telemetry's own replica id
/// (the telemetry crate sits below `serving` and cannot see
/// [`ReplicaAddr`]).
pub fn trace_replica(addr: ReplicaAddr) -> TraceReplica {
    match addr.pool {
        Pool::Prefill => TraceReplica::prefill(addr.index),
        Pool::Decode => TraceReplica::decode(addr.index),
    }
}

/// A gauge sample over one engine core (single-replica deployments;
/// multi-replica shapes aggregate per-core samples themselves).
pub fn core_gauges(core: &EngineCore) -> GaugeSample {
    GaugeSample {
        queue_depth: core.waiting.len(),
        in_flight: core.running.len(),
        kv_occupancy_pct: 100.0 * core.blocks.utilization(),
        cache_hit_rate_pct: core.hotloop.prefix_hit_rate_pct(),
    }
}

/// Per-replica lifecycle memory the probe needs across iterations: which
/// requests have ever run (to tell a first prefill from a resumption)
/// and which are currently evicted. Only populated while tracing.
#[derive(Debug, Default)]
pub struct ProbeState {
    started: HashSet<u64>,
    preempted: HashSet<u64>,
}

/// Counter snapshot taken immediately before one `engine.step()`.
#[derive(Debug)]
pub struct StepProbe {
    speculated: u64,
    accepted: u64,
    scheduling_ms: f64,
    prefill_ms: f64,
    running_before: Vec<u64>,
    finished_before: usize,
}

impl StepProbe {
    /// Snapshots `core`, or returns `None` when `tracer` is disabled —
    /// the single branch the hot loop pays with tracing off.
    pub fn begin(tracer: &Tracer, core: &EngineCore) -> Option<Self> {
        if !tracer.enabled() {
            return None;
        }
        Some(Self {
            speculated: core.speculated_total,
            accepted: core.accepted_total,
            scheduling_ms: core.breakdown.scheduling_ms,
            prefill_ms: core.breakdown.prefill_ms,
            running_before: core.running.iter().map(|r| r.spec.id).collect(),
            finished_before: core.finished_count(),
        })
    }

    /// Emits the iteration's trace events after the step: lifecycle
    /// transitions first (prefill start / resume / preempt), then the
    /// [`EventKind::Iteration`] span itself. `at_ms` is the replica clock
    /// *after* the step (the same upper-bound stamp the lifecycle tracker
    /// uses); the iteration span starts at `at_ms - latency_ms`.
    pub fn finish(
        self,
        tracer: &Tracer,
        core: &EngineCore,
        replica: TraceReplica,
        at_ms: f64,
        latency_ms: f64,
        state: &mut ProbeState,
    ) {
        for r in &core.running {
            let id = r.spec.id;
            if state.preempted.remove(&id) {
                tracer.record(at_ms, EventKind::Resumed { id, replica });
            } else if state.started.insert(id) {
                tracer.record(at_ms, EventKind::PrefillStart { id, replica });
            }
        }
        for &id in &self.running_before {
            let still_running = core.running.iter().any(|r| r.spec.id == id);
            if !still_running && core.waiting.iter().any(|r| r.spec.id == id) {
                state.preempted.insert(id);
                tracer.record(at_ms, EventKind::Preempted { id, replica });
            }
        }
        let finished = core.finished_records();
        for record in &finished[self.finished_before.min(finished.len())..] {
            state.started.remove(&record.id);
            state.preempted.remove(&record.id);
        }
        tracer.record(
            at_ms,
            EventKind::Iteration {
                replica,
                batch: core.running.len(),
                draft_tokens: core.speculated_total.saturating_sub(self.speculated),
                accepted_tokens: core.accepted_total.saturating_sub(self.accepted),
                prefill_ms: core.breakdown.prefill_ms - self.prefill_ms,
                latency_ms,
                sched_wall_ms: core.breakdown.scheduling_ms - self.scheduling_ms,
            },
        );
    }
}
