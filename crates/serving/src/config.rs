//! Deployed-system configuration: hardware testbed + model pair.

use roofline::Testbed;
use simllm::ModelPair;
use spectree::VerifyMode;

/// Everything an engine needs to know about the deployment it runs on.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Hardware + latency models (target and draft).
    pub testbed: Testbed,
    /// Synthetic target/draft model pair.
    pub pair: ModelPair,
    /// Scheduler-level cap on concurrently running requests.
    pub max_batch: usize,
    /// Tokens per KV block (vLLM's default block size).
    pub kv_block_tokens: u32,
    /// Target-token selection during verification.
    pub verify_mode: VerifyMode,
    /// Near-zero-load decode latency (ms), the SLO reference point.
    pub baseline_ms: f64,
    /// Token budget of the cross-request prefix cache ([`crate::prefix`]);
    /// `None` (the default) disables prefix caching entirely, reproducing
    /// the uncached request stream bit for bit.
    pub prefix_cache_tokens: Option<u64>,
}

impl SystemConfig {
    /// Builds a config for a testbed with the default calibrated model pair.
    pub fn new(testbed: Testbed, seed: u64) -> Self {
        let baseline_ms = testbed.baseline_decode_ms();
        Self {
            testbed,
            pair: ModelPair::calibrated(seed),
            max_batch: 256,
            kv_block_tokens: 16,
            verify_mode: VerifyMode::Stochastic,
            baseline_ms,
            prefix_cache_tokens: None,
        }
    }

    /// Enables the cross-request prefix cache with a `tokens` LRU budget
    /// (see [`crate::prefix::PrefixCache`]). Caching only changes when
    /// prefill work is *charged*, never which tokens are generated, so
    /// enabling it on disjoint-prefix traffic leaves records identical.
    #[must_use]
    pub fn with_prefix_cache(mut self, tokens: u64) -> Self {
        assert!(tokens > 0, "a prefix cache needs a non-zero budget");
        self.prefix_cache_tokens = Some(tokens);
        self
    }

    /// The paper's Llama-3.1-70B / 4×A100 deployment.
    pub fn llama70b(seed: u64) -> Self {
        Self::new(Testbed::llama70b(), seed)
    }

    /// The paper's Qwen2.5-32B / 2×A100 deployment.
    pub fn qwen32b(seed: u64) -> Self {
        Self::new(Testbed::qwen32b(), seed)
    }

    /// Combined KV bytes per token (target + colocated draft).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.testbed.target.model().kv_bytes_per_token()
            + self.testbed.draft.model().kv_bytes_per_token()
    }

    /// Builds the block manager for this deployment's free HBM.
    pub fn block_manager(&self) -> crate::kv::BlockManager {
        crate::kv::BlockManager::from_capacity(
            self.testbed.kv_capacity_bytes(),
            self.kv_bytes_per_token(),
            self.kv_block_tokens,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_config_has_sane_baseline() {
        let c = SystemConfig::llama70b(1);
        assert!(c.baseline_ms > 15.0 && c.baseline_ms < 45.0);
    }

    #[test]
    fn block_pool_holds_hundreds_of_thousands_of_tokens() {
        // 4×80 GiB minus 140 GB weights leaves >100 GB for KV; at ~0.36 MB
        // per token that is several hundred thousand tokens.
        let c = SystemConfig::llama70b(1);
        let m = c.block_manager();
        let tokens = m.total_blocks() * u64::from(m.block_tokens());
        assert!(tokens > 200_000, "pool = {tokens} tokens");
        assert!(tokens < 5_000_000);
    }

    #[test]
    fn qwen_pool_differs_from_llama() {
        let l = SystemConfig::llama70b(1).block_manager().total_blocks();
        let q = SystemConfig::qwen32b(1).block_manager().total_blocks();
        assert_ne!(l, q);
    }
}
