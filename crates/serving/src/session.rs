//! The unified serving front door: the [`Deployment`] trait and the
//! online [`ServeSession`] driver.
//!
//! Before this module, every deployment shape had its own entry point —
//! `serving::run`, `cluster::Cluster::run`, `disagg::DisaggCluster::run` —
//! each re-wiring the same event loop (global clock, stall guard, run
//! caps, scaling events, report plumbing) with its own result type. The
//! front door collapses them:
//!
//! * a [`Deployment`] is anything that can accept requests and advance
//!   its own machinery event by event — a single colocated engine
//!   ([`crate::Colocated`]), a multi-replica `cluster::Cluster`, or a
//!   disaggregated `disagg::DisaggCluster`;
//! * a [`ServeSession`] owns the global clock, the run caps
//!   ([`RunOptions`]), a progress [`StallGuard`] and the scaling
//!   timeline, and drives any deployment **online**: requests are
//!   submitted at their arrival times (open-loop from a
//!   [`workload::Workload`], or mid-run from a client hook reacting to
//!   events), not handed over as a whole workload up front;
//! * per-request lifecycle is surfaced as [`DeploymentEvent`]s
//!   (`Admitted`, `FirstToken`, `Finished`, `Rejected`) and the run
//!   finalizes into one [`RunReport`] with per-replica/pool
//!   [`UnitStats`], regardless of topology.
//!
//! The legacy entry points remain as deprecated shims over this module
//! and are verified output-equivalent by `tests/output_equivalence.rs`.

use crate::core::EngineCore;
use crate::engine::{Pool, RunError, RunOptions, RunResult, StallGuard};
use crate::fault::{FaultKind, FaultPlan, RecoveryPolicy};
use metrics::telemetry::{EventKind, GaugeSample, Tracer};
use metrics::{merge_by_completion, ClusterReport, RequestRecord, SloReport};
use std::collections::{HashMap, HashSet, VecDeque};
use workload::{Category, RequestSpec, Workload};

/// What an elastic-scaling action does to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingAction {
    /// Stop routing new requests to the replica; it finishes queued work.
    Drain,
    /// Make the replica eligible for new requests again.
    Join,
}

/// Addresses one replica of a deployment: its pool and index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaAddr {
    /// The pool the replica belongs to.
    pub pool: Pool,
    /// The replica's index within its pool.
    pub index: usize,
}

impl ReplicaAddr {
    /// A serving (decode-pool) replica — in colocated and cluster
    /// deployments, every replica.
    pub fn serving(index: usize) -> Self {
        Self {
            pool: Pool::Decode,
            index,
        }
    }

    /// A prefill-pool replica of a disaggregated deployment.
    pub fn prefill(index: usize) -> Self {
        Self {
            pool: Pool::Prefill,
            index,
        }
    }
}

impl std::fmt::Display for ReplicaAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.pool.label(), self.index)
    }
}

/// A scheduled drain/join of one replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePlan {
    /// Simulation time at which the change applies.
    pub at_ms: f64,
    /// Target replica.
    pub replica: ReplicaAddr,
    /// Drain or join.
    pub action: ScalingAction,
}

/// Why a submission was refused at the front door.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectReason {
    /// The prompt alone can never fit the deployment's smallest KV pool,
    /// so no replica could ever admit it.
    PromptExceedsKv {
        /// Prompt length of the refused request, in tokens.
        prompt_tokens: u32,
        /// The deployment's smallest per-replica KV capacity, in tokens.
        capacity_tokens: u64,
    },
    /// The request's tenant is already holding its full admission quota
    /// of queued requests, so a weighted-fair front door refused it
    /// rather than let one tenant monopolize the waiting queue.
    TenantOverQuota {
        /// Tenant index (position in the scenario's tenant list).
        tenant: usize,
        /// The tenant's admission quota (max held requests).
        quota: usize,
    },
    /// The request was lost to replica/link faults and exhausted its
    /// [`crate::RecoveryPolicy`] retry budget — the terminal outcome of
    /// an unrecoverable request, so conservation (offered = finished +
    /// rejected) holds under any fault schedule.
    RetryBudgetExhausted {
        /// Retries consumed before giving up.
        retries: u32,
    },
    /// Graceful degradation under sustained recovery pressure shed this
    /// request's (loosest) SLO tier at admission instead of letting the
    /// backlog collapse every tier.
    DegradedShed {
        /// Requests awaiting recovery when the shed decision was made.
        pressure: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::PromptExceedsKv {
                prompt_tokens,
                capacity_tokens,
            } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds the deployment's \
                 {capacity_tokens}-token KV capacity"
            ),
            RejectReason::TenantOverQuota { tenant, quota } => write!(
                f,
                "tenant {tenant} already holds its admission quota of \
                 {quota} queued requests"
            ),
            RejectReason::RetryBudgetExhausted { retries } => write!(
                f,
                "lost to faults and exhausted its retry budget after \
                 {retries} retries"
            ),
            RejectReason::DegradedShed { pressure } => write!(
                f,
                "shed at admission: {pressure} requests recovering from \
                 faults, loosest SLO tier refused"
            ),
        }
    }
}

/// A per-request lifecycle event surfaced by a deployment.
///
/// Events are reported at the end of the internal step that produced
/// them (`at_ms` is the step's completion clock, an upper bound on when
/// the milestone occurred within the iteration).
#[derive(Debug, Clone, PartialEq)]
pub enum DeploymentEvent {
    /// The request left a waiting queue and entered a serving batch.
    Admitted {
        /// Request id.
        id: u64,
        /// Replica that admitted it (the prefill replica, when
        /// disaggregated).
        replica: ReplicaAddr,
        /// Clock at which the admission was observed.
        at_ms: f64,
    },
    /// The request produced its first output token.
    FirstToken {
        /// Request id.
        id: u64,
        /// Clock at which the first token was observed.
        at_ms: f64,
    },
    /// The request completed; the record is final.
    Finished {
        /// The completion record (identical to what the run report
        /// aggregates).
        record: RequestRecord,
    },
    /// The request was refused at submission and will never be served.
    Rejected {
        /// Request id.
        id: u64,
        /// Why it was refused.
        reason: RejectReason,
        /// Session clock at refusal.
        at_ms: f64,
    },
    /// A periodic counters snapshot ([`Deployment::gauges`]), dispatched
    /// only when the session was built with
    /// [`ServeSession::with_gauge_events`] — the observation channel a
    /// closed-loop autoscaler consumes.
    GaugeTick {
        /// The tick's nominal sample time.
        at_ms: f64,
        /// The deployment-wide counters snapshot.
        sample: GaugeSample,
    },
}

/// Outcome of one [`Deployment::step`].
#[derive(Debug, Clone, Default)]
pub struct DeploymentStep {
    /// Lifecycle events the step produced.
    pub events: Vec<DeploymentEvent>,
    /// Modelled latency of the engine iteration this step executed, if
    /// one ran. Bookkeeping-only steps (e.g. landing a KV transfer) are
    /// `None` and bypass the session's progress guard.
    pub latency_ms: Option<f64>,
    /// The replica that iterated, when one did. The session keys its
    /// progress guards on this so a zero-latency run on one replica is
    /// never conflated with (or reset by) its peers' steps — the same
    /// per-replica stall semantics the legacy drivers had.
    pub replica: Option<ReplicaAddr>,
}

/// A deployment shape that a [`ServeSession`] can drive.
///
/// Implementors own their replicas and internal machinery (routing,
/// per-replica clocks, KV migration, …); the session owns the global
/// event loop — arrival injection, the scaling timeline, run caps and a
/// progress guard. Event ordering at equal timestamps is: scaling, then
/// arrivals, then internal steps — the contract the legacy per-topology
/// drivers shared.
pub trait Deployment {
    /// Display label for reports (engine name, router name, …).
    fn name(&self) -> String;

    /// The slowest serving replica's near-zero-load decode latency.
    /// Workloads should resolve baseline-relative SLOs against this.
    fn max_baseline_ms(&self) -> f64;

    /// The smallest per-replica KV capacity in tokens — the largest
    /// context that is guaranteed placeable on every replica. The session
    /// uses it for admission control ([`DeploymentEvent::Rejected`]).
    fn kv_capacity_tokens(&self) -> u64;

    /// The longest prefix of `spec`'s prompt already resident in any
    /// replica's cross-request prefix cache, in tokens. The session
    /// subtracts it from the prompt before the capacity check, so a
    /// request whose *uncached suffix* fits is admitted even when its
    /// full prompt would not. Deployments without a prefix cache keep
    /// the default of 0.
    fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u32 {
        let _ = spec;
        0
    }

    /// Accepts a request at `now_ms` (routing it to a replica's waiting
    /// queue). The session has already applied admission control.
    fn submit(&mut self, spec: RequestSpec, now_ms: f64);

    /// The earliest time any internal machinery is due, or `None` when
    /// the deployment is idle.
    fn next_event_ms(&self) -> Option<f64>;

    /// Advances the earliest due internal event (one engine iteration,
    /// KV-transfer landing, …), enforcing the caps in `options` with the
    /// deployment's native granularity (per-replica, as the legacy
    /// drivers did).
    fn step(&mut self, options: &RunOptions) -> Result<DeploymentStep, RunError>;

    /// Advances internal machinery up to (but never past) `horizon_ms` —
    /// the next external event the session will inject (arrival or
    /// scaling), or infinity when none remain.
    ///
    /// The default forwards to [`Deployment::step`] (one event at a
    /// time). Multi-replica deployments override this to batch-step
    /// independent replicas **in parallel** until each reaches the
    /// horizon: between external events replicas do not interact, so the
    /// per-replica state at the horizon — and therefore every record —
    /// is identical to sequential stepping. Only the *interleaving* of
    /// surfaced [`DeploymentEvent`]s (and their upper-bound `at_ms`
    /// stamps) may differ.
    fn step_until(
        &mut self,
        horizon_ms: f64,
        options: &RunOptions,
    ) -> Result<DeploymentStep, RunError> {
        let _ = horizon_ms;
        self.step(options)
    }

    /// Toggles whether `replica` accepts new work (drain/join).
    ///
    /// # Panics
    ///
    /// Panics if `replica` does not exist in this deployment.
    fn set_accepting(&mut self, replica: ReplicaAddr, accepting: bool, now_ms: f64);

    /// Iterations executed across all replicas so far.
    fn iterations(&self) -> u64;

    /// The latest local clock across all replicas.
    fn clock_ms(&self) -> f64;

    /// Finalizes the run into per-replica stats, erroring if
    /// undeliverable work remains (e.g. a KV migration that can never
    /// land).
    fn drain(&mut self) -> Result<Vec<UnitStats>, RunError>;

    /// Installs a tracing handle. Deployments that support tracing clone
    /// it into their replicas so every layer appends to one shared event
    /// log; the default ignores it (tracing stays off).
    fn set_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }

    /// A point-in-time counters snapshot (queue depth, in-flight, KV
    /// occupancy, cache hit rate) for the session's gauge tick. The
    /// default reports zeros.
    fn gauges(&self) -> GaugeSample {
        GaugeSample::default()
    }

    /// Applies an injected fault at `now_ms`, returning the specs of
    /// every request the fault lost (a crashed replica's running *and*
    /// waiting set, transfers aborted by a link outage). The session
    /// re-dispatches or terminally rejects them under its
    /// [`RecoveryPolicy`]. The default no-ops (deployments without
    /// fault machinery lose nothing).
    fn inject_fault(&mut self, fault: &FaultKind, now_ms: f64) -> Vec<RequestSpec> {
        let _ = (fault, now_ms);
        Vec::new()
    }

    /// Clears a previously injected fault at `now_ms` — the crashed
    /// replica rejoins, the slowdown ends, the link heals. The default
    /// no-ops.
    fn clear_fault(&mut self, fault: &FaultKind, now_ms: f64) {
        let _ = (fault, now_ms);
    }

    /// Toggles graceful degradation: while set, engines shed
    /// speculation depth to spend compute on committed tokens instead
    /// of drafts. The default ignores it.
    fn set_degraded(&mut self, degraded: bool) {
        let _ = degraded;
    }
}

/// Tracks which lifecycle milestones have been announced per request, so
/// deployments emit each [`DeploymentEvent`] exactly once.
///
/// One tracker serves a whole deployment (request ids are unique across
/// replicas); the per-core `finished_seen` high-water marks live with the
/// caller because a deployment scans many cores.
#[derive(Debug, Default)]
pub struct LifecycleTracker {
    admitted: HashSet<u64>,
    first_token: HashSet<u64>,
}

impl LifecycleTracker {
    /// Announces `id` as admitted on `replica` if it has not been yet.
    pub fn admit(
        &mut self,
        id: u64,
        replica: ReplicaAddr,
        at_ms: f64,
        out: &mut Vec<DeploymentEvent>,
    ) {
        if self.admitted.insert(id) {
            out.push(DeploymentEvent::Admitted { id, replica, at_ms });
        }
    }

    /// Records `id` as already announced-admitted **without emitting an
    /// event** — used when a request migrates between trackers (e.g.
    /// prefill → decode pool): the destination tracker must not
    /// re-announce what the source already surfaced.
    pub fn mark_admitted(&mut self, id: u64) {
        self.admitted.insert(id);
    }

    /// Drops all state for `id` (the request moved to another tracker),
    /// keeping the sets bounded.
    pub fn forget(&mut self, id: u64) {
        self.admitted.remove(&id);
        self.first_token.remove(&id);
    }

    /// Scans one core after an iteration, emitting newly due events:
    /// admissions and first tokens from the running batch, and
    /// finished-record triplets past the `finished_seen` high-water mark
    /// (which this call advances).
    pub fn scan_core(
        &mut self,
        core: &EngineCore,
        replica: ReplicaAddr,
        at_ms: f64,
        finished_seen: &mut usize,
        out: &mut Vec<DeploymentEvent>,
    ) {
        for r in &core.running {
            let id = r.spec.id;
            if self.admitted.insert(id) {
                out.push(DeploymentEvent::Admitted { id, replica, at_ms });
            }
            if r.generated() > 0 && self.first_token.insert(id) {
                out.push(DeploymentEvent::FirstToken { id, at_ms });
            }
        }
        let finished = core.finished_records();
        for record in &finished[*finished_seen..] {
            let id = record.id;
            if self.admitted.insert(id) {
                out.push(DeploymentEvent::Admitted { id, replica, at_ms });
            }
            if self.first_token.insert(id) {
                out.push(DeploymentEvent::FirstToken { id, at_ms });
            }
            // Completed: forget the id so the sets stay bounded.
            self.admitted.remove(&id);
            self.first_token.remove(&id);
            out.push(DeploymentEvent::Finished {
                record: record.clone(),
            });
        }
        *finished_seen = finished.len();
    }
}

/// One replica's share of a run — the per-unit slice of a [`RunReport`].
#[derive(Debug, Clone)]
pub struct UnitStats {
    /// Which replica this is.
    pub replica: ReplicaAddr,
    /// Requests routed (or migrations landed) here.
    pub routed: u64,
    /// The replica's own run result. Prefill-pool units carry no records
    /// (their requests complete on the decode pool).
    pub result: RunResult,
    /// Requests whose prefill completed here (prefill-pool units).
    pub prefilled_requests: u64,
    /// Prompt tokens prefilled here (prefill-pool units).
    pub prefill_tokens: u64,
}

impl UnitStats {
    /// Display label, e.g. `"replica-0 (AdaServe)"` or `"prefill-1"`.
    pub fn label(&self) -> String {
        match self.replica.pool {
            Pool::Decode => format!("replica-{} ({})", self.replica.index, self.result.engine),
            Pool::Prefill => format!("prefill-{}", self.replica.index),
        }
    }
}

/// Outcome of one [`ServeSession`] run, regardless of deployment shape.
///
/// Collapses the legacy `RunResult` / `ClusterRunResult` /
/// `DisaggRunResult` trio: the merged record stream, per-replica/pool
/// [`UnitStats`], any front-door rejections, and accessors for the
/// standard reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Deployment label ([`Deployment::name`]).
    pub deployment: String,
    /// All completion records — a single engine's stream, or the
    /// completion-time merge across serving replicas.
    pub records: Vec<RequestRecord>,
    /// Per-replica stats, prefill units first, then serving units, each
    /// in replica order.
    pub units: Vec<UnitStats>,
    /// Requests refused at the front door, in refusal order.
    pub rejected: Vec<(u64, RejectReason)>,
    /// Global simulation end time (latest replica clock).
    pub end_ms: f64,
    /// Iterations executed across the deployment.
    pub iterations: u64,
    /// Trace events the session tracer's ring evicted for capacity
    /// (0 when tracing is off or the ring never filled). Non-zero means
    /// the trace is a suffix, not the whole run.
    pub trace_dropped: u64,
    /// Retries the session's [`RecoveryPolicy`] scheduled for requests
    /// lost to injected faults (0 on fault-free runs).
    pub retries_scheduled: u64,
}

impl RunReport {
    /// The paper-style SLO report over the merged records, including
    /// prefix-cache effectiveness merged across every unit.
    pub fn report(&self) -> SloReport {
        SloReport::from_records(&self.records).with_prefix_stats(&self.merged_hotloop())
    }

    /// Hot-loop counters merged across every unit (serving and prefill).
    pub fn merged_hotloop(&self) -> metrics::HotLoopStats {
        let mut merged = metrics::HotLoopStats::default();
        for u in &self.units {
            merged.merge(&u.result.hotloop);
        }
        merged
    }

    /// Per-serving-replica + merged reports.
    pub fn cluster_report(&self) -> ClusterReport {
        ClusterReport::from_streams(
            self.serving_units()
                .map(|u| (u.label(), u.result.records.clone()))
                .collect(),
        )
    }

    /// The serving (decode-pool) units, in replica order.
    pub fn serving_units(&self) -> impl Iterator<Item = &UnitStats> {
        self.units.iter().filter(|u| u.replica.pool == Pool::Decode)
    }

    /// The prefill-pool units, in replica order (empty unless
    /// disaggregated).
    pub fn prefill_units(&self) -> impl Iterator<Item = &UnitStats> {
        self.units
            .iter()
            .filter(|u| u.replica.pool == Pool::Prefill)
    }

    /// Mean accepted speculated tokens per verification across the run.
    pub fn mean_accepted_per_verify(&self) -> f64 {
        let verifies: u64 = self.records.iter().map(|r| r.verify_steps).sum();
        let accepted: u64 = self.records.iter().map(|r| r.accepted_tokens).sum();
        if verifies == 0 {
            0.0
        } else {
            accepted as f64 / verifies as f64
        }
    }

    /// Unwraps a single-engine run back into the legacy [`RunResult`].
    ///
    /// # Panics
    ///
    /// Panics unless the report has exactly one serving unit (a colocated
    /// deployment).
    pub fn into_colocated_result(mut self) -> RunResult {
        let serving: Vec<usize> = self
            .units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.replica.pool == Pool::Decode)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            serving.len(),
            1,
            "into_colocated_result needs exactly one serving unit, got {}",
            serving.len()
        );
        self.units.swap_remove(serving[0]).result
    }
}

/// Follow-up actions a client hook may take while a session runs: submit
/// more requests (closed-loop traffic) or scale the topology.
#[derive(Debug)]
pub struct SessionHandle {
    now_ms: f64,
    submissions: Vec<RequestSpec>,
    scales: Vec<ScalePlan>,
}

impl SessionHandle {
    /// The session's current simulation time.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Queues a request; arrivals in the past are clamped to now.
    pub fn submit(&mut self, spec: RequestSpec) {
        self.submissions.push(spec);
    }

    /// Schedules a drain/join (applied immediately when `at_ms` is not in
    /// the future).
    pub fn scale_at(&mut self, at_ms: f64, replica: ReplicaAddr, action: ScalingAction) {
        self.scales.push(ScalePlan {
            at_ms,
            replica,
            action,
        });
    }
}

/// The one event loop every deployment shape runs under.
///
/// Owns the global clock, the run caps, a progress [`StallGuard`], the
/// pending-arrival queue and the scaling timeline. Drive it open-loop
/// with [`ServeSession::serve`] (a [`Workload`]'s arrivals at their
/// timestamps) or online with [`ServeSession::serve_online`] (a client
/// hook that observes [`DeploymentEvent`]s and may submit follow-up
/// requests or scaling mid-run — traffic the batch-oriented legacy
/// `run(&workload)` contract could not express).
#[derive(Debug)]
pub struct ServeSession<D: Deployment> {
    deployment: D,
    options: RunOptions,
    admission_control: bool,
    now_ms: f64,
    pending: VecDeque<RequestSpec>,
    scaling: VecDeque<ScalePlan>,
    rejected: Vec<(u64, RejectReason)>,
    /// Per-replica progress guards, keyed by [`DeploymentStep::replica`];
    /// the keyless guard backs up steps that report no replica. These are
    /// a backstop for [`Deployment`] implementations without their own
    /// guards — the built-in deployments feed identical per-replica
    /// guards internally and error first, with the same thresholds.
    guards: HashMap<ReplicaAddr, StallGuard>,
    guard: StallGuard,
    /// Whether the event loop may hand the deployment a batching horizon
    /// ([`Deployment::step_until`]). Only open-loop runs ([`ServeSession::serve`])
    /// do: a closed-loop client ([`ServeSession::serve_online`]) reacts to
    /// lifecycle events as they happen, so its deployment must step one
    /// event at a time to surface them timely.
    batch_stepping: bool,
    /// End-to-end tracing handle (off by default). The session records
    /// the front-door events (enqueue, admission, rejection, finish,
    /// gauge ticks); the deployment and its replicas share the same
    /// handle for routing/iteration/transfer events.
    tracer: Tracer,
    /// Gauge sampling period in simulation milliseconds.
    gauge_tick_ms: f64,
    /// Next due gauge sample.
    next_gauge_ms: f64,
    /// Whether gauge samples are also dispatched to the client as
    /// [`DeploymentEvent::GaugeTick`]s (off by default; enables
    /// closed-loop controllers without requiring tracing).
    gauge_events: bool,
    /// Prefix-cache hit lengths computed at arrival, keyed by request id,
    /// so the traced admission event can carry them.
    cached_at_arrival: HashMap<u64, u32>,
    /// The fault timeline: injections and their scheduled recoveries,
    /// sorted by time (like `scaling`). Empty unless
    /// [`ServeSession::with_fault_plan`] was called, so fault-free runs
    /// take the exact legacy path.
    faults: VecDeque<FaultAction>,
    /// What happens to requests lost to faults.
    recovery: RecoveryPolicy,
    /// Retry state per request that was ever lost to a fault, keyed by
    /// id. Entries persist after the request's terminal outcome so
    /// [`ServeSession::finish`] can restore original arrival times on
    /// retried records (TTFT is measured from the *first* arrival).
    retrying: HashMap<u64, RetryState>,
    /// Requests currently recovering (lost and not yet finished or
    /// rejected) — the pressure signal for graceful degradation.
    active_retries: HashSet<u64>,
    /// Retries scheduled so far (surfaced on [`RunReport`]).
    retries_scheduled: u64,
    /// Whether the deployment is currently in degraded (shed
    /// speculation) mode.
    degraded: bool,
}

/// One entry of the session's fault timeline.
#[derive(Debug, Clone)]
struct FaultAction {
    at_ms: f64,
    op: FaultOp,
}

#[derive(Debug, Clone)]
enum FaultOp {
    Inject(FaultKind),
    Clear(FaultKind),
}

/// Retry accounting for one request that was lost to a fault.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// The request's original (first) arrival time.
    first_arrival_ms: f64,
    /// Retries scheduled so far.
    attempts: u32,
}

impl<D: Deployment> ServeSession<D> {
    /// A session over `deployment` with default run caps.
    pub fn new(deployment: D) -> Self {
        Self::with_options(deployment, RunOptions::default())
    }

    /// A session over `deployment` with explicit run caps.
    pub fn with_options(deployment: D, options: RunOptions) -> Self {
        Self {
            deployment,
            options,
            admission_control: true,
            now_ms: 0.0,
            pending: VecDeque::new(),
            scaling: VecDeque::new(),
            rejected: Vec::new(),
            guards: HashMap::new(),
            guard: StallGuard::default(),
            batch_stepping: false,
            tracer: Tracer::off(),
            gauge_tick_ms: 1_000.0,
            next_gauge_ms: 0.0,
            gauge_events: false,
            cached_at_arrival: HashMap::new(),
            faults: VecDeque::new(),
            recovery: RecoveryPolicy::default(),
            retrying: HashMap::new(),
            active_retries: HashSet::new(),
            retries_scheduled: 0,
            degraded: false,
        }
    }

    /// Installs a chaos schedule: each fault is injected at its planned
    /// instant and automatically cleared `duration_ms` later, so the
    /// event loop can never wedge on a down replica. An empty plan
    /// changes nothing — serving stays bit-identical to a session
    /// without one.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        for event in plan.events() {
            self.push_fault(event.at_ms, FaultOp::Inject(event.kind.clone()));
            self.push_fault(
                event.at_ms + event.kind.duration_ms(),
                FaultOp::Clear(event.kind.clone()),
            );
        }
        self
    }

    /// Sets how requests lost to faults are retried and when sustained
    /// pressure triggers graceful degradation (defaults to
    /// [`RecoveryPolicy::default`]; [`RecoveryPolicy::no_retry`] is the
    /// recovery-less baseline).
    #[must_use]
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    fn push_fault(&mut self, at_ms: f64, op: FaultOp) {
        let idx = self.faults.partition_point(|f| f.at_ms <= at_ms);
        self.faults.insert(idx, FaultAction { at_ms, op });
    }

    /// Enables end-to-end tracing: the handle is cloned into the
    /// deployment (and from there its replicas), so one shared ring
    /// buffer receives the whole run's events. Pass
    /// [`Tracer::on`]/[`Tracer::ring`] to enable; the default
    /// [`Tracer::off`] keeps every call site at one branch. Tracing
    /// never affects scheduling decisions, so records stay bit-identical
    /// to an untraced run.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.deployment.set_tracer(tracer.clone());
        self.tracer = tracer;
        self
    }

    /// Sets the gauge sampling period in simulation milliseconds
    /// (default 1000 ms; sampled while tracing or
    /// [`ServeSession::with_gauge_events`] is enabled).
    #[must_use]
    pub fn with_gauge_tick_ms(mut self, tick_ms: f64) -> Self {
        self.gauge_tick_ms = tick_ms.max(1e-3);
        self
    }

    /// Surfaces every gauge sample to the client as a
    /// [`DeploymentEvent::GaugeTick`] (off by default). This is the
    /// signal feed for closed-loop controllers — e.g. an autoscaler
    /// reacting to queue depth and KV occupancy — and works with or
    /// without tracing. Sampling never affects scheduling, so records
    /// stay identical to a run without gauge events.
    #[must_use]
    pub fn with_gauge_events(mut self) -> Self {
        self.gauge_events = true;
        self
    }

    /// The session's tracing handle (disabled unless
    /// [`ServeSession::with_tracer`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables/disables front-door admission control (rejecting prompts
    /// that can never fit any replica's KV pool). On by default; the
    /// legacy shims disable it to preserve their original error-path
    /// behavior.
    #[must_use]
    pub fn admission_control(mut self, enabled: bool) -> Self {
        self.admission_control = enabled;
        self
    }

    /// Selects how the deployment executes batched replica stepping (see
    /// [`crate::exec::ExecMode`]); defaults to auto-sharded. Output is
    /// record-identical across modes. A deployment-level `with_exec_mode`
    /// override (on `Cluster`/`DisaggCluster`) takes precedence over this
    /// session-level setting.
    #[must_use]
    pub fn with_exec_mode(mut self, exec: crate::exec::ExecMode) -> Self {
        self.options.exec = exec;
        self
    }

    /// Read-only access to the deployment.
    pub fn deployment(&self) -> &D {
        &self.deployment
    }

    /// Recovers the deployment (e.g. for topology-specific telemetry
    /// after the run).
    pub fn into_inner(self) -> D {
        self.deployment
    }

    /// The session's current simulation time.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Queues a request for submission at its arrival time. Arrivals in
    /// the session's past are clamped to now.
    pub fn submit(&mut self, mut spec: RequestSpec) {
        if spec.arrival_ms < self.now_ms {
            spec.arrival_ms = self.now_ms;
        }
        let at = spec.arrival_ms;
        let idx = self.pending.partition_point(|s| s.arrival_ms <= at);
        self.pending.insert(idx, spec);
    }

    /// Queues every request of `workload` at its arrival time.
    pub fn enqueue(&mut self, workload: &Workload) {
        for spec in &workload.requests {
            self.submit(spec.clone());
        }
    }

    /// Schedules a drain/join of one replica at `at_ms`.
    pub fn scale_at(&mut self, at_ms: f64, replica: ReplicaAddr, action: ScalingAction) {
        let idx = self.scaling.partition_point(|p| p.at_ms <= at_ms);
        self.scaling.insert(
            idx,
            ScalePlan {
                at_ms,
                replica,
                action,
            },
        );
    }

    /// Serves `workload` to completion (open loop): every arrival is
    /// queued at its timestamp, then the event loop runs dry.
    ///
    /// With no client reacting to events mid-run, the deployment may
    /// batch (and parallelize) its internal stepping between arrivals
    /// via [`Deployment::step_until`] — output is identical, only event
    /// delivery is deferred to the batch boundaries nobody observes.
    pub fn serve(&mut self, workload: &Workload) -> Result<RunReport, RunError> {
        self.enqueue(workload);
        self.batch_stepping = true;
        let result = self.serve_loop(&mut |_, _| {});
        self.batch_stepping = false;
        result
    }

    /// Runs the event loop to completion, surfacing every
    /// [`DeploymentEvent`] to `client`, which may submit follow-up
    /// requests or scaling through the [`SessionHandle`] — closed-loop
    /// and interactive traffic the batch `run(&workload)` signature
    /// cannot express. Returns once no arrivals, scaling or work remain.
    pub fn serve_online<F>(&mut self, mut client: F) -> Result<RunReport, RunError>
    where
        F: FnMut(&DeploymentEvent, &mut SessionHandle),
    {
        // A closed-loop client must observe events at the deployment's
        // native step granularity (its submissions and scaling react to
        // them), so batch stepping stays off here.
        self.serve_loop(&mut client)
    }

    fn serve_loop<F>(&mut self, client: &mut F) -> Result<RunReport, RunError>
    where
        F: FnMut(&DeploymentEvent, &mut SessionHandle),
    {
        loop {
            let t_arr = self.pending.front().map_or(f64::INFINITY, |s| s.arrival_ms);
            let t_scale = self.scaling.front().map_or(f64::INFINITY, |p| p.at_ms);
            let t_fault = self.faults.front().map_or(f64::INFINITY, |f| f.at_ms);
            let t_dep = self.deployment.next_event_ms().unwrap_or(f64::INFINITY);
            let t = t_scale.min(t_fault).min(t_arr).min(t_dep);
            if t.is_infinite() {
                break; // No arrivals, no scaling, no faults, no work anywhere.
            }
            self.now_ms = self.now_ms.max(t);

            if self.tracer.enabled() || self.gauge_events {
                while self.next_gauge_ms <= self.now_ms {
                    let sample = self.deployment.gauges();
                    if self.tracer.enabled() {
                        self.tracer
                            .record(self.next_gauge_ms, EventKind::Gauge(sample));
                    }
                    let at_ms = self.next_gauge_ms;
                    self.next_gauge_ms += self.gauge_tick_ms;
                    if self.gauge_events {
                        let event = DeploymentEvent::GaugeTick { at_ms, sample };
                        self.dispatch(&event, client);
                    }
                }
            }

            // Equal-timestamp order: scaling first (arrivals at the same
            // instant see the new topology), then faults, then arrivals,
            // then the deployment's internal machinery.
            if t_scale <= t {
                let plan = self.scaling.pop_front().expect("t_scale was finite");
                self.deployment.set_accepting(
                    plan.replica,
                    matches!(plan.action, ScalingAction::Join),
                    plan.at_ms,
                );
                continue;
            }

            if t_fault <= t {
                let action = self.faults.pop_front().expect("t_fault was finite");
                self.apply_fault_action(action, client);
                continue;
            }

            if t_arr <= t {
                let spec = self.pending.pop_front().expect("t_arr was finite");
                if self.tracer.enabled() {
                    self.tracer.record(
                        self.now_ms,
                        EventKind::Enqueue {
                            id: spec.id,
                            prompt_tokens: spec.prompt_len,
                            output_tokens: spec.output_len,
                        },
                    );
                    // The admission event carries the prefix-cache hit
                    // length; compute it now (cache state at arrival),
                    // independent of whether admission control also does.
                    let cached = self.deployment.cached_prefix_tokens(&spec);
                    self.cached_at_arrival.insert(spec.id, cached);
                }
                // Graceful degradation, stage two: under sustained
                // recovery pressure the loosest SLO tier is refused at
                // admission so the tighter tiers keep their attainment.
                if self.active_retries.len() >= self.recovery.shed_tier_pressure
                    && spec.category == Category::Summarization
                {
                    let reason = RejectReason::DegradedShed {
                        pressure: self.active_retries.len(),
                    };
                    let event = DeploymentEvent::Rejected {
                        id: spec.id,
                        reason,
                        at_ms: self.now_ms,
                    };
                    self.dispatch(&event, client);
                    continue;
                }
                if self.admission_control {
                    let capacity = self.deployment.kv_capacity_tokens();
                    let cached = self.deployment.cached_prefix_tokens(&spec);
                    if u64::from(spec.prompt_len.saturating_sub(cached)) + 1 > capacity {
                        let reason = RejectReason::PromptExceedsKv {
                            prompt_tokens: spec.prompt_len,
                            capacity_tokens: capacity,
                        };
                        let event = DeploymentEvent::Rejected {
                            id: spec.id,
                            reason,
                            at_ms: self.now_ms,
                        };
                        self.dispatch(&event, client);
                        continue;
                    }
                }
                let arrival_ms = spec.arrival_ms;
                self.deployment.submit(spec, arrival_ms);
                continue;
            }

            // Everything strictly before the next arrival/scaling event is
            // internal to the deployment. Open-loop runs hand it the
            // horizon so multi-replica shapes can batch (and parallelize)
            // their independent replicas up to it; closed-loop runs step
            // one event at a time so the client observes events timely.
            let step = if self.batch_stepping {
                // The batching horizon must stop at the next fault too:
                // a crash at t must observe exactly the pre-t state,
                // whatever the exec mode.
                self.deployment
                    .step_until(t_arr.min(t_scale).min(t_fault), &self.options)?
            } else {
                self.deployment.step(&self.options)?
            };
            if let Some(latency_ms) = step.latency_ms {
                let guard = match step.replica {
                    Some(addr) => self.guards.entry(addr).or_default(),
                    None => &mut self.guard,
                };
                guard.observe(latency_ms).map_err(|e| match step.replica {
                    Some(addr) => e.at(addr.pool, addr.index),
                    None => e,
                })?;
            }
            for event in &step.events {
                self.dispatch(event, client);
            }
        }
        self.finish()
    }

    /// Applies one fault-timeline entry: inject (collect the lost
    /// requests and route them through recovery) or clear (the
    /// deployment heals itself).
    fn apply_fault_action<F>(&mut self, action: FaultAction, client: &mut F)
    where
        F: FnMut(&DeploymentEvent, &mut SessionHandle),
    {
        match action.op {
            FaultOp::Inject(kind) => {
                let lost = self.deployment.inject_fault(&kind, self.now_ms);
                if self.tracer.enabled() {
                    let event = match kind.replica() {
                        Some(addr) if matches!(kind, FaultKind::ReplicaCrash { .. }) => {
                            EventKind::ReplicaDown {
                                replica: crate::probe::trace_replica(addr),
                                fault: kind.describe(),
                                lost_requests: lost.len(),
                            }
                        }
                        _ => EventKind::FaultInjected {
                            target: kind.target_label(),
                            fault: kind.describe(),
                            lost_requests: lost.len(),
                        },
                    };
                    self.tracer.record(self.now_ms, event);
                }
                for spec in lost {
                    self.handle_lost(spec, client);
                }
                self.update_degradation();
            }
            FaultOp::Clear(kind) => {
                self.deployment.clear_fault(&kind, self.now_ms);
                if self.tracer.enabled() {
                    let event = match kind.replica() {
                        Some(addr) if matches!(kind, FaultKind::ReplicaCrash { .. }) => {
                            EventKind::ReplicaRecovered {
                                replica: crate::probe::trace_replica(addr),
                            }
                        }
                        _ => EventKind::FaultCleared {
                            target: kind.target_label(),
                        },
                    };
                    self.tracer.record(self.now_ms, event);
                }
            }
        }
    }

    /// Routes one request lost to a fault through the recovery policy:
    /// re-dispatch with exponential backoff while the retry budget
    /// lasts, terminal rejection once it is exhausted. Requests are
    /// retried with their original spec — `next_token` is a pure
    /// function of the stream, so a re-served request regenerates the
    /// identical output (and the prefix cache makes its re-prefill
    /// cheap).
    fn handle_lost<F>(&mut self, mut spec: RequestSpec, client: &mut F)
    where
        F: FnMut(&DeploymentEvent, &mut SessionHandle),
    {
        let budget = self.recovery.retry_budget;
        let state = self.retrying.entry(spec.id).or_insert(RetryState {
            first_arrival_ms: spec.arrival_ms,
            attempts: 0,
        });
        if state.attempts >= budget {
            let retries = state.attempts;
            let event = DeploymentEvent::Rejected {
                id: spec.id,
                reason: RejectReason::RetryBudgetExhausted { retries },
                at_ms: self.now_ms,
            };
            self.dispatch(&event, client);
            return;
        }
        state.attempts += 1;
        let attempt = state.attempts;
        let resubmit_at_ms = self.now_ms + self.recovery.backoff_ms(attempt);
        spec.arrival_ms = resubmit_at_ms;
        self.retries_scheduled += 1;
        self.active_retries.insert(spec.id);
        if self.tracer.enabled() {
            self.tracer.record(
                self.now_ms,
                EventKind::RetryScheduled {
                    id: spec.id,
                    attempt,
                    resubmit_at_ms,
                },
            );
        }
        self.submit(spec);
    }

    /// Recomputes the graceful-degradation state from recovery pressure
    /// and informs the deployment on transitions (stage one: shed
    /// speculation depth).
    fn update_degradation(&mut self) {
        let pressure = self.active_retries.len();
        let degraded = pressure > 0 && pressure >= self.recovery.shed_speculation_pressure;
        if degraded != self.degraded {
            self.degraded = degraded;
            self.deployment.set_degraded(degraded);
        }
    }

    /// Surfaces one event to the client and absorbs its follow-ups.
    fn dispatch<F>(&mut self, event: &DeploymentEvent, client: &mut F)
    where
        F: FnMut(&DeploymentEvent, &mut SessionHandle),
    {
        // Rejections are accounted here — whether issued by the session's
        // own admission check or surfaced from a front-door deployment
        // wrapper's step (e.g. a tenant-quota refusal) — so RunReport
        // conservation (records + rejected = offered) holds for both.
        if let DeploymentEvent::Rejected { id, reason, .. } = event {
            self.rejected.push((*id, *reason));
            if self.active_retries.remove(id) {
                self.update_degradation();
            }
        }
        if let DeploymentEvent::Finished { record } = event {
            if self.active_retries.remove(&record.id) {
                self.update_degradation();
            }
        }
        if self.tracer.enabled() {
            self.trace_event(event);
        }
        let mut handle = SessionHandle {
            now_ms: self.now_ms,
            submissions: Vec::new(),
            scales: Vec::new(),
        };
        client(event, &mut handle);
        for spec in handle.submissions {
            self.submit(spec);
        }
        for plan in handle.scales {
            if plan.at_ms <= self.now_ms {
                self.deployment.set_accepting(
                    plan.replica,
                    matches!(plan.action, ScalingAction::Join),
                    self.now_ms,
                );
            } else {
                self.scale_at(plan.at_ms, plan.replica, plan.action);
            }
        }
    }

    /// Translates one deployment lifecycle event into its trace
    /// counterpart (only called while tracing).
    fn trace_event(&mut self, event: &DeploymentEvent) {
        match event {
            DeploymentEvent::Admitted { id, replica, at_ms } => {
                let cached = self.cached_at_arrival.remove(id).unwrap_or(0);
                self.tracer.record(
                    *at_ms,
                    EventKind::Admitted {
                        id: *id,
                        replica: crate::probe::trace_replica(*replica),
                        cached_prefix_tokens: cached,
                    },
                );
            }
            DeploymentEvent::Rejected { id, reason, at_ms } => {
                self.cached_at_arrival.remove(id);
                self.tracer.record(
                    *at_ms,
                    EventKind::Rejected {
                        id: *id,
                        reason: reason.to_string(),
                    },
                );
            }
            DeploymentEvent::Finished { record } => {
                self.tracer.record(
                    record.completion_ms,
                    EventKind::Finished {
                        id: record.id,
                        tier: record.category.label().to_string(),
                        arrival_ms: record.arrival_ms,
                        decode_start_ms: record.decode_start_ms,
                        completion_ms: record.completion_ms,
                        output_tokens: record.output_tokens,
                        preemptions: record.preemptions,
                        ttft_slo_ms: record.ttft_slo_ms,
                        tpot_slo_ms: record.tpot_slo_ms,
                    },
                );
            }
            // Gauge ticks are recorded to the tracer at sampling time in
            // the serve loop, not here, so a traced run never
            // double-records them.
            DeploymentEvent::FirstToken { .. } | DeploymentEvent::GaugeTick { .. } => {}
        }
    }

    /// Finalizes the deployment into a [`RunReport`].
    fn finish(&mut self) -> Result<RunReport, RunError> {
        let end_ms = self.deployment.clock_ms();
        let iterations = self.deployment.iterations();
        let deployment = self.deployment.name();
        let units = self.deployment.drain()?;
        let mut streams: Vec<Vec<RequestRecord>> = units
            .iter()
            .filter(|u| u.replica.pool == Pool::Decode)
            .map(|u| u.result.records.clone())
            .collect();
        // A single engine's stream is already in its native completion
        // order; only multi-replica runs need the k-way merge.
        let mut records = if streams.len() == 1 {
            streams.pop().expect("one stream")
        } else {
            merge_by_completion(streams)
        };
        // A retried request was re-submitted with a backoff-shifted
        // arrival; its record must charge the whole recovery (backoff,
        // re-queueing, re-prefill) against the original arrival so TTFT
        // and attainment stay honest.
        if !self.retrying.is_empty() {
            for record in &mut records {
                if let Some(state) = self.retrying.get(&record.id) {
                    record.arrival_ms = state.first_arrival_ms;
                }
            }
        }
        Ok(RunReport {
            deployment,
            records,
            units,
            rejected: std::mem::take(&mut self.rejected),
            end_ms,
            iterations,
            trace_dropped: self.tracer.dropped(),
            retries_scheduled: self.retries_scheduled,
        })
    }
}
