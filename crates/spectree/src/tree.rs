//! The arena-based token tree.
//!
//! Nodes live in one flat `Vec`; child lists are intrusive
//! (`first_child`/`next_sibling` indices) rather than per-node `Vec`s, so
//! building a tree performs exactly one growable allocation regardless of
//! its shape — and a pooled tree ([`TokenTree::reset`]) performs none at
//! steady state. Sibling order is insertion order, which verification
//! relies on (rejection sampling tries siblings in draft order).

use simllm::TokenId;
use std::fmt;

/// Index of a node within one [`TokenTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The root node's id (always 0).
pub const ROOT: NodeId = NodeId(0);

/// Sentinel for "no node" in the intrusive sibling links.
const NONE: u32 = u32::MAX;

/// Reusable buffers for [`TokenTree::induced_subtree_into`]: the sorted
/// copy of the kept ids and the dense id remap.
#[derive(Debug, Default)]
pub struct SubtreeScratch {
    sorted: Vec<NodeId>,
    remap: Vec<Option<NodeId>>,
}

impl SubtreeScratch {
    /// Sum of buffer capacities (allocation-discipline probe).
    pub fn capacity_sum(&self) -> usize {
        self.sorted.capacity() + self.remap.capacity()
    }
}

/// Errors raised by tree mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Referenced parent does not exist.
    MissingParent(NodeId),
    /// Child path probability must be strictly below the parent's.
    ProbNotDecreasing,
    /// The same token already labels an edge from this parent.
    DuplicateEdge(TokenId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::MissingParent(id) => write!(f, "parent node {id:?} does not exist"),
            TreeError::ProbNotDecreasing => {
                write!(
                    f,
                    "child path probability must be strictly below its parent's"
                )
            }
            TreeError::DuplicateEdge(t) => {
                write!(f, "token {t} already labels an edge from this parent")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
struct Node {
    token: TokenId,
    parent: Option<NodeId>,
    /// First child in insertion order (`NONE` when leaf).
    first_child: u32,
    /// Next sibling in the parent's insertion order (`NONE` at the tail).
    next_sibling: u32,
    path_prob: f64,
    depth: u32,
}

impl Node {
    fn new(token: TokenId, parent: Option<NodeId>, path_prob: f64, depth: u32) -> Self {
        Self {
            token,
            parent,
            first_child: NONE,
            next_sibling: NONE,
            path_prob,
            depth,
        }
    }
}

/// A rooted token tree with per-node path probabilities.
///
/// The root holds the request's last generated token and path probability 1.
/// Each non-root node represents one speculated token; its `path_prob` is the
/// (approximated) probability that the target model accepts the entire
/// root-to-node token sequence (paper Theorem 3.1 / eq. 7).
///
/// # Invariants
///
/// * node 0 is the root, with `path_prob == 1.0` and no parent;
/// * every other node has a parent that was inserted before it;
/// * `path_prob(child) < path_prob(parent)` strictly;
/// * sibling edges carry distinct tokens.
#[derive(Debug, Clone)]
pub struct TokenTree {
    nodes: Vec<Node>,
}

impl TokenTree {
    /// Creates a tree holding only the root token.
    pub fn new(root_token: TokenId) -> Self {
        Self {
            nodes: vec![Node::new(root_token, None, 1.0, 0)],
        }
    }

    /// Clears the tree back to a lone root, **reusing the arena's
    /// allocation** — the pooling primitive the allocation-free engine
    /// loop builds on.
    pub fn reset(&mut self, root_token: TokenId) {
        self.nodes.clear();
        self.nodes.push(Node::new(root_token, None, 1.0, 0));
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        ROOT
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of *speculated* tokens (excludes the root, which is already
    /// decoded). This is the `|T_i|` the paper's budget constraint counts.
    pub fn num_speculated(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Adds a speculated token under `parent`.
    ///
    /// `path_prob` is the approximated probability of the full root-to-node
    /// path; it must be strictly below the parent's.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        token: TokenId,
        path_prob: f64,
    ) -> Result<NodeId, TreeError> {
        let pidx = parent.0 as usize;
        if pidx >= self.nodes.len() {
            return Err(TreeError::MissingParent(parent));
        }
        if path_prob >= self.nodes[pidx].path_prob || path_prob < 0.0 || !path_prob.is_finite() {
            return Err(TreeError::ProbNotDecreasing);
        }
        // Walk the (short) sibling list: detect duplicates and find the
        // tail so insertion order is preserved.
        let mut tail = NONE;
        let mut cur = self.nodes[pidx].first_child;
        while cur != NONE {
            if self.nodes[cur as usize].token == token {
                return Err(TreeError::DuplicateEdge(token));
            }
            tail = cur;
            cur = self.nodes[cur as usize].next_sibling;
        }
        let id = NodeId(self.nodes.len() as u32);
        let depth = self.nodes[pidx].depth + 1;
        self.nodes
            .push(Node::new(token, Some(parent), path_prob, depth));
        if tail == NONE {
            self.nodes[pidx].first_child = id.0;
        } else {
            self.nodes[tail as usize].next_sibling = id.0;
        }
        Ok(id)
    }

    /// Token at `node`.
    pub fn token(&self, node: NodeId) -> TokenId {
        self.nodes[node.0 as usize].token
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0 as usize].parent
    }

    /// Children of `node`, in insertion order.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.nodes[node.0 as usize].first_child;
        std::iter::from_fn(move || {
            if cur == NONE {
                return None;
            }
            let id = NodeId(cur);
            cur = self.nodes[cur as usize].next_sibling;
            Some(id)
        })
    }

    /// Number of children of `node`.
    pub fn num_children(&self, node: NodeId) -> usize {
        self.children(node).count()
    }

    /// Approximated path probability of `node`.
    pub fn path_prob(&self, node: NodeId) -> f64 {
        self.nodes[node.0 as usize].path_prob
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> u32 {
        self.nodes[node.0 as usize].depth
    }

    /// Maximum node depth (0 for a root-only tree).
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// All node ids in insertion order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Non-root node ids sorted by descending path probability.
    ///
    /// Ties break by insertion order, keeping selection deterministic.
    pub fn speculated_by_prob_desc(&self) -> Vec<NodeId> {
        let mut ids = Vec::new();
        self.speculated_by_prob_desc_into(&mut ids);
        ids
    }

    /// Scratch-buffer variant of [`TokenTree::speculated_by_prob_desc`]:
    /// fills `out` (cleared first) instead of allocating. The sort is
    /// unstable but the comparator is a total order over distinct
    /// `(prob, id)` keys, so the result is identical to the stable sort.
    pub fn speculated_by_prob_desc_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend((1..self.nodes.len() as u32).map(NodeId));
        out.sort_unstable_by(|a, b| {
            let pa = self.nodes[a.0 as usize].path_prob;
            let pb = self.nodes[b.0 as usize].path_prob;
            pb.partial_cmp(&pa)
                .expect("finite probs")
                .then_with(|| a.0.cmp(&b.0))
        });
    }

    /// The token sequence along the path from (excluding) the root to `node`.
    pub fn path_tokens(&self, node: NodeId) -> Vec<TokenId> {
        let mut out = Vec::new();
        self.path_tokens_into(node, &mut out);
        out
    }

    /// Scratch-buffer variant of [`TokenTree::path_tokens`]: fills `out`
    /// (cleared first) instead of allocating — the speculation and
    /// verification loops call this once per evaluated node.
    pub fn path_tokens_into(&self, node: NodeId, out: &mut Vec<TokenId>) {
        out.clear();
        let mut cur = node;
        while let Some(p) = self.nodes[cur.0 as usize].parent {
            out.push(self.nodes[cur.0 as usize].token);
            cur = p;
        }
        out.reverse();
    }

    /// Expected number of accepted tokens if this tree were verified:
    /// `Σ_{v ∈ T, v ≠ root} f(v)` (paper Theorem 3.1).
    pub fn expected_accepted(&self) -> f64 {
        self.nodes.iter().skip(1).map(|n| n.path_prob).sum()
    }

    /// Arena capacity in nodes (allocation-discipline probe for pooled
    /// trees: flat after warm-up means [`TokenTree::reset`] reuse works).
    pub fn arena_capacity(&self) -> usize {
        self.nodes.capacity()
    }

    /// Builds the subtree induced by `keep` (which must include connected
    /// nodes only; the root is always added).
    ///
    /// Node ids are remapped; the relative order of kept nodes is preserved.
    /// Returns an error if `keep` references a node whose parent is neither
    /// the root nor also kept.
    pub fn induced_subtree(&self, keep: &[NodeId]) -> Result<TokenTree, TreeError> {
        let mut out = TokenTree::new(self.nodes[0].token);
        self.induced_subtree_into(keep, &mut out, &mut SubtreeScratch::default())?;
        Ok(out)
    }

    /// Pooled variant of [`TokenTree::induced_subtree`]: rebuilds `out`
    /// in place (resetting it to this tree's root first), with all
    /// transient buffers drawn from `scratch` — no allocations once warm.
    ///
    /// Node ids are dense `u32`s, so the remap is a flat
    /// `Vec<Option<NodeId>>` indexed by source id — no hashing. On error
    /// (`keep` disconnected from the kept set) `out` holds the partial
    /// subtree built so far and must not be used.
    pub fn induced_subtree_into(
        &self,
        keep: &[NodeId],
        out: &mut TokenTree,
        scratch: &mut SubtreeScratch,
    ) -> Result<(), TreeError> {
        scratch.sorted.clear();
        scratch.sorted.extend_from_slice(keep);
        scratch.sorted.sort_unstable();
        scratch.sorted.dedup();
        out.reset(self.nodes[0].token);
        // Dense remap: source id -> destination id (root maps to root).
        scratch.remap.clear();
        scratch.remap.resize(self.nodes.len(), None);
        scratch.remap[ROOT.0 as usize] = Some(ROOT);
        for &id in &scratch.sorted {
            if id == ROOT {
                continue;
            }
            let node = &self.nodes[id.0 as usize];
            let parent = node.parent.expect("non-root has parent");
            let new_parent =
                scratch.remap[parent.0 as usize].ok_or(TreeError::MissingParent(parent))?;
            let new_id = out.add_child(new_parent, node.token, node.path_prob)?;
            scratch.remap[id.0 as usize] = Some(new_id);
        }
        Ok(())
    }

    /// Checks every structural invariant; returns a description on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("tree has no root".into());
        }
        if self.nodes[0].parent.is_some() || self.nodes[0].path_prob != 1.0 {
            return Err("malformed root".into());
        }
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let p = match n.parent {
                Some(p) if (p.0 as usize) < i => p,
                Some(_) => return Err(format!("node {i} references a later parent")),
                None => return Err(format!("non-root node {i} has no parent")),
            };
            let pn = &self.nodes[p.0 as usize];
            if n.path_prob >= pn.path_prob {
                return Err(format!(
                    "node {i} prob {} !< parent {}",
                    n.path_prob, pn.path_prob
                ));
            }
            if n.depth != pn.depth + 1 {
                return Err(format!("node {i} depth mismatch"));
            }
            if !self.children(p).any(|c| c == NodeId(i as u32)) {
                return Err(format!("node {i} missing from parent's child list"));
            }
        }
        // Sibling tokens distinct.
        for id in self.node_ids() {
            let mut seen = std::collections::HashSet::new();
            for c in self.children(id) {
                if !seen.insert(self.nodes[c.0 as usize].token) {
                    return Err(format!("node {} has duplicate child tokens", id.0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32) -> TokenId {
        TokenId(id)
    }

    fn children_vec(tree: &TokenTree, node: NodeId) -> Vec<NodeId> {
        tree.children(node).collect()
    }

    #[test]
    fn new_tree_is_root_only() {
        let tree = TokenTree::new(t(5));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.num_speculated(), 0);
        assert_eq!(tree.token(ROOT), t(5));
        assert_eq!(tree.path_prob(ROOT), 1.0);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn add_child_links_and_orders() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.2).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        assert_eq!(children_vec(&tree, ROOT), vec![a, b]);
        assert_eq!(tree.parent(c), Some(a));
        assert_eq!(tree.depth(c), 2);
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.num_children(ROOT), 2);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn sibling_order_is_insertion_order() {
        // Verification tries siblings in draft order: the intrusive links
        // must preserve insertion order exactly.
        let mut tree = TokenTree::new(t(0));
        let ids: Vec<NodeId> = (1..=4)
            .map(|k| {
                tree.add_child(ROOT, t(k), 0.9 - 0.1 * f64::from(k))
                    .unwrap()
            })
            .collect();
        assert_eq!(children_vec(&tree, ROOT), ids);
    }

    #[test]
    fn reset_reuses_the_arena() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        tree.add_child(a, t(2), 0.3).unwrap();
        let cap = {
            tree.reset(t(9));
            tree.nodes.capacity()
        };
        assert!(cap >= 3, "capacity survives reset");
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.token(ROOT), t(9));
        assert!(tree.validate().is_ok());
        // The reset tree behaves like a fresh one.
        let a2 = tree.add_child(ROOT, t(4), 0.5).unwrap();
        assert_eq!(children_vec(&tree, ROOT), vec![a2]);
    }

    #[test]
    fn prob_must_strictly_decrease() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        assert_eq!(
            tree.add_child(a, t(2), 0.7),
            Err(TreeError::ProbNotDecreasing)
        );
        assert_eq!(
            tree.add_child(a, t(2), 0.9),
            Err(TreeError::ProbNotDecreasing)
        );
        assert!(tree.add_child(a, t(2), 0.69).is_ok());
    }

    #[test]
    fn duplicate_sibling_tokens_rejected() {
        let mut tree = TokenTree::new(t(0));
        tree.add_child(ROOT, t(1), 0.7).unwrap();
        assert_eq!(
            tree.add_child(ROOT, t(1), 0.2),
            Err(TreeError::DuplicateEdge(t(1)))
        );
    }

    #[test]
    fn missing_parent_rejected() {
        let mut tree = TokenTree::new(t(0));
        assert_eq!(
            tree.add_child(NodeId(9), t(1), 0.5),
            Err(TreeError::MissingParent(NodeId(9)))
        );
    }

    #[test]
    fn path_tokens_walk_from_root() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        assert_eq!(tree.path_tokens(c), vec![t(1), t(3)]);
        assert_eq!(tree.path_tokens(ROOT), Vec::<TokenId>::new());
        // The scratch variant clears stale contents.
        let mut buf = vec![t(99); 8];
        tree.path_tokens_into(c, &mut buf);
        assert_eq!(buf, vec![t(1), t(3)]);
    }

    #[test]
    fn expected_accepted_sums_speculated_probs() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        tree.add_child(ROOT, t(2), 0.2).unwrap();
        tree.add_child(a, t(3), 0.42).unwrap();
        assert!((tree.expected_accepted() - 1.32).abs() < 1e-12);
    }

    #[test]
    fn sorted_order_is_descending_with_stable_ties() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.5).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.5).unwrap();
        let c = tree.add_child(a, t(3), 0.4).unwrap();
        assert_eq!(tree.speculated_by_prob_desc(), vec![a, b, c]);
    }

    #[test]
    fn induced_subtree_remaps_and_validates() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.2).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        let sub = tree.induced_subtree(&[a, c]).unwrap();
        assert_eq!(sub.len(), 3);
        assert!(sub.validate().is_ok());
        assert_eq!(sub.max_depth(), 2);
        let _ = b;
    }

    #[test]
    fn induced_subtree_rejects_disconnected_selection() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        assert_eq!(
            tree.induced_subtree(&[c]).unwrap_err(),
            TreeError::MissingParent(a),
            "dense remap keeps the MissingParent error"
        );
    }

    #[test]
    fn induced_subtree_into_reuses_the_output_tree() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        let mut out = TokenTree::new(t(77));
        out.add_child(ROOT, t(78), 0.9).unwrap(); // stale contents
        let mut scratch = SubtreeScratch::default();
        tree.induced_subtree_into(&[a, c], &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.token(ROOT), t(0));
        assert!(out.validate().is_ok());
        assert_eq!(out.path_tokens(NodeId(2)), vec![t(1), t(3)]);
    }

    #[test]
    fn descending_prob_selection_is_always_connected() {
        // The Appendix B property: any prefix of the descending-prob order
        // induces a valid subtree.
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.25).unwrap();
        let c = tree.add_child(a, t(3), 0.4).unwrap();
        tree.add_child(b, t(4), 0.1).unwrap();
        tree.add_child(c, t(5), 0.3).unwrap();
        let order = tree.speculated_by_prob_desc();
        for k in 0..=order.len() {
            assert!(
                tree.induced_subtree(&order[..k]).is_ok(),
                "prefix {k} disconnected"
            );
        }
    }
}
