//! The arena-based token tree.

use simllm::TokenId;
use std::fmt;

/// Index of a node within one [`TokenTree`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The root node's id (always 0).
pub const ROOT: NodeId = NodeId(0);

/// Errors raised by tree mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Referenced parent does not exist.
    MissingParent(NodeId),
    /// Child path probability must be strictly below the parent's.
    ProbNotDecreasing,
    /// The same token already labels an edge from this parent.
    DuplicateEdge(TokenId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::MissingParent(id) => write!(f, "parent node {id:?} does not exist"),
            TreeError::ProbNotDecreasing => {
                write!(
                    f,
                    "child path probability must be strictly below its parent's"
                )
            }
            TreeError::DuplicateEdge(t) => {
                write!(f, "token {t} already labels an edge from this parent")
            }
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
struct Node {
    token: TokenId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    path_prob: f64,
    depth: u32,
}

/// A rooted token tree with per-node path probabilities.
///
/// The root holds the request's last generated token and path probability 1.
/// Each non-root node represents one speculated token; its `path_prob` is the
/// (approximated) probability that the target model accepts the entire
/// root-to-node token sequence (paper Theorem 3.1 / eq. 7).
///
/// # Invariants
///
/// * node 0 is the root, with `path_prob == 1.0` and no parent;
/// * every other node has a parent that was inserted before it;
/// * `path_prob(child) < path_prob(parent)` strictly;
/// * sibling edges carry distinct tokens.
#[derive(Debug, Clone)]
pub struct TokenTree {
    nodes: Vec<Node>,
}

impl TokenTree {
    /// Creates a tree holding only the root token.
    pub fn new(root_token: TokenId) -> Self {
        Self {
            nodes: vec![Node {
                token: root_token,
                parent: None,
                children: Vec::new(),
                path_prob: 1.0,
                depth: 0,
            }],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        ROOT
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of *speculated* tokens (excludes the root, which is already
    /// decoded). This is the `|T_i|` the paper's budget constraint counts.
    pub fn num_speculated(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Adds a speculated token under `parent`.
    ///
    /// `path_prob` is the approximated probability of the full root-to-node
    /// path; it must be strictly below the parent's.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        token: TokenId,
        path_prob: f64,
    ) -> Result<NodeId, TreeError> {
        let pidx = parent.0 as usize;
        if pidx >= self.nodes.len() {
            return Err(TreeError::MissingParent(parent));
        }
        if path_prob >= self.nodes[pidx].path_prob || path_prob < 0.0 || !path_prob.is_finite() {
            return Err(TreeError::ProbNotDecreasing);
        }
        for &c in &self.nodes[pidx].children {
            if self.nodes[c.0 as usize].token == token {
                return Err(TreeError::DuplicateEdge(token));
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        let depth = self.nodes[pidx].depth + 1;
        self.nodes.push(Node {
            token,
            parent: Some(parent),
            children: Vec::new(),
            path_prob,
            depth,
        });
        self.nodes[pidx].children.push(id);
        Ok(id)
    }

    /// Token at `node`.
    pub fn token(&self, node: NodeId) -> TokenId {
        self.nodes[node.0 as usize].token
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0 as usize].parent
    }

    /// Children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0 as usize].children
    }

    /// Approximated path probability of `node`.
    pub fn path_prob(&self, node: NodeId) -> f64 {
        self.nodes[node.0 as usize].path_prob
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> u32 {
        self.nodes[node.0 as usize].depth
    }

    /// Maximum node depth (0 for a root-only tree).
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// All node ids in insertion order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Non-root node ids sorted by descending path probability.
    ///
    /// Ties break by insertion order, keeping selection deterministic.
    pub fn speculated_by_prob_desc(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (1..self.nodes.len() as u32).map(NodeId).collect();
        ids.sort_by(|a, b| {
            let pa = self.nodes[a.0 as usize].path_prob;
            let pb = self.nodes[b.0 as usize].path_prob;
            pb.partial_cmp(&pa)
                .expect("finite probs")
                .then_with(|| a.0.cmp(&b.0))
        });
        ids
    }

    /// The token sequence along the path from (excluding) the root to `node`.
    pub fn path_tokens(&self, node: NodeId) -> Vec<TokenId> {
        let mut rev = Vec::new();
        let mut cur = node;
        while let Some(p) = self.nodes[cur.0 as usize].parent {
            rev.push(self.nodes[cur.0 as usize].token);
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// Expected number of accepted tokens if this tree were verified:
    /// `Σ_{v ∈ T, v ≠ root} f(v)` (paper Theorem 3.1).
    pub fn expected_accepted(&self) -> f64 {
        self.nodes.iter().skip(1).map(|n| n.path_prob).sum()
    }

    /// Builds the subtree induced by `keep` (which must include connected
    /// nodes only; the root is always added).
    ///
    /// Node ids are remapped; the relative order of kept nodes is preserved.
    /// Returns an error if `keep` references a node whose parent is neither
    /// the root nor also kept.
    pub fn induced_subtree(&self, keep: &[NodeId]) -> Result<TokenTree, TreeError> {
        let mut sorted: Vec<NodeId> = keep.to_vec();
        sorted.sort();
        sorted.dedup();
        let mut out = TokenTree::new(self.nodes[0].token);
        let mut remap = std::collections::HashMap::new();
        remap.insert(ROOT, ROOT);
        for id in sorted {
            if id == ROOT {
                continue;
            }
            let node = &self.nodes[id.0 as usize];
            let parent = node.parent.expect("non-root has parent");
            let new_parent = *remap.get(&parent).ok_or(TreeError::MissingParent(parent))?;
            let new_id = out.add_child(new_parent, node.token, node.path_prob)?;
            remap.insert(id, new_id);
        }
        Ok(out)
    }

    /// Checks every structural invariant; returns a description on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("tree has no root".into());
        }
        if self.nodes[0].parent.is_some() || self.nodes[0].path_prob != 1.0 {
            return Err("malformed root".into());
        }
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            let p = match n.parent {
                Some(p) if (p.0 as usize) < i => p,
                Some(_) => return Err(format!("node {i} references a later parent")),
                None => return Err(format!("non-root node {i} has no parent")),
            };
            let pn = &self.nodes[p.0 as usize];
            if n.path_prob >= pn.path_prob {
                return Err(format!(
                    "node {i} prob {} !< parent {}",
                    n.path_prob, pn.path_prob
                ));
            }
            if n.depth != pn.depth + 1 {
                return Err(format!("node {i} depth mismatch"));
            }
            if !pn.children.contains(&NodeId(i as u32)) {
                return Err(format!("node {i} missing from parent's child list"));
            }
        }
        // Sibling tokens distinct.
        for (i, n) in self.nodes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &c in &n.children {
                if !seen.insert(self.nodes[c.0 as usize].token) {
                    return Err(format!("node {i} has duplicate child tokens"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32) -> TokenId {
        TokenId(id)
    }

    #[test]
    fn new_tree_is_root_only() {
        let tree = TokenTree::new(t(5));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.num_speculated(), 0);
        assert_eq!(tree.token(ROOT), t(5));
        assert_eq!(tree.path_prob(ROOT), 1.0);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn add_child_links_and_orders() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.2).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        assert_eq!(tree.children(ROOT), &[a, b]);
        assert_eq!(tree.parent(c), Some(a));
        assert_eq!(tree.depth(c), 2);
        assert_eq!(tree.max_depth(), 2);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn prob_must_strictly_decrease() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        assert_eq!(
            tree.add_child(a, t(2), 0.7),
            Err(TreeError::ProbNotDecreasing)
        );
        assert_eq!(
            tree.add_child(a, t(2), 0.9),
            Err(TreeError::ProbNotDecreasing)
        );
        assert!(tree.add_child(a, t(2), 0.69).is_ok());
    }

    #[test]
    fn duplicate_sibling_tokens_rejected() {
        let mut tree = TokenTree::new(t(0));
        tree.add_child(ROOT, t(1), 0.7).unwrap();
        assert_eq!(
            tree.add_child(ROOT, t(1), 0.2),
            Err(TreeError::DuplicateEdge(t(1)))
        );
    }

    #[test]
    fn missing_parent_rejected() {
        let mut tree = TokenTree::new(t(0));
        assert_eq!(
            tree.add_child(NodeId(9), t(1), 0.5),
            Err(TreeError::MissingParent(NodeId(9)))
        );
    }

    #[test]
    fn path_tokens_walk_from_root() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        assert_eq!(tree.path_tokens(c), vec![t(1), t(3)]);
        assert_eq!(tree.path_tokens(ROOT), Vec::<TokenId>::new());
    }

    #[test]
    fn expected_accepted_sums_speculated_probs() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        tree.add_child(ROOT, t(2), 0.2).unwrap();
        tree.add_child(a, t(3), 0.42).unwrap();
        assert!((tree.expected_accepted() - 1.32).abs() < 1e-12);
    }

    #[test]
    fn sorted_order_is_descending_with_stable_ties() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.5).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.5).unwrap();
        let c = tree.add_child(a, t(3), 0.4).unwrap();
        assert_eq!(tree.speculated_by_prob_desc(), vec![a, b, c]);
    }

    #[test]
    fn induced_subtree_remaps_and_validates() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.2).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        let sub = tree.induced_subtree(&[a, c]).unwrap();
        assert_eq!(sub.len(), 3);
        assert!(sub.validate().is_ok());
        assert_eq!(sub.max_depth(), 2);
        let _ = b;
    }

    #[test]
    fn induced_subtree_rejects_disconnected_selection() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let c = tree.add_child(a, t(3), 0.42).unwrap();
        assert!(tree.induced_subtree(&[c]).is_err());
    }

    #[test]
    fn descending_prob_selection_is_always_connected() {
        // The Appendix B property: any prefix of the descending-prob order
        // induces a valid subtree.
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.7).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.25).unwrap();
        let c = tree.add_child(a, t(3), 0.4).unwrap();
        tree.add_child(b, t(4), 0.1).unwrap();
        tree.add_child(c, t(5), 0.3).unwrap();
        let order = tree.speculated_by_prob_desc();
        for k in 0..=order.len() {
            assert!(
                tree.induced_subtree(&order[..k]).is_ok(),
                "prefix {k} disconnected"
            );
        }
    }
}
