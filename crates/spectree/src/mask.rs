//! Tree-attention topology masks.
//!
//! Tree verification feeds all speculated tokens to the target model in one
//! forward pass; the attention kernel must restrict each token to attend only
//! to its *ancestors* within the tree (plus the committed prefix). Real
//! systems (SpecInfer, Medusa, FlashInfer's tree kernels) encode this as a
//! per-token ancestor bitmask. This module reproduces that layout — it is the
//! contract between the scheduler and the (here: simulated) kernel, and its
//! size accounting feeds the latency model.

use crate::tree::{NodeId, TokenTree};

/// Ancestor bitmask layout for a token tree.
///
/// Nodes are laid out in insertion order (the order the scheduler submits
/// them to the kernel). `mask[i]` has bit `j` set iff node `j` is an ancestor
/// of node `i` or `i == j`; every token also implicitly attends to the whole
/// committed prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeMask {
    masks: Vec<u128>,
    len: usize,
}

/// Maximum tree size representable by the packed mask.
pub const MAX_MASK_NODES: usize = 128;

impl TreeMask {
    /// Builds the ancestor mask for `tree`.
    ///
    /// # Panics
    ///
    /// Panics if the tree exceeds [`MAX_MASK_NODES`] nodes — larger trees
    /// would use a segmented mask in a real kernel, but no AdaServe
    /// configuration produces per-request trees anywhere near this bound
    /// (budgets are tens of tokens per request).
    pub fn build(tree: &TokenTree) -> Self {
        let n = tree.len();
        assert!(
            n <= MAX_MASK_NODES,
            "tree too large for packed mask ({n} nodes)"
        );
        let mut masks = vec![0u128; n];
        for id in tree.node_ids() {
            let i = id.0 as usize;
            let mut m = 1u128 << i;
            if let Some(p) = tree.parent(id) {
                m |= masks[p.0 as usize];
            }
            masks[i] = m;
        }
        Self { masks, len: n }
    }

    /// Number of tokens (rows) in the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether token `i` may attend to token `j`.
    pub fn attends(&self, i: NodeId, j: NodeId) -> bool {
        self.masks[i.0 as usize] & (1u128 << j.0) != 0
    }

    /// The raw bitmask row for token `i`.
    pub fn row(&self, i: NodeId) -> u128 {
        self.masks[i.0 as usize]
    }

    /// Total attention pairs allowed (Σ popcount) — the kernel's work size.
    pub fn attention_pairs(&self) -> u64 {
        self.masks.iter().map(|m| u64::from(m.count_ones())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ROOT;
    use simllm::TokenId;

    fn t(id: u32) -> TokenId {
        TokenId(id)
    }

    #[test]
    fn chain_mask_is_lower_triangular() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.5).unwrap();
        let b = tree.add_child(a, t(2), 0.25).unwrap();
        let mask = TreeMask::build(&tree);
        assert!(mask.attends(b, a));
        assert!(mask.attends(b, ROOT));
        assert!(mask.attends(a, ROOT));
        assert!(!mask.attends(a, b));
        assert!(!mask.attends(ROOT, a));
    }

    #[test]
    fn siblings_do_not_attend_to_each_other() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.5).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.3).unwrap();
        let mask = TreeMask::build(&tree);
        assert!(!mask.attends(a, b));
        assert!(!mask.attends(b, a));
        assert!(mask.attends(a, a));
    }

    #[test]
    fn attention_pairs_count_path_lengths() {
        // Root (1) + child (2) + grandchild (3) = 6 pairs.
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.5).unwrap();
        tree.add_child(a, t(2), 0.25).unwrap();
        let mask = TreeMask::build(&tree);
        assert_eq!(mask.attention_pairs(), 6);
    }

    #[test]
    fn every_node_attends_to_itself_and_root() {
        let mut tree = TokenTree::new(t(0));
        let a = tree.add_child(ROOT, t(1), 0.5).unwrap();
        let b = tree.add_child(ROOT, t(2), 0.4).unwrap();
        let c = tree.add_child(b, t(3), 0.2).unwrap();
        let mask = TreeMask::build(&tree);
        for id in [a, b, c] {
            assert!(mask.attends(id, id));
            assert!(mask.attends(id, ROOT));
        }
    }
}
