//! Beam-search construction of candidate token trees (paper §4.3, step 1).
//!
//! The speculation phase runs the draft model for `d` parallel decoding steps
//! with beam width `w`, producing a candidate tree per request. Theorem 4.1
//! guarantees that a beam of width `B` (the token budget) and depth `D_opt`
//! covers the optimal draft tree; in practice AdaServe tunes `(d, w)` to much
//! smaller values via adaptive control, trading coverage for speculation
//! cost.
//!
//! Candidate-tree layout mirrors the paper: the first layer holds the top-`w`
//! children of the root, and every subsequent layer holds the global top-`w`
//! among all expansions of the previous layer's beam (classic beam search on
//! approximated path probabilities).

use crate::tree::{NodeId, TokenTree};
use simllm::{Lm, LmContext, TokenId};

/// Speculation parameters: tree depth and beam width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecParams {
    /// Number of draft decoding steps (candidate-tree depth).
    pub depth: u32,
    /// Beam width per step.
    pub width: u32,
}

impl SpecParams {
    /// Creates parameters, validating both are at least 1.
    pub fn new(depth: u32, width: u32) -> Self {
        assert!(depth >= 1 && width >= 1, "depth and width must be >= 1");
        Self { depth, width }
    }

    /// Upper bound on candidate-tree size (excluding the root).
    pub fn max_nodes(&self) -> u32 {
        self.depth * self.width
    }
}

/// A candidate token tree produced by the speculation phase.
#[derive(Debug, Clone)]
pub struct CandidateTree {
    tree: TokenTree,
    /// Beam (node ids) per layer, layer 0 = children of root.
    layers: Vec<Vec<NodeId>>,
    /// Draft-model tokens decoded while building this tree (cost accounting).
    draft_tokens_processed: u32,
}

impl CandidateTree {
    /// Runs `params.depth` beam-search steps of the draft model `lm`.
    ///
    /// `ctx` must end at the request's last generated token, which becomes
    /// the candidate tree's root.
    pub fn speculate(lm: &dyn Lm, ctx: &LmContext<'_>, params: SpecParams) -> Self {
        let root_token = *ctx.tokens.last().expect("context must not be empty");
        let mut tree = TokenTree::new(root_token);
        let mut layers: Vec<Vec<NodeId>> = Vec::with_capacity(params.depth as usize);
        let mut draft_tokens_processed = 0u32;
        let mut scratch = Vec::new();

        // Beam of nodes expanded at the current step (starts at the root).
        let mut beam = vec![tree.root()];
        for _step in 0..params.depth {
            // Expand every beam node; gather (parent, token, path_prob).
            let mut expansions: Vec<(NodeId, TokenId, f64)> = Vec::new();
            for &node in &beam {
                let path = tree.path_tokens(node);
                let dist = lm.next_dist_extended(ctx, &path, &mut scratch);
                draft_tokens_processed += 1;
                let parent_prob = tree.path_prob(node);
                for &(token, p) in dist.top_k(params.width as usize) {
                    expansions.push((node, token, parent_prob * p));
                }
            }
            // Keep the global top-w expansions (stable on ties).
            expansions.sort_by(|a, b| {
                b.2.partial_cmp(&a.2)
                    .expect("finite probs")
                    .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
            });
            expansions.truncate(params.width as usize);
            if expansions.is_empty() {
                break;
            }
            let mut layer = Vec::with_capacity(expansions.len());
            for (parent, token, prob) in expansions {
                // Path probs strictly decrease because edge probs are < 1;
                // guard against degenerate prob-1 edges with a tiny epsilon.
                let prob = prob.min(tree.path_prob(parent) * (1.0 - 1e-12));
                let id = tree
                    .add_child(parent, token, prob)
                    .expect("beam expansion preserves tree invariants");
                layer.push(id);
            }
            beam = layer.clone();
            layers.push(layer);
        }

        Self {
            tree,
            layers,
            draft_tokens_processed,
        }
    }

    /// The underlying token tree (root + all candidate nodes).
    pub fn tree(&self) -> &TokenTree {
        &self.tree
    }

    /// Consumes self, returning the token tree.
    pub fn into_tree(self) -> TokenTree {
        self.tree
    }

    /// Beam node ids per layer.
    pub fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }

    /// Achieved depth (may be below the requested depth if beams emptied).
    pub fn depth(&self) -> u32 {
        self.layers.len() as u32
    }

    /// Draft-model tokens decoded during construction (for cost accounting:
    /// each beam node expansion is one draft-decoded token).
    pub fn draft_tokens_processed(&self) -> u32 {
        self.draft_tokens_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::{ContentClass, ModelPair};

    fn ctx_tokens() -> Vec<TokenId> {
        vec![TokenId(11), TokenId(22), TokenId(33)]
    }

    fn speculate(depth: u32, width: u32) -> CandidateTree {
        let pair = ModelPair::calibrated(5);
        let tokens = ctx_tokens();
        let ctx = LmContext::new(9, ContentClass::Chat, &tokens);
        CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(depth, width))
    }

    #[test]
    fn tree_shape_matches_beam_parameters() {
        let cand = speculate(3, 2);
        assert_eq!(cand.depth(), 3);
        assert_eq!(cand.tree().num_speculated(), 6);
        for layer in cand.layers() {
            assert_eq!(layer.len(), 2);
        }
        cand.tree().validate().expect("valid candidate tree");
    }

    #[test]
    fn first_layer_children_of_root() {
        let cand = speculate(2, 3);
        for &id in &cand.layers()[0] {
            assert_eq!(cand.tree().parent(id), Some(cand.tree().root()));
        }
    }

    #[test]
    fn layer_probs_are_monotone_decreasing_across_depth() {
        let cand = speculate(4, 2);
        let best_per_layer: Vec<f64> = cand
            .layers()
            .iter()
            .map(|l| {
                l.iter()
                    .map(|&id| cand.tree().path_prob(id))
                    .fold(f64::MIN, f64::max)
            })
            .collect();
        for w in best_per_layer.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "layer probs increased: {w:?}");
        }
    }

    #[test]
    fn draft_cost_is_one_token_per_beam_node() {
        let cand = speculate(3, 2);
        // Step 1 expands the root (1 token); steps 2..3 expand 2 nodes each.
        assert_eq!(cand.draft_tokens_processed(), 1 + 2 + 2);
    }

    #[test]
    fn wider_beams_cover_no_less_probability_mass() {
        let narrow = speculate(3, 1);
        let wide = speculate(3, 4);
        assert!(wide.tree().expected_accepted() >= narrow.tree().expected_accepted());
    }

    #[test]
    fn determinism() {
        let a = speculate(3, 2);
        let b = speculate(3, 2);
        let ids_a: Vec<_> = a.tree().node_ids().map(|i| a.tree().token(i)).collect();
        let ids_b: Vec<_> = b.tree().node_ids().map(|i| b.tree().token(i)).collect();
        assert_eq!(ids_a, ids_b);
    }
}
