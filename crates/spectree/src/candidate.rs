//! Beam-search construction of candidate token trees (paper §4.3, step 1).
//!
//! The speculation phase runs the draft model for `d` parallel decoding steps
//! with beam width `w`, producing a candidate tree per request. Theorem 4.1
//! guarantees that a beam of width `B` (the token budget) and depth `D_opt`
//! covers the optimal draft tree; in practice AdaServe tunes `(d, w)` to much
//! smaller values via adaptive control, trading coverage for speculation
//! cost.
//!
//! Candidate-tree layout mirrors the paper: the first layer holds the top-`w`
//! children of the root, and every subsequent layer holds the global top-`w`
//! among all expansions of the previous layer's beam (classic beam search on
//! approximated path probabilities). Because each layer's nodes are inserted
//! consecutively, layers are stored as dense id *ranges* rather than
//! per-layer `Vec`s.
//!
//! The construction itself is allocation-free at steady state: all transient
//! buffers live in a caller-owned [`SpeculateScratch`], draft distributions
//! arrive as shared [`simllm::Lm::next_dist_extended_arc`] handles, and the
//! per-step top-`w` cut uses a partial selection instead of sorting every
//! expansion.

use crate::tree::{NodeId, TokenTree};
use simllm::{Lm, LmContext, TokenId};
use std::ops::Range;

/// Speculation parameters: tree depth and beam width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecParams {
    /// Number of draft decoding steps (candidate-tree depth).
    pub depth: u32,
    /// Beam width per step.
    pub width: u32,
}

impl SpecParams {
    /// Creates parameters, validating both are at least 1.
    pub fn new(depth: u32, width: u32) -> Self {
        assert!(depth >= 1 && width >= 1, "depth and width must be >= 1");
        Self { depth, width }
    }

    /// Upper bound on candidate-tree size (excluding the root).
    pub fn max_nodes(&self) -> u32 {
        self.depth * self.width
    }
}

/// Reusable buffers for [`CandidateTree::speculate_with`].
///
/// One scratch per engine turns beam search's per-step allocations
/// (expansion list, path buffer, extended-context buffer) into buffer
/// reuse; [`SpeculateScratch::grow_events`] counts how often any buffer
/// actually had to grow, which drops to zero once the engine warms up.
#[derive(Debug, Default)]
pub struct SpeculateScratch {
    /// Candidate (parent, token, path_prob) expansions of one beam step.
    expansions: Vec<(NodeId, TokenId, f64)>,
    /// Path-token buffer for [`TokenTree::path_tokens_into`].
    path: Vec<TokenId>,
    /// Extended-context buffer for `top_w_extended`.
    ext: Vec<TokenId>,
    /// Top-`w` head entries of one draft distribution.
    topw: Vec<(TokenId, f64)>,
    /// Cumulative buffer-growth events (see [`SpeculateScratch::grow_events`]).
    grow_events: u64,
}

impl SpeculateScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// How often any internal buffer had to grow its allocation. A warmed
    /// engine should see this stay flat across iterations — the signal
    /// the hot loop is allocation-free at steady state.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    fn note_capacity(&mut self, before: usize) {
        if self.capacity_sum() > before {
            self.grow_events += 1;
        }
    }

    fn capacity_sum(&self) -> usize {
        self.expansions.capacity()
            + self.path.capacity()
            + self.ext.capacity()
            + self.topw.capacity()
    }
}

/// A candidate token tree produced by the speculation phase.
#[derive(Debug, Clone)]
pub struct CandidateTree {
    tree: TokenTree,
    /// Beam layers as node-id ranges (layer nodes are inserted
    /// consecutively); layer 0 = children of the root.
    layers: Vec<Range<u32>>,
    /// Draft-model tokens decoded while building this tree (cost accounting).
    draft_tokens_processed: u32,
}

impl CandidateTree {
    /// An empty (root-only) candidate tree, for pooling with
    /// [`CandidateTree::speculate_with`].
    pub fn empty() -> Self {
        Self {
            tree: TokenTree::new(TokenId(0)),
            layers: Vec::new(),
            draft_tokens_processed: 0,
        }
    }

    /// Runs `params.depth` beam-search steps of the draft model `lm`.
    ///
    /// `ctx` must end at the request's last generated token, which becomes
    /// the candidate tree's root.
    pub fn speculate(lm: &dyn Lm, ctx: &LmContext<'_>, params: SpecParams) -> Self {
        let mut out = Self::empty();
        let mut scratch = SpeculateScratch::new();
        out.speculate_with(lm, ctx, params, &mut scratch);
        out
    }

    /// Pooled variant of [`CandidateTree::speculate`]: rebuilds `self` in
    /// place, reusing the tree arena, the layer list and the caller's
    /// [`SpeculateScratch`] — zero allocations once all buffers are warm.
    pub fn speculate_with(
        &mut self,
        lm: &dyn Lm,
        ctx: &LmContext<'_>,
        params: SpecParams,
        scratch: &mut SpeculateScratch,
    ) {
        let root_token = *ctx.tokens.last().expect("context must not be empty");
        self.tree.reset(root_token);
        self.layers.clear();
        self.draft_tokens_processed = 0;
        let cap_before = scratch.capacity_sum();

        // Beam of nodes expanded at the current step: the previous layer's
        // id range (the root alone before the first step).
        let mut beam: Range<u32> = 0..1;
        for _step in 0..params.depth {
            // Expand every beam node; gather (parent, token, path_prob).
            scratch.expansions.clear();
            for node in beam.clone().map(NodeId) {
                self.tree.path_tokens_into(node, &mut scratch.path);
                lm.top_w_extended(
                    ctx,
                    &scratch.path,
                    params.width as usize,
                    &mut scratch.ext,
                    &mut scratch.topw,
                );
                self.draft_tokens_processed += 1;
                let parent_prob = self.tree.path_prob(node);
                for &(token, p) in &scratch.topw {
                    scratch.expansions.push((node, token, parent_prob * p));
                }
            }
            // Keep the global top-w expansions (stable on ties). The
            // comparator is a total order over distinct (parent, token)
            // pairs, so partial selection + unstable sort of the survivors
            // reproduces the full stable sort's prefix exactly.
            let w = params.width as usize;
            let cmp = |a: &(NodeId, TokenId, f64), b: &(NodeId, TokenId, f64)| {
                b.2.partial_cmp(&a.2)
                    .expect("finite probs")
                    .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
            };
            if scratch.expansions.len() > w {
                scratch.expansions.select_nth_unstable_by(w - 1, cmp);
                scratch.expansions.truncate(w);
            }
            scratch.expansions.sort_unstable_by(cmp);
            if scratch.expansions.is_empty() {
                break;
            }
            let layer_start = self.tree.len() as u32;
            for &(parent, token, prob) in &scratch.expansions {
                // Path probs strictly decrease because edge probs are < 1;
                // guard against degenerate prob-1 edges with a tiny epsilon.
                let prob = prob.min(self.tree.path_prob(parent) * (1.0 - 1e-12));
                self.tree
                    .add_child(parent, token, prob)
                    .expect("beam expansion preserves tree invariants");
            }
            let layer = layer_start..self.tree.len() as u32;
            beam = layer.clone();
            self.layers.push(layer);
        }
        scratch.note_capacity(cap_before);
    }

    /// The underlying token tree (root + all candidate nodes).
    pub fn tree(&self) -> &TokenTree {
        &self.tree
    }

    /// Consumes self, returning the token tree.
    pub fn into_tree(self) -> TokenTree {
        self.tree
    }

    /// Beam node-id ranges per layer (layer nodes are dense).
    pub fn layers(&self) -> &[Range<u32>] {
        &self.layers
    }

    /// The node ids of layer `k` (0 = children of the root).
    pub fn layer_nodes(&self, k: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.layers[k].clone().map(NodeId)
    }

    /// Achieved depth (may be below the requested depth if beams emptied).
    pub fn depth(&self) -> u32 {
        self.layers.len() as u32
    }

    /// Draft-model tokens decoded during construction (for cost accounting:
    /// each beam node expansion is one draft-decoded token).
    pub fn draft_tokens_processed(&self) -> u32 {
        self.draft_tokens_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::{ContentClass, ModelPair};

    fn ctx_tokens() -> Vec<TokenId> {
        vec![TokenId(11), TokenId(22), TokenId(33)]
    }

    fn speculate(depth: u32, width: u32) -> CandidateTree {
        let pair = ModelPair::calibrated(5);
        let tokens = ctx_tokens();
        let ctx = LmContext::new(9, ContentClass::Chat, &tokens);
        CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(depth, width))
    }

    #[test]
    fn tree_shape_matches_beam_parameters() {
        let cand = speculate(3, 2);
        assert_eq!(cand.depth(), 3);
        assert_eq!(cand.tree().num_speculated(), 6);
        for layer in cand.layers() {
            assert_eq!(layer.len(), 2);
        }
        cand.tree().validate().expect("valid candidate tree");
    }

    #[test]
    fn first_layer_children_of_root() {
        let cand = speculate(2, 3);
        for id in cand.layer_nodes(0) {
            assert_eq!(cand.tree().parent(id), Some(cand.tree().root()));
        }
    }

    #[test]
    fn layer_probs_are_monotone_decreasing_across_depth() {
        let cand = speculate(4, 2);
        let best_per_layer: Vec<f64> = (0..cand.layers().len())
            .map(|k| {
                cand.layer_nodes(k)
                    .map(|id| cand.tree().path_prob(id))
                    .fold(f64::MIN, f64::max)
            })
            .collect();
        for w in best_per_layer.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "layer probs increased: {w:?}");
        }
    }

    #[test]
    fn draft_cost_is_one_token_per_beam_node() {
        let cand = speculate(3, 2);
        // Step 1 expands the root (1 token); steps 2..3 expand 2 nodes each.
        assert_eq!(cand.draft_tokens_processed(), 1 + 2 + 2);
    }

    #[test]
    fn wider_beams_cover_no_less_probability_mass() {
        let narrow = speculate(3, 1);
        let wide = speculate(3, 4);
        assert!(wide.tree().expected_accepted() >= narrow.tree().expected_accepted());
    }

    #[test]
    fn determinism() {
        let a = speculate(3, 2);
        let b = speculate(3, 2);
        let ids_a: Vec<_> = a.tree().node_ids().map(|i| a.tree().token(i)).collect();
        let ids_b: Vec<_> = b.tree().node_ids().map(|i| b.tree().token(i)).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn pooled_speculation_matches_fresh_and_reuses_buffers() {
        let pair = ModelPair::calibrated(5);
        let tokens = ctx_tokens();
        let ctx = LmContext::new(9, ContentClass::Chat, &tokens);
        let params = SpecParams::new(4, 3);
        let fresh = CandidateTree::speculate(pair.draft(), &ctx, params);

        let mut pooled = CandidateTree::empty();
        let mut scratch = SpeculateScratch::new();
        // Warm the pool on a different context first, then rebuild.
        let warm_tokens = vec![TokenId(1), TokenId(2)];
        let warm_ctx = LmContext::new(3, ContentClass::News, &warm_tokens);
        pooled.speculate_with(pair.draft(), &warm_ctx, params, &mut scratch);
        let grown = scratch.grow_events();
        pooled.speculate_with(pair.draft(), &ctx, params, &mut scratch);

        let fresh_nodes: Vec<_> = fresh
            .tree()
            .node_ids()
            .map(|i| (fresh.tree().token(i), fresh.tree().path_prob(i)))
            .collect();
        let pooled_nodes: Vec<_> = pooled
            .tree()
            .node_ids()
            .map(|i| (pooled.tree().token(i), pooled.tree().path_prob(i)))
            .collect();
        assert_eq!(fresh_nodes, pooled_nodes, "pooled rebuild is identical");
        assert_eq!(fresh.layers(), pooled.layers());
        assert_eq!(
            scratch.grow_events(),
            grown,
            "no buffer growth once the scratch is warm"
        );
    }
}
