//! Token-tree machinery for speculative decoding.
//!
//! This crate implements the data structures and algorithms the AdaServe
//! paper builds on: draft token trees (§2, Fig. 4), beam-search candidate
//! tree construction (§4.3 step 1, Theorem 4.1), and tree-based verification
//! (§4.3 step 4, following SpecInfer-style multi-branch verification).
//!
//! A [`TokenTree`] is rooted at the request's last generated token; every
//! other node is a speculated token whose *path probability* estimates the
//! chance the target model accepts the whole root-to-node path (paper eq. 7:
//! approximated by the product of draft-model probabilities along the path).
//!
//! The key structural invariant — used by the paper's Appendix B connectivity
//! proof — is that a node's path probability is strictly smaller than its
//! parent's, so selecting nodes in descending path-probability order always
//! yields a connected subtree.
//!
//! # Modules
//!
//! * [`tree`] — the arena-based token tree.
//! * [`candidate`] — beam-search construction of candidate trees.
//! * [`verify`] — target-model verification of a draft tree.
//! * [`mask`] — tree-attention topology masks (the kernel-facing layout).

pub mod candidate;
pub mod mask;
pub mod tree;
pub mod verify;

pub use candidate::{CandidateTree, SpecParams, SpeculateScratch};
pub use mask::TreeMask;
pub use tree::{NodeId, SubtreeScratch, TokenTree, TreeError};
pub use verify::{
    verify_tree, verify_tree_rejection, verify_tree_with, RejectionOutcome, VerifyMode,
    VerifyOutcome, VerifyScratch,
};
