//! Target-model verification of a draft token tree (paper §4.3, step 4).
//!
//! All tree tokens are verified "in parallel" (one forward pass — the cost is
//! charged by the serving layer); logically, verification walks the tree from
//! the root: at each accepted node the target model produces its own next
//! token, and if that token labels one of the node's child edges the walk
//! descends, otherwise it stops. The target-produced token at the stopping
//! point is emitted as the *bonus/correction* token, so every verification
//! yields at least one new token — exactly the lossless-generation guarantee
//! of speculative decoding (§2).
//!
//! This is the multi-branch verification of SpecInfer \[32\]: with the target
//! token sampled from `p(·|path)`, the probability of descending into child
//! `c` is `p(c)`, which makes the expected number of accepted tokens equal to
//! `Σ_{v∈T} f(v)` with `f` the true path probability — the identity the
//! paper's Theorem 3.1 builds the whole optimization on.

use crate::tree::{NodeId, TokenTree};
use simllm::{sample_seeded, Lm, LmContext, TokenId};

/// How the target model picks its token at each verification step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Sample from the target distribution, seeded by (stream, position).
    ///
    /// Statistically faithful to multinomial speculative decoding and
    /// reproducible across engines: the target's token at position `k` of a
    /// request is a pure function of the request, not of the engine serving
    /// it.
    Stochastic,
    /// Take the argmax of the target distribution (greedy decoding).
    Greedy,
}

/// Outcome statistics of rejection-sampling verification (see
/// [`verify_tree_rejection`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectionOutcome {
    /// Tokens of the accepted path, root-to-leaf order.
    pub accepted_tokens: Vec<TokenId>,
    /// Correction token drawn from the final residual (or the target
    /// distribution when the walk ran off a leaf).
    pub bonus_token: TokenId,
    /// Number of accept/reject coin flips performed.
    pub trials: u32,
}

impl RejectionOutcome {
    /// Accepted speculated tokens (excludes the bonus token).
    pub fn num_accepted(&self) -> usize {
        self.accepted_tokens.len()
    }
}

/// Verifies `tree` with SpecTr/SpecInfer-style *rejection sampling*.
///
/// At each node, siblings are tried in tree order: child `c` (drafted from
/// `q`) is accepted with probability `min(1, p(c)/q(c))` where `p` is the
/// current (residual-updated) target distribution; on rejection the residual
/// `norm(max(p − q, 0))` replaces `p` and the next sibling is tried. If all
/// siblings are rejected, the correction token is drawn from the final
/// residual — the construction that makes the emitted distribution exactly
/// the target's (lossless speculative *sampling*, Leviathan et al. \[23\],
/// multi-branch per SpecInfer \[32\]).
///
/// Unlike [`verify_tree`], the emitted stream depends on the draft model, so
/// engines using different speculation strategies emit different (but
/// identically distributed) streams. The default engines therefore use
/// [`VerifyMode::Stochastic`]; this mode exists for statistical fidelity
/// studies and is exercised by the test suite and benches.
pub fn verify_tree_rejection(
    target: &dyn Lm,
    draft: &dyn Lm,
    ctx: &LmContext<'_>,
    tree: &TokenTree,
    position_offset: u64,
) -> RejectionOutcome {
    let mut scratch = Vec::new();
    let mut path = Vec::new();
    let mut accepted_tokens: Vec<TokenId> = Vec::new();
    let mut current = tree.root();
    let mut trials = 0u32;
    loop {
        tree.path_tokens_into(current, &mut path);
        let mut p = (*target.next_dist_extended_arc(ctx, &path, &mut scratch)).clone();
        let q = draft.next_dist_extended_arc(ctx, &path, &mut scratch);
        let mut accepted_child = None;
        for (rank, child) in tree.children(current).enumerate() {
            let token = tree.token(child);
            let accept_prob = if q.prob(token) > 0.0 {
                (p.prob(token) / q.prob(token)).min(1.0)
            } else {
                1.0
            };
            let u = simllm::hash::unit_f64(simllm::hash::combine(
                ctx.stream_seed ^ 0x16EC_7103,
                (position_offset + accepted_tokens.len() as u64) * 64 + rank as u64,
            ));
            trials += 1;
            if u < accept_prob {
                accepted_child = Some(child);
                break;
            }
            // Rejected: move target mass to the residual and try the next
            // sibling.
            match p.residual(&q) {
                Some(r) => p = r,
                None => break,
            }
        }
        match accepted_child {
            Some(child) => {
                accepted_tokens.push(tree.token(child));
                current = child;
            }
            None => {
                let bonus = sample_seeded(
                    &p,
                    ctx.stream_seed ^ 0xB0B0,
                    position_offset + accepted_tokens.len() as u64,
                );
                return RejectionOutcome {
                    accepted_tokens,
                    bonus_token: bonus,
                    trials,
                };
            }
        }
    }
}

/// Outcome of verifying one draft token tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Node ids of the accepted path, in root-to-leaf order (root excluded).
    pub accepted_nodes: Vec<NodeId>,
    /// Tokens of the accepted path (same order).
    pub accepted_tokens: Vec<TokenId>,
    /// The bonus/correction token produced by the target model itself.
    pub bonus_token: TokenId,
}

impl VerifyOutcome {
    /// Number of *speculated* tokens accepted (excludes the bonus token).
    pub fn num_accepted(&self) -> usize {
        self.accepted_tokens.len()
    }

    /// Total tokens the request advances by (accepted + bonus).
    pub fn total_advance(&self) -> usize {
        self.accepted_tokens.len() + 1
    }
}

/// Reusable buffers for [`verify_tree_with`] (the extended-context and
/// path-token scratch the tree walk fills once per accepted node).
#[derive(Debug, Default)]
pub struct VerifyScratch {
    ext: Vec<TokenId>,
    path: Vec<TokenId>,
}

impl VerifyScratch {
    /// Sum of buffer capacities (allocation-discipline probe).
    pub fn capacity_sum(&self) -> usize {
        self.ext.capacity() + self.path.capacity()
    }
}

/// Verifies `tree` with the `target` model.
///
/// `ctx` is the request context ending at the tree's root token;
/// `position_offset` is the request's current generated-token position (used
/// to seed stochastic target sampling so outcomes are engine-independent).
pub fn verify_tree(
    target: &dyn Lm,
    ctx: &LmContext<'_>,
    tree: &TokenTree,
    position_offset: u64,
    mode: VerifyMode,
) -> VerifyOutcome {
    verify_tree_with(
        target,
        ctx,
        tree,
        position_offset,
        mode,
        &mut VerifyScratch::default(),
    )
}

/// Scratch-buffer variant of [`verify_tree`]: the walk's transient
/// buffers come from `scratch`, leaving only the outcome's own (small)
/// accepted-path vectors as per-call allocations.
pub fn verify_tree_with(
    target: &dyn Lm,
    ctx: &LmContext<'_>,
    tree: &TokenTree,
    position_offset: u64,
    mode: VerifyMode,
    scratch: &mut VerifyScratch,
) -> VerifyOutcome {
    debug_assert_eq!(
        ctx.tokens.last().copied(),
        Some(tree.token(tree.root())),
        "context must end at the tree root token"
    );
    let mut accepted_nodes = Vec::new();
    let mut accepted_tokens = Vec::new();
    let mut current = tree.root();
    loop {
        tree.path_tokens_into(current, &mut scratch.path);
        let dist = target.next_dist_extended_arc(ctx, &scratch.path, &mut scratch.ext);
        let target_token = match mode {
            VerifyMode::Greedy => dist.top1(),
            VerifyMode::Stochastic => sample_seeded(
                &dist,
                ctx.stream_seed,
                position_offset + accepted_tokens.len() as u64,
            ),
        };
        let next = tree
            .children(current)
            .find(|&c| tree.token(c) == target_token);
        match next {
            Some(child) => {
                accepted_nodes.push(child);
                accepted_tokens.push(target_token);
                current = child;
            }
            None => {
                return VerifyOutcome {
                    accepted_nodes,
                    accepted_tokens,
                    bonus_token: target_token,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandidateTree, SpecParams};
    use simllm::{ContentClass, ModelPair};

    fn setup() -> (ModelPair, Vec<TokenId>) {
        (
            ModelPair::calibrated(31),
            vec![TokenId(7), TokenId(8), TokenId(9)],
        )
    }

    #[test]
    fn accepted_path_is_prefix_closed() {
        let (pair, tokens) = setup();
        let ctx = LmContext::new(4, ContentClass::Chat, &tokens);
        let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(4, 3));
        let out = verify_tree(pair.target(), &ctx, cand.tree(), 0, VerifyMode::Stochastic);
        // Each accepted node's parent is the previous accepted node (or root).
        let mut prev = cand.tree().root();
        for &n in &out.accepted_nodes {
            assert_eq!(cand.tree().parent(n), Some(prev));
            prev = n;
        }
        assert_eq!(out.total_advance(), out.num_accepted() + 1);
    }

    #[test]
    fn greedy_verification_accepts_greedy_chain() {
        // When the draft equals the target (divergence 0) and both act
        // greedily, every speculated token on the greedy chain is accepted.
        let pair = ModelPair::new(simllm::TargetLmConfig::default_with_seed(3), 0.0);
        let tokens = vec![TokenId(5), TokenId(6)];
        let ctx = LmContext::new(2, ContentClass::Code, &tokens);
        let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(5, 1));
        let out = verify_tree(pair.target(), &ctx, cand.tree(), 0, VerifyMode::Greedy);
        assert_eq!(out.num_accepted(), 5, "entire greedy chain accepted");
    }

    #[test]
    fn root_only_tree_yields_bonus_token() {
        let (pair, tokens) = setup();
        let ctx = LmContext::new(4, ContentClass::Chat, &tokens);
        let tree = TokenTree::new(*tokens.last().unwrap());
        let out = verify_tree(pair.target(), &ctx, &tree, 0, VerifyMode::Stochastic);
        assert_eq!(out.num_accepted(), 0);
        assert_eq!(out.total_advance(), 1);
    }

    #[test]
    fn stochastic_outcome_is_reproducible() {
        let (pair, tokens) = setup();
        let ctx = LmContext::new(4, ContentClass::Chat, &tokens);
        let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(3, 2));
        let a = verify_tree(pair.target(), &ctx, cand.tree(), 10, VerifyMode::Stochastic);
        let b = verify_tree(pair.target(), &ctx, cand.tree(), 10, VerifyMode::Stochastic);
        assert_eq!(a, b);
    }

    #[test]
    fn rejection_chain_acceptance_matches_overlap() {
        // For a width-1 chain, the first-token acceptance probability under
        // rejection sampling is Σ_x min(p(x), q(x)) — check empirically.
        let pair = ModelPair::calibrated(55);
        let trials = 600u64;
        let mut accepted_first = 0u64;
        let mut overlap_sum = 0.0;
        let mut scratch = Vec::new();
        for s in 0..trials {
            let tokens = vec![TokenId((s % 80 + 2) as u32), TokenId(5)];
            let ctx = LmContext::new(s, ContentClass::Chat, &tokens);
            let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(1, 1));
            let p = pair.target().next_dist_extended(&ctx, &[], &mut scratch);
            let q = pair.draft().next_dist_extended(&ctx, &[], &mut scratch);
            // Acceptance of the drafted top-1 token x* is min(1, p/q) at x*.
            let x = cand.tree().token(
                cand.tree()
                    .children(cand.tree().root())
                    .next()
                    .expect("root has a child"),
            );
            overlap_sum += (p.prob(x) / q.prob(x)).min(1.0) / trials as f64;
            let out = verify_tree_rejection(pair.target(), pair.draft(), &ctx, cand.tree(), s);
            if out.num_accepted() >= 1 {
                accepted_first += 1;
            }
        }
        let measured = accepted_first as f64 / trials as f64;
        assert!(
            (measured - overlap_sum).abs() < 0.07,
            "measured {measured:.3} vs expected {overlap_sum:.3}"
        );
    }

    #[test]
    fn rejection_verification_is_reproducible_and_valid() {
        let (pair, tokens) = setup();
        let ctx = LmContext::new(4, ContentClass::Code, &tokens);
        let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(4, 3));
        let a = verify_tree_rejection(pair.target(), pair.draft(), &ctx, cand.tree(), 3);
        let b = verify_tree_rejection(pair.target(), pair.draft(), &ctx, cand.tree(), 3);
        assert_eq!(a, b);
        assert!(a.trials >= a.num_accepted() as u32);
        // Accepted tokens must form a root path of the tree.
        let mut cur = cand.tree().root();
        for &t in &a.accepted_tokens {
            let child = cand
                .tree()
                .children(cur)
                .find(|&c| cand.tree().token(c) == t)
                .expect("accepted token labels a child edge");
            cur = child;
        }
    }

    #[test]
    fn rejection_accepts_everything_when_draft_equals_target() {
        let pair = ModelPair::new(simllm::TargetLmConfig::default_with_seed(3), 0.0);
        let tokens = vec![TokenId(5), TokenId(6)];
        let ctx = LmContext::new(2, ContentClass::Code, &tokens);
        // Width-1 chain drafted greedily from q = p: acceptance prob is
        // min(1, p/q) = 1 at every node.
        let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(5, 1));
        let out = verify_tree_rejection(pair.target(), pair.draft(), &ctx, cand.tree(), 0);
        assert_eq!(out.num_accepted(), 5);
    }

    #[test]
    fn empirical_acceptance_tracks_expected_accepted() {
        // Verifies Theorem 3.1 empirically: mean accepted ≈ Σ f(v) with f
        // computed from *target* probabilities along the paths.
        let pair = ModelPair::calibrated(77);
        let mut mean_measured = 0.0;
        let mut mean_expected = 0.0;
        let trials = 300u64;
        let mut scratch = Vec::new();
        for s in 0..trials {
            let tokens = vec![TokenId((s % 90 + 2) as u32), TokenId(8), TokenId(9)];
            let ctx = LmContext::new(s, ContentClass::Chat, &tokens);
            let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(3, 2));
            let tree = cand.tree();
            // True expected acceptance from target path probabilities.
            for id in tree.node_ids().skip(1) {
                let path = tree.path_tokens(id);
                let mut f = 1.0;
                for (i, &tok) in path.iter().enumerate() {
                    let p = pair
                        .target()
                        .next_dist_extended(&ctx, &path[..i], &mut scratch);
                    f *= p.prob(tok);
                }
                mean_expected += f / trials as f64;
            }
            let out = verify_tree(pair.target(), &ctx, tree, 3, VerifyMode::Stochastic);
            mean_measured += out.num_accepted() as f64 / trials as f64;
        }
        let rel = (mean_measured - mean_expected).abs() / mean_expected;
        assert!(
            rel < 0.15,
            "measured {mean_measured:.3} vs expected {mean_expected:.3} (rel {rel:.3})"
        );
    }
}
