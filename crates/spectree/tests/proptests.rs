//! Property-based tests for the token-tree invariants.

use proptest::prelude::*;
use simllm::TokenId;
use spectree::tree::{NodeId, TokenTree};
use spectree::TreeMask;

/// Strategy: a random valid tree built from (parent_choice, token, prob_frac)
/// triples. parent_choice indexes into already-created nodes; prob_frac
/// scales the parent's probability to keep the strict-decrease invariant.
fn arb_tree() -> impl Strategy<Value = TokenTree> {
    prop::collection::vec((0usize..16, 2u32..500, 0.05f64..0.95), 0..24).prop_map(|ops| {
        let mut tree = TokenTree::new(TokenId(1000));
        for (pidx, token, frac) in ops {
            let parent = NodeId((pidx % tree.len()) as u32);
            let prob = tree.path_prob(parent) * frac;
            // Duplicate sibling tokens are rejected; skip those ops.
            let _ = tree.add_child(parent, TokenId(token), prob);
        }
        tree
    })
}

proptest! {
    #[test]
    fn random_trees_validate(tree in arb_tree()) {
        prop_assert!(tree.validate().is_ok());
    }

    #[test]
    fn descending_prefixes_are_connected(tree in arb_tree()) {
        let order = tree.speculated_by_prob_desc();
        for k in 0..=order.len() {
            prop_assert!(tree.induced_subtree(&order[..k]).is_ok());
        }
    }

    #[test]
    fn expected_accepted_bounded_by_depth_sum(tree in arb_tree()) {
        // E[acc] = sum of path probs <= number of speculated nodes, and each
        // node's prob <= 1.
        let e = tree.expected_accepted();
        prop_assert!(e >= 0.0);
        prop_assert!(e <= tree.num_speculated() as f64 + 1e-9);
    }

    #[test]
    fn path_tokens_length_equals_depth(tree in arb_tree()) {
        for id in tree.node_ids() {
            prop_assert_eq!(tree.path_tokens(id).len() as u32, tree.depth(id));
        }
    }

    #[test]
    fn mask_rows_follow_ancestry(tree in arb_tree()) {
        let mask = TreeMask::build(&tree);
        for id in tree.node_ids() {
            // Popcount of a row = depth + 1 (ancestors + self).
            prop_assert_eq!(mask.row(id).count_ones(), tree.depth(id) + 1);
            if let Some(p) = tree.parent(id) {
                prop_assert!(mask.attends(id, p));
                prop_assert!(!mask.attends(p, id));
            }
        }
    }

    #[test]
    fn induced_subtree_preserves_probs(tree in arb_tree()) {
        let order = tree.speculated_by_prob_desc();
        let k = order.len() / 2;
        let sub = tree.induced_subtree(&order[..k]).unwrap();
        let mut orig: Vec<f64> = order[..k].iter().map(|&i| tree.path_prob(i)).collect();
        let mut kept: Vec<f64> = sub.node_ids().skip(1).map(|i| sub.path_prob(i)).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        kept.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(orig, kept);
    }
}
