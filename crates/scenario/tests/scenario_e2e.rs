//! End-to-end properties of the scenario engine:
//!
//! * **Per-tenant conservation** — weighted-fair admission never loses a
//!   request: per tenant, offered = finished + rejected, across quota
//!   refusals and mid-run drain/join events.
//! * **Determinism** — an autoscaled closed-loop run is a pure function
//!   of its seed: records, rejections and replica-hours all reproduce.
//! * **Exec-mode invariance** — a scenario-driven run is
//!   record-identical under sequential and sharded execution.

use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use proptest::prelude::*;
use scenario::{
    ArrivalProcess, AutoScaler, AutoScalerConfig, FairFrontDoor, Scenario, ScenarioWorkload,
    TenantSpec,
};
use serving::{
    ExecMode, ReplicaAddr, RunReport, ScalingAction, ServeSession, ServingEngine, SystemConfig,
};

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

fn bursty_scenario(seed: u64, quota: usize) -> ScenarioWorkload {
    Scenario::new(seed, SystemConfig::llama70b(seed).baseline_ms)
        .process(ArrivalProcess::FlashCrowd {
            rps: 4.0,
            at_ms: 4_000.0,
            magnitude: 6.0,
            decay_ms: 3_000.0,
        })
        .duration_ms(12_000.0)
        .users(40)
        .tenants(vec![
            TenantSpec::new("pro").share(1.0).weight(3.0).quota(quota),
            TenantSpec::new("free").share(2.0).weight(1.0).quota(quota),
        ])
        .build()
}

/// Serves `sw` through a fair front door over a 2-replica cluster, with
/// one replica drained and rejoined mid-run.
fn fair_run(sw: &ScenarioWorkload, seed: u64, max_inflight: usize) -> RunReport {
    let cluster = Cluster::new(engines(2, seed), RouterKind::LeastOutstanding.build());
    let fair = FairFrontDoor::new(cluster, &sw.tenants, sw.tenant_table(), max_inflight);
    let mut session = ServeSession::new(fair);
    session.scale_at(3_000.0, ReplicaAddr::serving(1), ScalingAction::Drain);
    session.scale_at(9_000.0, ReplicaAddr::serving(1), ScalingAction::Join);
    session.serve(&sw.workload).expect("fair run completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fair_admission_conserves_requests_per_tenant(
        seed in 0u64..1_000,
        quota in 2usize..12,
        max_inflight in 2usize..10,
    ) {
        let sw = bursty_scenario(seed, quota);
        let report = fair_run(&sw, seed, max_inflight);
        let offered = sw.offered_per_tenant();
        let mut finished = vec![0usize; sw.tenants.len()];
        for r in &report.records {
            finished[sw.tenant_of(r.id)] += 1;
        }
        let mut rejected = vec![0usize; sw.tenants.len()];
        for (id, _) in &report.rejected {
            rejected[sw.tenant_of(*id)] += 1;
        }
        for t in 0..sw.tenants.len() {
            prop_assert_eq!(
                offered[t],
                finished[t] + rejected[t],
                "tenant {} lost requests: offered {} vs finished {} + rejected {}",
                t, offered[t], finished[t], rejected[t]
            );
        }
        // No request id appears in both outcomes.
        for (id, _) in &report.rejected {
            prop_assert!(report.records.iter().all(|r| r.id != *id));
        }
    }

    #[test]
    fn autoscaled_runs_are_deterministic(seed in 0u64..500) {
        let (a_records, a_rejected, a_hours) = autoscaled_run(seed);
        let (b_records, b_rejected, b_hours) = autoscaled_run(seed);
        prop_assert_eq!(a_records, b_records);
        prop_assert_eq!(a_rejected, b_rejected);
        prop_assert_eq!(a_hours.to_bits(), b_hours.to_bits());
    }
}

/// One closed-loop autoscaled run: flash-crowd scenario, fleet built at
/// 3 replicas with 1 active, controller reacting to gauge ticks.
fn autoscaled_run(seed: u64) -> (Vec<metrics::RequestRecord>, Vec<u64>, f64) {
    let sw = bursty_scenario(seed, usize::MAX);
    let cluster = Cluster::new(engines(3, seed), RouterKind::LeastOutstanding.build());
    let mut session = ServeSession::new(cluster)
        .with_gauge_events()
        .with_gauge_tick_ms(500.0);
    let mut scaler = AutoScaler::new(AutoScalerConfig {
        min_replicas: 1,
        max_replicas: 3,
        cooldown_ms: 1_000.0,
        ..AutoScalerConfig::default()
    });
    for plan in scaler.initial_plans() {
        session.scale_at(plan.at_ms, plan.replica, plan.action);
    }
    session.enqueue(&sw.workload);
    let report = session
        .serve_online(|event, handle| {
            if let Some(plan) = scaler.observe(event) {
                handle.scale_at(plan.at_ms, plan.replica, plan.action);
            }
        })
        .expect("autoscaled run completes");
    let hours = scaler.replica_hours(report.end_ms);
    (
        report.records,
        report.rejected.iter().map(|(id, _)| *id).collect(),
        hours,
    )
}

#[test]
fn scenario_runs_are_record_identical_across_exec_modes() {
    let seed = 20_250_117;
    let sw = bursty_scenario(seed, usize::MAX);
    let run = |mode: ExecMode| {
        let cluster = Cluster::new(engines(3, seed), RouterKind::SloAware.build());
        ServeSession::new(cluster)
            .with_exec_mode(mode)
            .serve(&sw.workload)
            .expect("scenario run completes")
            .records
    };
    let sequential = run(ExecMode::Sequential);
    let sharded = run(ExecMode::Sharded { workers: Some(3) });
    assert_eq!(sequential, sharded);
}

#[test]
fn quota_refusals_surface_as_tenant_rejections() {
    let sw = bursty_scenario(9, 2);
    let report = fair_run(&sw, 9, 2);
    assert!(
        !report.rejected.is_empty(),
        "a 6x burst against quota 2 must refuse something"
    );
    for (_, reason) in &report.rejected {
        assert!(matches!(
            reason,
            serving::RejectReason::TenantOverQuota { .. }
        ));
    }
    // The fairness report slices refusals per tenant.
    let fr = sw.fairness_report(&report);
    let total_rejected: usize = fr.tenants.iter().map(|t| t.rejected).sum();
    assert_eq!(total_rejected, report.rejected.len());
}

#[test]
fn weighted_tenant_is_served_ahead_under_contention() {
    // Equal offered load, 4x weight difference, a tight window: the
    // heavy tenant must accumulate at least its fair share of service.
    let sw = Scenario::new(3, 25.0)
        .process(ArrivalProcess::Poisson { rps: 8.0 })
        .duration_ms(10_000.0)
        .users(30)
        .tenants(vec![
            TenantSpec::new("pro").share(1.0).weight(4.0),
            TenantSpec::new("free").share(1.0).weight(1.0),
        ])
        .build();
    let cluster = Cluster::new(engines(1, 3), RouterKind::RoundRobin.build());
    let fair = FairFrontDoor::new(cluster, &sw.tenants, sw.tenant_table(), 3);
    let mut session = ServeSession::new(fair);
    let report = session
        .serve(&sw.workload)
        .expect("contended run completes");
    assert_eq!(
        report.records.len() + report.rejected.len(),
        sw.workload.requests.len()
    );
    // Everything is eventually served (the front door is
    // work-conserving), so the weight shows up in *queueing delay*: the
    // 4x-weight tenant's held requests jump the refill order, so its
    // mean TTFT beats the free tier's under persistent overload.
    let mean_ttft = |tenant: usize| {
        let ttfts: Vec<f64> = report
            .records
            .iter()
            .filter(|r| sw.tenant_of(r.id) == tenant)
            .map(|r| r.ttft_ms())
            .collect();
        assert!(!ttfts.is_empty(), "tenant {tenant} completed something");
        ttfts.iter().sum::<f64>() / ttfts.len() as f64
    };
    let (pro, free) = (mean_ttft(0), mean_ttft(1));
    assert!(
        pro < free,
        "4x-weight tenant should queue less: pro {pro:.0} ms vs free {free:.0} ms"
    );
    let counters = session.into_inner().counters();
    assert!(counters.iter().all(|c| c.offered > 0));
}
