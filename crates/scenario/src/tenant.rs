//! Tenant contracts: traffic share, SLO-tier mix, fair-share weight and
//! admission quota.

use workload::CategoryMix;

/// One tenant's serving contract.
///
/// A scenario splits its arrival stream across tenants by `share`, each
/// tenant sampling request categories from its own `mix`. The fairness
/// front door ([`crate::FairFrontDoor`]) consumes `weight` (service-token
/// accounting: a tenant is charged `tokens / weight`, so a 2× weight buys
/// 2× the fair share) and `quota` (max requests it may hold queued at the
/// front door before further submissions are refused).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name, used in reports.
    pub name: String,
    /// Relative share of the scenario's arrivals routed to this tenant
    /// (normalized across tenants at build time).
    pub share: f64,
    /// Fair-share weight: service tokens are charged at `1 / weight`.
    pub weight: f64,
    /// Max requests the tenant may hold queued at the front door;
    /// submissions beyond it are refused (`RejectReason::TenantOverQuota`).
    pub quota: usize,
    /// The tenant's SLO-tier mix (which request categories it sends).
    pub mix: CategoryMix,
}

impl TenantSpec {
    /// A tenant with equal share, unit weight, an effectively unbounded
    /// quota and the paper's default category mix.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            share: 1.0,
            weight: 1.0,
            quota: usize::MAX,
            mix: CategoryMix::paper_default(),
        }
    }

    /// Sets the tenant's relative arrival share.
    #[must_use]
    pub fn share(mut self, share: f64) -> Self {
        assert!(share > 0.0, "a tenant receives some traffic");
        self.share = share;
        self
    }

    /// Sets the tenant's fair-share weight.
    #[must_use]
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "a positive fair-share weight");
        self.weight = weight;
        self
    }

    /// Sets the tenant's front-door admission quota.
    #[must_use]
    pub fn quota(mut self, quota: usize) -> Self {
        assert!(quota > 0, "a quota admits at least one request");
        self.quota = quota;
        self
    }

    /// Sets the tenant's category mix.
    #[must_use]
    pub fn mix(mut self, mix: CategoryMix) -> Self {
        self.mix = mix;
        self
    }
}
