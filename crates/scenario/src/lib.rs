//! Scenario engine: trace-driven arrivals, multi-tenant contracts and a
//! closed-loop autoscaler.
//!
//! The sweeps reproduce the paper's evaluation under fixed-rate Poisson
//! load; production traffic is nothing like that. This crate turns the
//! repo into a scenario simulator:
//!
//! * [`ArrivalProcess`] — diurnal cycles, Markov-modulated bursts and
//!   flash crowds, all seeded generators over the same
//!   [`workload::ArrivalTrace`] machinery the paper traces use;
//! * [`Scenario`] — a builder over millions of lightweight user ids with
//!   session affinity (a returning user's next turn extends their
//!   previous context, so the PR 7 prefix cache sees realistic reuse)
//!   and per-tenant [`TenantSpec`] contracts (traffic share, SLO-tier
//!   mix, fair-share weight, admission quota);
//! * [`FairFrontDoor`] — weighted-fair admission in front of any
//!   [`serving::Deployment`]: per-tenant service-token accounting (the
//!   `baselines::vtc` idea at the front door) with quota-based refusal,
//!   so one tenant's burst cannot starve the others;
//! * [`AutoScaler`] — a closed-loop hysteresis controller consuming
//!   [`serving::DeploymentEvent::GaugeTick`] samples and lifecycle
//!   events, issuing drain/join [`serving::ScalingAction`]s at runtime
//!   and accounting replica-hours.
//!
//! Everything is deterministic in the scenario seed (thread it from
//! `ADASERVE_SEED` via [`workload::env_seed`]) and exec-mode invariant;
//! fairness and autoscaling are strictly opt-in wrappers.

pub mod arrival;
pub mod autoscale;
pub mod fairness;
pub mod tenant;

pub use arrival::{ArrivalProcess, MmppState};
pub use autoscale::{AutoScaler, AutoScalerConfig};
pub use fairness::{FairFrontDoor, TenantCounters};
pub use tenant::TenantSpec;

use metrics::FairnessReport;
use serving::RunReport;
use simllm::hash::{combine, seed_stream, unit_f64};
use std::collections::HashMap;
use std::sync::Arc;
use workload::{LengthSampler, PrefixSpec, RequestSpec, Workload};

/// Builder for a multi-tenant, user-affine workload driven by an
/// [`ArrivalProcess`].
///
/// `baseline_ms` resolves baseline-relative SLOs exactly as
/// [`workload::WorkloadBuilder`] does, so scenario requests carry the
/// same per-category SLO tiers as every existing sweep.
#[derive(Debug, Clone)]
pub struct Scenario {
    seed: u64,
    baseline_ms: f64,
    process: ArrivalProcess,
    duration_ms: f64,
    users: u64,
    max_context: u32,
    tenants: Vec<TenantSpec>,
}

impl Scenario {
    /// A single-tenant Poisson scenario at 4 rps for one simulated
    /// minute over one million users — override everything via the
    /// builder methods.
    pub fn new(seed: u64, baseline_ms: f64) -> Self {
        assert!(baseline_ms > 0.0, "a positive baseline latency");
        Self {
            seed,
            baseline_ms,
            process: ArrivalProcess::Poisson { rps: 4.0 },
            duration_ms: 60_000.0,
            users: 1_000_000,
            max_context: 8_192,
            tenants: vec![TenantSpec::new("default")],
        }
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn process(mut self, process: ArrivalProcess) -> Self {
        self.process = process;
        self
    }

    /// Sets the scenario horizon in milliseconds.
    #[must_use]
    pub fn duration_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0);
        self.duration_ms = ms;
        self
    }

    /// Sets the user-population size. Users are lightweight ids — state
    /// is kept only for users actually seen, so millions are cheap.
    /// Smaller populations return more often and stress session
    /// affinity; larger ones behave like one-shot traffic.
    #[must_use]
    pub fn users(mut self, users: u64) -> Self {
        assert!(users > 0, "at least one user");
        self.users = users;
        self
    }

    /// Caps a returning user's grown context, in tokens.
    #[must_use]
    pub fn max_context(mut self, tokens: u32) -> Self {
        assert!(tokens > 0);
        self.max_context = tokens;
        self
    }

    /// Replaces the tenant list.
    #[must_use]
    pub fn tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant");
        self.tenants = tenants;
        self
    }

    /// Materializes the scenario into a workload plus its tenant/user
    /// side tables. Deterministic in the seed: same seed, same
    /// everything.
    pub fn build(&self) -> ScenarioWorkload {
        let trace = self
            .process
            .generate(seed_stream(self.seed, 1), self.duration_ms);
        let sampler = LengthSampler::new(seed_stream(self.seed, 2));
        let total_share: f64 = self.tenants.iter().map(|t| t.share).sum();
        let mut requests = Vec::with_capacity(trace.len());
        let mut tenant_of = Vec::with_capacity(trace.len());
        // Context grown so far per *seen* user — the only per-user state,
        // so a million-user population costs memory only for returners.
        let mut ctx: HashMap<u64, u32> = HashMap::new();
        for (i, arrival) in trace.arrivals().iter().enumerate() {
            let rid = i as u64;
            // Tenant: cumulative-share draw, deterministic per request.
            let draw = unit_f64(combine(seed_stream(self.seed, 8), rid)) * total_share;
            let mut acc = 0.0;
            let mut tenant = self.tenants.len() - 1;
            for (ti, t) in self.tenants.iter().enumerate() {
                acc += t.share;
                if draw < acc {
                    tenant = ti;
                    break;
                }
            }
            let category = arrival.category.unwrap_or_else(|| {
                self.tenants[tenant]
                    .mix
                    .sample(combine(seed_stream(self.seed, 3), rid))
            });
            let (sampled_prompt, output_len) = sampler.sample(category, rid);
            // User: uniform over the population, keyed within the tenant.
            let user = combine(seed_stream(self.seed, 5), rid) % self.users;
            let ukey = combine(combine(seed_stream(self.seed, 6), tenant as u64), user);
            let user_seed = combine(seed_stream(self.seed, 7), ukey);
            // Session affinity: a returning user's turn extends their
            // previous context (same per-user token stream), so turn k's
            // prompt is literally a prefix of turn k+1's.
            let prev = ctx.get(&ukey).copied().unwrap_or(0);
            let prompt_len = prev
                .saturating_add(sampled_prompt)
                .min(self.max_context)
                .max(1);
            let prefix = (prev > 0).then_some(PrefixSpec {
                seed: user_seed,
                len: prev,
            });
            ctx.insert(ukey, prompt_len);
            requests.push(RequestSpec {
                id: rid,
                category,
                arrival_ms: arrival.time_ms,
                prompt_len,
                output_len,
                tpot_slo_ms: category.slo().resolve(self.baseline_ms),
                ttft_slo_ms: category.ttft_slo().resolve(self.baseline_ms),
                stream_seed: user_seed,
                prefix,
            });
            tenant_of.push(tenant);
        }
        let description = format!(
            "{:?}, {} tenants, {} unique users over {} requests, mean {:.2} rps",
            self.process,
            self.tenants.len(),
            ctx.len(),
            trace.len(),
            trace.mean_rps()
        );
        ScenarioWorkload {
            workload: Workload {
                requests,
                description,
            },
            tenants: self.tenants.clone(),
            tenant_of: Arc::new(tenant_of),
            unique_users: ctx.len(),
        }
    }
}

/// A materialized scenario: the workload plus its tenant side table.
///
/// Request ids are `0..n` in arrival order, so the tenant table is a
/// plain vector indexed by id — shared (via `Arc`) with the
/// [`FairFrontDoor`] so front door and report agree on attribution.
#[derive(Debug, Clone)]
pub struct ScenarioWorkload {
    /// The time-ordered requests, consumable by any deployment.
    pub workload: Workload,
    /// The tenant contracts the scenario was built with.
    pub tenants: Vec<TenantSpec>,
    tenant_of: Arc<Vec<usize>>,
    unique_users: usize,
}

impl ScenarioWorkload {
    /// The tenant index a request id belongs to. Ids outside the
    /// scenario (e.g. injected by a closed-loop client) hash onto a
    /// tenant deterministically.
    pub fn tenant_of(&self, id: u64) -> usize {
        self.tenant_of
            .get(id as usize)
            .copied()
            .unwrap_or_else(|| (id % self.tenants.len() as u64) as usize)
    }

    /// The shared id → tenant table (for wiring a [`FairFrontDoor`]).
    pub fn tenant_table(&self) -> Arc<Vec<usize>> {
        Arc::clone(&self.tenant_of)
    }

    /// Distinct users that actually sent traffic.
    pub fn unique_users(&self) -> usize {
        self.unique_users
    }

    /// Requests attributed to each tenant, in tenant order.
    pub fn offered_per_tenant(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.tenants.len()];
        for &t in self.tenant_of.iter() {
            counts[t] += 1;
        }
        counts
    }

    /// Slices a finished run's records and rejections by tenant.
    pub fn fairness_report(&self, report: &RunReport) -> FairnessReport {
        let rejected: Vec<u64> = report.rejected.iter().map(|(id, _)| *id).collect();
        FairnessReport::from_records(&report.records, self.tenants.len(), &rejected, |id| {
            self.tenant_of(id)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_scenario(seed: u64) -> Scenario {
        Scenario::new(seed, 25.0)
            .process(ArrivalProcess::FlashCrowd {
                rps: 3.0,
                at_ms: 20_000.0,
                magnitude: 8.0,
                decay_ms: 5_000.0,
            })
            .duration_ms(60_000.0)
            .users(50)
            .tenants(vec![
                TenantSpec::new("pro").share(1.0).weight(4.0).quota(64),
                TenantSpec::new("free").share(3.0).weight(1.0).quota(64),
            ])
    }

    #[test]
    fn same_seed_same_scenario_trace() {
        let a = two_tenant_scenario(11).build();
        let b = two_tenant_scenario(11).build();
        assert_eq!(a.workload.requests, b.workload.requests);
        assert_eq!(a.tenant_table(), b.tenant_table());
        let c = two_tenant_scenario(12).build();
        assert_ne!(a.workload.requests, c.workload.requests);
    }

    #[test]
    fn shares_split_traffic_proportionally() {
        let sw = two_tenant_scenario(7).build();
        let counts = sw.offered_per_tenant();
        let total = counts.iter().sum::<usize>() as f64;
        let free_frac = counts[1] as f64 / total;
        assert!(
            (free_frac - 0.75).abs() < 0.07,
            "free share = {free_frac} over {total} requests"
        );
    }

    #[test]
    fn returning_users_extend_their_context() {
        let sw = Scenario::new(5, 25.0)
            .process(ArrivalProcess::Poisson { rps: 10.0 })
            .duration_ms(30_000.0)
            .users(10)
            .max_context(1_000_000)
            .build();
        // With 10 users and hundreds of requests, most turns return.
        let returning = sw
            .workload
            .requests
            .iter()
            .filter(|r| r.prefix.is_some())
            .count();
        assert!(
            returning * 2 > sw.workload.requests.len(),
            "returning turns: {returning}/{}",
            sw.workload.requests.len()
        );
        // Each returning turn's prefix records previously seen context
        // drawn from the same per-user stream.
        for r in &sw.workload.requests {
            if let Some(p) = &r.prefix {
                assert_eq!(p.seed, r.stream_seed);
                assert!(p.len < r.prompt_len);
            }
        }
        assert!(sw.unique_users() <= 10);
    }

    #[test]
    fn huge_user_populations_stay_lightweight() {
        let sw = Scenario::new(5, 25.0)
            .process(ArrivalProcess::Poisson { rps: 8.0 })
            .duration_ms(30_000.0)
            .users(3_000_000)
            .build();
        // Millions of ids, but state only for users actually seen.
        assert!(sw.unique_users() <= sw.workload.requests.len());
        assert!(sw.workload.requests.len() < 1_000);
    }

    #[test]
    fn slo_tiers_match_the_workload_builder_defaults() {
        let sw = two_tenant_scenario(3).build();
        for r in &sw.workload.requests {
            assert_eq!(r.tpot_slo_ms, r.category.slo().resolve(25.0));
            assert_eq!(r.ttft_slo_ms, r.category.ttft_slo().resolve(25.0));
        }
    }

    #[test]
    fn out_of_range_ids_map_to_a_tenant() {
        let sw = two_tenant_scenario(3).build();
        let id = sw.workload.requests.len() as u64 + 17;
        assert!(sw.tenant_of(id) < 2);
    }
}
