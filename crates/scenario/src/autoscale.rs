//! A closed-loop autoscaler: gauge ticks in, drain/join actions out.
//!
//! The controller consumes the session's event stream inside a
//! [`serving::ServeSession::serve_online`] client (enable
//! `with_gauge_events` so [`DeploymentEvent::GaugeTick`] samples flow):
//! a PI loop on queue pressure and SLO attainment with hysteresis
//! thresholds and a cooldown, issuing [`ScalingAction::Join`] /
//! [`ScalingAction::Drain`] plans against a fleet built at
//! `max_replicas` (the inactive tail is drained at t = 0 via
//! [`AutoScaler::initial_plans`]). Replica-time is integrated across
//! every observed event, so the report can price elasticity in
//! replica-hours against static peak provisioning.
//!
//! Everything the controller sees is simulation-clock state, so
//! autoscaled runs are deterministic in the workload seed.

use serving::{DeploymentEvent, ReplicaAddr, ScalePlan, ScalingAction};

/// Tuning knobs for the [`AutoScaler`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoScalerConfig {
    /// Replicas that always stay active.
    pub min_replicas: usize,
    /// Fleet size the deployment was built with (the scale-out ceiling).
    pub max_replicas: usize,
    /// Outstanding (queued + in-flight) requests per active replica the
    /// controller steers toward.
    pub target_queue_per_replica: f64,
    /// Joint SLO attainment (percent) the controller steers toward.
    pub target_attainment_pct: f64,
    /// Proportional gain on queue-pressure error.
    pub kp: f64,
    /// Integral gain on attainment error (per gauge tick).
    pub ki: f64,
    /// Control signal above which a replica joins.
    pub up_threshold: f64,
    /// Control signal below which a replica drains.
    pub down_threshold: f64,
    /// Minimum time between scaling actions, in milliseconds.
    pub cooldown_ms: f64,
    /// Smoothing factor of the attainment EWMA, in `(0, 1]`.
    pub ewma_alpha: f64,
}

impl Default for AutoScalerConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 4,
            target_queue_per_replica: 2.0,
            target_attainment_pct: 90.0,
            kp: 0.5,
            ki: 0.02,
            up_threshold: 1.0,
            down_threshold: -0.75,
            cooldown_ms: 2_000.0,
            ewma_alpha: 0.05,
        }
    }
}

/// The hysteresis controller. Feed it every event a `serve_online`
/// client observes; apply whatever [`ScalePlan`] it returns through the
/// session handle.
#[derive(Debug)]
pub struct AutoScaler {
    cfg: AutoScalerConfig,
    /// Whether serving replica `i` is currently active (joined).
    active: Vec<bool>,
    attainment_ewma_pct: f64,
    integral: f64,
    last_scale_ms: f64,
    last_event_ms: f64,
    replica_ms: f64,
    peak_active: usize,
    joins: u32,
    drains: u32,
}

impl AutoScaler {
    /// A controller starting with `min_replicas` active out of
    /// `max_replicas` built.
    pub fn new(cfg: AutoScalerConfig) -> Self {
        assert!(cfg.min_replicas >= 1, "at least one active replica");
        assert!(
            cfg.max_replicas >= cfg.min_replicas,
            "max_replicas bounds min_replicas"
        );
        assert!(cfg.up_threshold > cfg.down_threshold, "hysteresis band");
        assert!(
            cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0,
            "EWMA factor in (0, 1]"
        );
        let active: Vec<bool> = (0..cfg.max_replicas)
            .map(|i| i < cfg.min_replicas)
            .collect();
        Self {
            active,
            attainment_ewma_pct: 100.0,
            integral: 0.0,
            last_scale_ms: f64::NEG_INFINITY,
            last_event_ms: 0.0,
            replica_ms: 0.0,
            peak_active: cfg.min_replicas,
            joins: 0,
            drains: 0,
            cfg,
        }
    }

    /// Drain plans (at t = 0) for the inactive tail of the fleet —
    /// schedule these on the session before serving so a deployment
    /// built at `max_replicas` starts with only `min_replicas` active.
    pub fn initial_plans(&self) -> Vec<ScalePlan> {
        (self.cfg.min_replicas..self.cfg.max_replicas)
            .map(|i| ScalePlan {
                at_ms: 0.0,
                replica: ReplicaAddr::serving(i),
                action: ScalingAction::Drain,
            })
            .collect()
    }

    /// Currently active replicas.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// The most replicas ever simultaneously active.
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// Joins and drains issued so far.
    pub fn actions(&self) -> (u32, u32) {
        (self.joins, self.drains)
    }

    /// The smoothed joint-attainment estimate, in percent.
    pub fn attainment_ewma_pct(&self) -> f64 {
        self.attainment_ewma_pct
    }

    /// Observes one session event; returns a scaling plan to apply, if
    /// the controller decides to act on this event.
    pub fn observe(&mut self, event: &DeploymentEvent) -> Option<ScalePlan> {
        let now_ms = match event {
            DeploymentEvent::Admitted { at_ms, .. }
            | DeploymentEvent::FirstToken { at_ms, .. }
            | DeploymentEvent::Rejected { at_ms, .. }
            | DeploymentEvent::GaugeTick { at_ms, .. } => *at_ms,
            DeploymentEvent::Finished { record } => record.completion_ms,
        };
        self.accrue(now_ms);
        match event {
            DeploymentEvent::Finished { record } => {
                let x = if record.attained() && record.ttft_attained() {
                    100.0
                } else {
                    0.0
                };
                self.attainment_ewma_pct += self.cfg.ewma_alpha * (x - self.attainment_ewma_pct);
                None
            }
            DeploymentEvent::GaugeTick { at_ms, sample } => {
                let active = self.active_count() as f64;
                // Pressure is *outstanding work*: continuous batching
                // admits requests straight into the running batch, so the
                // waiting queue alone stays near zero even under heavy
                // overload.
                let outstanding = (sample.queue_depth + sample.in_flight) as f64;
                let queue_per_replica = outstanding / active.max(1.0);
                let err_q = queue_per_replica - self.cfg.target_queue_per_replica;
                let err_a = self.cfg.target_attainment_pct - self.attainment_ewma_pct;
                // Integral on attainment error, clamped so a long healthy
                // (or long broken) stretch cannot wind the controller up.
                self.integral = (self.integral + self.cfg.ki * err_a).clamp(-2.0, 2.0);
                let signal = self.cfg.kp * err_q + self.integral;
                if *at_ms - self.last_scale_ms < self.cfg.cooldown_ms {
                    return None;
                }
                if signal > self.cfg.up_threshold {
                    self.scale(*at_ms, ScalingAction::Join)
                } else if signal < self.cfg.down_threshold {
                    self.scale(*at_ms, ScalingAction::Drain)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Finalizes replica-time through `end_ms` and returns the total in
    /// replica-hours (the elasticity cost metric: a static fleet costs
    /// `max_replicas × duration`).
    pub fn replica_hours(&mut self, end_ms: f64) -> f64 {
        self.accrue(end_ms);
        self.replica_ms / 3_600_000.0
    }

    /// Integrates active-replica time up to `now_ms`.
    fn accrue(&mut self, now_ms: f64) {
        let dt = (now_ms - self.last_event_ms).max(0.0);
        self.replica_ms += dt * self.active_count() as f64;
        self.last_event_ms = self.last_event_ms.max(now_ms);
    }

    /// Joins the lowest inactive replica / drains the highest active one
    /// beyond the floor.
    fn scale(&mut self, now_ms: f64, action: ScalingAction) -> Option<ScalePlan> {
        let index = match action {
            ScalingAction::Join => self.active.iter().position(|a| !*a)?,
            ScalingAction::Drain => {
                if self.active_count() <= self.cfg.min_replicas {
                    return None;
                }
                self.active.iter().rposition(|a| *a)?
            }
        };
        self.active[index] = !matches!(action, ScalingAction::Drain);
        self.last_scale_ms = now_ms;
        match action {
            ScalingAction::Join => {
                self.joins += 1;
                self.integral = self.integral.min(0.0);
            }
            ScalingAction::Drain => {
                self.drains += 1;
                self.integral = self.integral.max(0.0);
            }
        }
        self.peak_active = self.peak_active.max(self.active_count());
        Some(ScalePlan {
            at_ms: now_ms,
            replica: ReplicaAddr::serving(index),
            action,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::telemetry::GaugeSample;

    fn tick(at_ms: f64, queue_depth: usize) -> DeploymentEvent {
        DeploymentEvent::GaugeTick {
            at_ms,
            sample: GaugeSample {
                queue_depth,
                in_flight: 0,
                kv_occupancy_pct: 0.0,
                cache_hit_rate_pct: 0.0,
            },
        }
    }

    #[test]
    fn queue_pressure_joins_up_to_max() {
        let mut s = AutoScaler::new(AutoScalerConfig {
            min_replicas: 1,
            max_replicas: 3,
            cooldown_ms: 1_000.0,
            ..AutoScalerConfig::default()
        });
        assert_eq!(s.initial_plans().len(), 2);
        let p = s.observe(&tick(0.0, 50)).expect("joins under pressure");
        assert_eq!(p.action, ScalingAction::Join);
        assert_eq!(p.replica, ReplicaAddr::serving(1));
        // Cooldown holds the next action back…
        assert!(s.observe(&tick(500.0, 50)).is_none());
        // …then the second join lands, and the fleet caps at max.
        let p = s.observe(&tick(1_500.0, 50)).expect("second join");
        assert_eq!(p.replica, ReplicaAddr::serving(2));
        assert!(s.observe(&tick(3_000.0, 50)).is_none(), "fleet at max");
        assert_eq!(s.active_count(), 3);
        assert_eq!(s.peak_active(), 3);
    }

    #[test]
    fn idle_fleet_drains_back_to_min() {
        let mut s = AutoScaler::new(AutoScalerConfig {
            min_replicas: 1,
            max_replicas: 3,
            cooldown_ms: 1_000.0,
            ..AutoScalerConfig::default()
        });
        s.observe(&tick(0.0, 50));
        s.observe(&tick(1_500.0, 50));
        assert_eq!(s.active_count(), 3);
        // Queue collapses: the controller drains, highest replica first,
        // and never below the floor.
        let mut drains = Vec::new();
        for k in 0..20 {
            if let Some(p) = s.observe(&tick(3_000.0 + 1_100.0 * k as f64, 0)) {
                assert_eq!(p.action, ScalingAction::Drain);
                drains.push(p.replica.index);
            }
        }
        assert_eq!(drains, vec![2, 1]);
        assert_eq!(s.active_count(), 1);
    }

    #[test]
    fn replica_hours_integrate_active_time() {
        let mut s = AutoScaler::new(AutoScalerConfig {
            min_replicas: 1,
            max_replicas: 2,
            cooldown_ms: 0.0,
            ..AutoScalerConfig::default()
        });
        // One replica for the first hour, two for the second.
        s.observe(&tick(3_600_000.0, 50)); // accrues 1 rep-hr, then joins
        let hours = s.replica_hours(7_200_000.0);
        assert!((hours - 3.0).abs() < 1e-9, "hours = {hours}");
    }

    #[test]
    fn missed_slos_wind_up_the_integral_term() {
        let mut s = AutoScaler::new(AutoScalerConfig {
            min_replicas: 1,
            max_replicas: 2,
            kp: 0.0, // isolate the integral path
            ki: 0.5,
            cooldown_ms: 0.0,
            ..AutoScalerConfig::default()
        });
        // Attainment EWMA collapses to 0 after repeated misses…
        for t in 0..60 {
            s.observe(&DeploymentEvent::Finished {
                record: metrics::RequestRecord {
                    id: t,
                    category: workload::Category::Chatbot,
                    tpot_slo_ms: 1.0,
                    ttft_slo_ms: 1.0,
                    arrival_ms: 0.0,
                    decode_start_ms: 100.0,
                    completion_ms: 1_000.0,
                    output_tokens: 4,
                    accepted_tokens: 0,
                    verify_steps: 4,
                    preemptions: 0,
                },
            });
        }
        assert!(s.attainment_ewma_pct() < 10.0);
        // …so even a zero-queue tick scales out.
        let p = s
            .observe(&tick(10.0, 0))
            .expect("attainment pressure joins");
        assert_eq!(p.action, ScalingAction::Join);
    }
}
