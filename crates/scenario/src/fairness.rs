//! Weighted-fair front-door admission across tenants.
//!
//! [`FairFrontDoor`] wraps any [`Deployment`] and meters submissions
//! through a bounded in-flight window. While the window is full,
//! arrivals queue per tenant; when a slot frees, the tenant with the
//! **least weight-normalized service** so far goes first — the virtual
//! service counter idea from `baselines::vtc`, moved to the front door.
//! A tenant holding its full quota of queued requests has further
//! submissions refused ([`RejectReason::TenantOverQuota`]), surfaced
//! through the session as ordinary `Rejected` lifecycle events, so
//! per-tenant conservation (offered = finished + rejected) holds
//! end-to-end.
//!
//! Service is charged at forward time as `(prompt + output) / weight`:
//! a tenant with twice the weight buys twice the fair share. Because an
//! under-served tenant's held requests jump ahead of a bursting
//! tenant's backlog, a paying tenant's burst cannot starve the others —
//! the "priority preemption" the scenario contracts promise.

use crate::tenant::TenantSpec;
use metrics::telemetry::{GaugeSample, Tracer};
use serving::{
    Deployment, DeploymentEvent, DeploymentStep, FaultKind, RejectReason, ReplicaAddr, RunError,
    RunOptions, UnitStats,
};
use std::collections::VecDeque;
use std::sync::Arc;
use workload::RequestSpec;

/// One tenant's front-door accounting.
#[derive(Debug, Clone)]
pub struct TenantCounters {
    /// Tenant display name.
    pub name: String,
    /// Requests submitted for the tenant.
    pub offered: u64,
    /// Requests forwarded to the inner deployment.
    pub forwarded: u64,
    /// Requests refused over quota.
    pub rejected: u64,
    /// Weight-normalized service charged so far.
    pub service: f64,
}

#[derive(Debug)]
struct TenantState {
    spec: TenantSpec,
    held: VecDeque<RequestSpec>,
    counters: TenantCounters,
}

/// A weighted-fair admission wrapper around any deployment.
///
/// Opt-in: wrap the deployment before building the session. The wrapper
/// never reorders requests *within* a tenant (FIFO per tenant) and
/// forwards eagerly while the in-flight window has room, so a
/// single-tenant run below the window size behaves exactly like the
/// unwrapped deployment.
#[derive(Debug)]
pub struct FairFrontDoor<D> {
    inner: D,
    tenants: Vec<TenantState>,
    tenant_of: Arc<Vec<usize>>,
    max_inflight: usize,
    inflight: usize,
    now_ms: f64,
    pending: VecDeque<DeploymentEvent>,
}

impl<D: Deployment> FairFrontDoor<D> {
    /// Wraps `inner`, admitting at most `max_inflight` forwarded-but-
    /// unfinished requests at a time. `tenant_of` maps request ids
    /// (indices) to tenant indices; out-of-range ids hash onto a tenant.
    pub fn new(
        inner: D,
        tenants: &[TenantSpec],
        tenant_of: Arc<Vec<usize>>,
        max_inflight: usize,
    ) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant");
        assert!(max_inflight > 0, "a window of at least one request");
        Self {
            inner,
            tenants: tenants
                .iter()
                .map(|spec| TenantState {
                    counters: TenantCounters {
                        name: spec.name.clone(),
                        offered: 0,
                        forwarded: 0,
                        rejected: 0,
                        service: 0.0,
                    },
                    spec: spec.clone(),
                    held: VecDeque::new(),
                })
                .collect(),
            tenant_of,
            max_inflight,
            inflight: 0,
            now_ms: 0.0,
            pending: VecDeque::new(),
        }
    }

    /// The tenant index for a request id.
    fn tenant_index(&self, id: u64) -> usize {
        self.tenant_of
            .get(id as usize)
            .copied()
            .unwrap_or_else(|| (id % self.tenants.len() as u64) as usize)
            .min(self.tenants.len() - 1)
    }

    /// Forwards `spec` into the inner deployment, charging its tenant.
    fn forward(&mut self, tenant: usize, spec: RequestSpec, now_ms: f64) {
        let cost = f64::from(spec.prompt_len) + f64::from(spec.output_len);
        let t = &mut self.tenants[tenant];
        t.counters.forwarded += 1;
        t.counters.service += cost / t.spec.weight;
        self.inflight += 1;
        self.inner.submit(spec, now_ms);
    }

    /// Fills freed window slots from the held queues: least
    /// weight-normalized service first (ties to the lower tenant index).
    fn refill(&mut self, now_ms: f64) {
        while self.inflight < self.max_inflight {
            let Some(tenant) = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.held.is_empty())
                .min_by(|(_, a), (_, b)| {
                    a.counters
                        .service
                        .partial_cmp(&b.counters.service)
                        .expect("finite service counters")
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let spec = self.tenants[tenant].held.pop_front().expect("non-empty");
            self.forward(tenant, spec, now_ms);
        }
    }

    /// Per-tenant accounting so far, in tenant order.
    pub fn counters(&self) -> Vec<TenantCounters> {
        self.tenants.iter().map(|t| t.counters.clone()).collect()
    }

    /// Requests currently held at the front door, across tenants.
    pub fn held_len(&self) -> usize {
        self.tenants.iter().map(|t| t.held.len()).sum()
    }

    /// Recovers the wrapped deployment.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: Deployment> Deployment for FairFrontDoor<D> {
    fn name(&self) -> String {
        format!("fair({})", self.inner.name())
    }

    fn max_baseline_ms(&self) -> f64 {
        self.inner.max_baseline_ms()
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.inner.kv_capacity_tokens()
    }

    fn cached_prefix_tokens(&self, spec: &RequestSpec) -> u32 {
        self.inner.cached_prefix_tokens(spec)
    }

    fn submit(&mut self, spec: RequestSpec, now_ms: f64) {
        self.now_ms = self.now_ms.max(now_ms);
        let tenant = self.tenant_index(spec.id);
        self.tenants[tenant].counters.offered += 1;
        if self.inflight < self.max_inflight {
            // Invariant: the window has room only when nothing is held
            // (refill drains held queues before the window frees up).
            debug_assert_eq!(self.held_len(), 0);
            self.forward(tenant, spec, now_ms);
        } else if self.tenants[tenant].held.len() < self.tenants[tenant].spec.quota {
            self.tenants[tenant].held.push_back(spec);
        } else {
            let t = &mut self.tenants[tenant];
            t.counters.rejected += 1;
            self.pending.push_back(DeploymentEvent::Rejected {
                id: spec.id,
                reason: RejectReason::TenantOverQuota {
                    tenant,
                    quota: t.spec.quota,
                },
                at_ms: now_ms,
            });
        }
    }

    fn next_event_ms(&self) -> Option<f64> {
        let pending = self.pending.front().map(|e| match e {
            DeploymentEvent::Rejected { at_ms, .. } => *at_ms,
            _ => self.now_ms,
        });
        match (pending, self.inner.next_event_ms()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn step(&mut self, options: &RunOptions) -> Result<DeploymentStep, RunError> {
        // Surface queued front-door refusals first: they carry no
        // latency, so they bypass the session's progress guard.
        if !self.pending.is_empty() {
            return Ok(DeploymentStep {
                events: self.pending.drain(..).collect(),
                latency_ms: None,
                replica: None,
            });
        }
        let step = self.inner.step(options)?;
        let finished = step
            .events
            .iter()
            .filter(|e| matches!(e, DeploymentEvent::Finished { .. }))
            .count();
        if finished > 0 {
            self.inflight = self.inflight.saturating_sub(finished);
            let now_ms = self.inner.clock_ms().max(self.now_ms);
            self.refill(now_ms);
        }
        Ok(step)
    }

    // `step_until` deliberately keeps the default one-step-at-a-time
    // behavior: the window must refill at finish granularity, and the
    // per-step path is identical under every `ExecMode`.

    fn set_accepting(&mut self, replica: ReplicaAddr, accepting: bool, now_ms: f64) {
        self.inner.set_accepting(replica, accepting, now_ms);
    }

    fn inject_fault(&mut self, fault: &FaultKind, now_ms: f64) -> Vec<RequestSpec> {
        self.now_ms = self.now_ms.max(now_ms);
        let lost = self.inner.inject_fault(fault, now_ms);
        if !lost.is_empty() {
            // Each lost request had been forwarded through the window;
            // free its slot, or the sliding window leaks and held
            // requests deadlock behind phantom in-flight entries.
            self.inflight = self.inflight.saturating_sub(lost.len());
            self.refill(now_ms);
        }
        lost
    }

    fn clear_fault(&mut self, fault: &FaultKind, now_ms: f64) {
        self.now_ms = self.now_ms.max(now_ms);
        self.inner.clear_fault(fault, now_ms);
    }

    fn set_degraded(&mut self, degraded: bool) {
        self.inner.set_degraded(degraded);
    }

    fn iterations(&self) -> u64 {
        self.inner.iterations()
    }

    fn clock_ms(&self) -> f64 {
        self.inner.clock_ms()
    }

    fn drain(&mut self) -> Result<Vec<UnitStats>, RunError> {
        assert_eq!(
            self.held_len(),
            0,
            "fair front door drained with requests still held — the inner \
             deployment went idle without finishing its window"
        );
        self.inner.drain()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer);
    }

    fn gauges(&self) -> GaugeSample {
        let mut g = self.inner.gauges();
        g.queue_depth += self.held_len();
        g
    }
}
