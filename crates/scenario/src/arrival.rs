//! Arrival processes beyond fixed-rate Poisson: diurnal cycles,
//! Markov-modulated bursts and flash crowds.
//!
//! Every process is a seeded generator producing a
//! [`workload::ArrivalTrace`]; non-homogeneous processes use thinning
//! (generate a homogeneous candidate stream at the peak rate, accept
//! each candidate with probability `rate(t) / max_rate`), the same
//! technique the staggered-peak trace in `workload::trace` uses. Two
//! hash streams per candidate — one for the exponential gap, one for the
//! accept draw — keep every process deterministic in its seed.

use simllm::hash::{combine, seed_stream, unit_f64};
use workload::trace::Arrival;
use workload::ArrivalTrace;

/// One state of a Markov-modulated Poisson process: a rate held for an
/// exponentially distributed dwell time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppState {
    /// Arrival rate while the process sits in this state.
    pub rps: f64,
    /// Mean dwell time before jumping to another state, in milliseconds.
    pub mean_dwell_ms: f64,
}

/// A seeded arrival process over a fixed horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a fixed rate.
    Poisson {
        /// Average request rate.
        rps: f64,
    },
    /// A sinusoidal day/night cycle:
    /// `rate(t) = rps · (1 + amplitude · sin(2πt / period_ms))`.
    Diurnal {
        /// Mean request rate over a full period.
        rps: f64,
        /// Cycle length in milliseconds (a simulated "day").
        period_ms: f64,
        /// Peak-to-mean rate swing, in `[0, 1]`.
        amplitude: f64,
    },
    /// A Markov-modulated Poisson process: the rate jumps between
    /// states, dwelling in each for an exponential time — the classic
    /// bursty-traffic model.
    Mmpp {
        /// The states; the process starts in the first and jumps
        /// uniformly at random between them.
        states: Vec<MmppState>,
    },
    /// Steady load with a sudden multiplicative burst that decays
    /// exponentially — a product launch, a reposted link:
    /// `rate(t) = rps · (1 + (magnitude − 1) · exp(−(t − at_ms)/decay_ms))`
    /// for `t ≥ at_ms`.
    FlashCrowd {
        /// Steady-state request rate before (and long after) the burst.
        rps: f64,
        /// When the crowd arrives, in milliseconds.
        at_ms: f64,
        /// Peak rate as a multiple of the steady rate (10.0 = a 10×
        /// burst).
        magnitude: f64,
        /// Exponential decay constant of the burst, in milliseconds.
        decay_ms: f64,
    },
}

impl ArrivalProcess {
    /// Generates the process's arrivals over `[0, duration_ms]`,
    /// deterministically in `seed`.
    pub fn generate(&self, seed: u64, duration_ms: f64) -> ArrivalTrace {
        assert!(duration_ms > 0.0, "a positive horizon");
        match self {
            ArrivalProcess::Poisson { rps } => {
                assert!(*rps > 0.0, "a positive rate");
                ArrivalTrace::poisson(seed, *rps, duration_ms)
            }
            ArrivalProcess::Diurnal {
                rps,
                period_ms,
                amplitude,
            } => {
                assert!(*rps > 0.0 && *period_ms > 0.0, "positive rate and period");
                assert!(
                    (0.0..=1.0).contains(amplitude),
                    "amplitude is a fraction of the mean rate"
                );
                let max_rate = rps * (1.0 + amplitude);
                thinned(seed, duration_ms, max_rate, |t_ms| {
                    rps * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t_ms / period_ms).sin())
                })
            }
            ArrivalProcess::Mmpp { states } => mmpp(seed, duration_ms, states),
            ArrivalProcess::FlashCrowd {
                rps,
                at_ms,
                magnitude,
                decay_ms,
            } => {
                assert!(*rps > 0.0 && *decay_ms > 0.0, "positive rate and decay");
                assert!(*magnitude >= 1.0, "the crowd multiplies the rate");
                let max_rate = rps * magnitude;
                thinned(seed, duration_ms, max_rate, |t_ms| {
                    if t_ms < *at_ms {
                        *rps
                    } else {
                        rps * (1.0 + (magnitude - 1.0) * (-(t_ms - at_ms) / decay_ms).exp())
                    }
                })
            }
        }
    }

    /// The process's peak instantaneous rate — what a static "provision
    /// for the worst case" fleet must be sized against.
    pub fn peak_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rps } => *rps,
            ArrivalProcess::Diurnal { rps, amplitude, .. } => rps * (1.0 + amplitude),
            ArrivalProcess::Mmpp { states } => states.iter().map(|s| s.rps).fold(0.0f64, f64::max),
            ArrivalProcess::FlashCrowd { rps, magnitude, .. } => rps * magnitude,
        }
    }
}

/// Non-homogeneous Poisson arrivals by thinning: candidates at
/// `max_rate`, each accepted with probability `rate(t) / max_rate`.
fn thinned(
    seed: u64,
    duration_ms: f64,
    max_rate: f64,
    rate_at: impl Fn(f64) -> f64,
) -> ArrivalTrace {
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    let mut i = 0u64;
    loop {
        let u = unit_f64(seed_stream(seed, 2 * i)).max(1e-12);
        t += -u.ln() / max_rate * 1e3;
        if t > duration_ms {
            break;
        }
        if unit_f64(seed_stream(seed, 2 * i + 1)) < rate_at(t) / max_rate {
            arrivals.push(Arrival {
                time_ms: t,
                category: None,
            });
        }
        i += 1;
    }
    ArrivalTrace::from_arrivals(arrivals)
}

/// Markov-modulated Poisson: exponential dwells per state, homogeneous
/// arrivals within each dwell, uniform jumps between states.
fn mmpp(seed: u64, duration_ms: f64, states: &[MmppState]) -> ArrivalTrace {
    assert!(!states.is_empty(), "at least one MMPP state");
    assert!(
        states.iter().all(|s| s.rps > 0.0 && s.mean_dwell_ms > 0.0),
        "positive rates and dwell times"
    );
    let mut arrivals = Vec::new();
    let mut state = 0usize;
    let mut t0 = 0.0f64;
    let mut segment = 0u64;
    while t0 < duration_ms {
        let s = states[state];
        let h = seed_stream(seed, segment);
        let dwell = -unit_f64(seed_stream(h, 0)).max(1e-12).ln() * s.mean_dwell_ms;
        let t1 = (t0 + dwell).min(duration_ms);
        // Homogeneous arrivals within [t0, t1) via exponential gaps.
        let aseed = combine(h, 1);
        let mut t = t0;
        let mut i = 0u64;
        loop {
            let u = unit_f64(seed_stream(aseed, i)).max(1e-12);
            t += -u.ln() / s.rps * 1e3;
            if t >= t1 {
                break;
            }
            arrivals.push(Arrival {
                time_ms: t,
                category: None,
            });
            i += 1;
        }
        // Jump uniformly among the states (self-jumps allowed: they just
        // extend the dwell, which only re-shapes the dwell distribution).
        state = (seed_stream(h, 2) % states.len() as u64) as usize;
        t0 = t1;
        segment += 1;
    }
    ArrivalTrace::from_arrivals(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn processes() -> Vec<ArrivalProcess> {
        vec![
            ArrivalProcess::Poisson { rps: 4.0 },
            ArrivalProcess::Diurnal {
                rps: 4.0,
                period_ms: 60_000.0,
                amplitude: 0.8,
            },
            ArrivalProcess::Mmpp {
                states: vec![
                    MmppState {
                        rps: 2.0,
                        mean_dwell_ms: 20_000.0,
                    },
                    MmppState {
                        rps: 12.0,
                        mean_dwell_ms: 5_000.0,
                    },
                ],
            },
            ArrivalProcess::FlashCrowd {
                rps: 3.0,
                at_ms: 30_000.0,
                magnitude: 10.0,
                decay_ms: 10_000.0,
            },
        ]
    }

    #[test]
    fn every_process_is_deterministic_in_its_seed() {
        for p in processes() {
            let a = p.generate(42, 120_000.0);
            let b = p.generate(42, 120_000.0);
            assert_eq!(a, b, "{p:?} must be seed-deterministic");
            let c = p.generate(43, 120_000.0);
            assert_ne!(a, c, "{p:?} must vary with the seed");
        }
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        for p in processes() {
            let t = p.generate(7, 90_000.0);
            assert!(!t.is_empty(), "{p:?} produced no arrivals");
            for w in t.arrivals().windows(2) {
                assert!(w[0].time_ms <= w[1].time_ms);
            }
            assert!(t.arrivals().last().unwrap().time_ms <= 90_000.0);
        }
    }

    #[test]
    fn poisson_and_diurnal_hit_their_mean_rate() {
        let p = ArrivalProcess::Poisson { rps: 5.0 }.generate(1, 300_000.0);
        assert!((p.mean_rps() - 5.0).abs() < 0.5, "rps = {}", p.mean_rps());
        // Over whole periods the sinusoid integrates out to the mean.
        let d = ArrivalProcess::Diurnal {
            rps: 5.0,
            period_ms: 30_000.0,
            amplitude: 0.9,
        }
        .generate(2, 300_000.0);
        assert!((d.mean_rps() - 5.0).abs() < 0.6, "rps = {}", d.mean_rps());
    }

    #[test]
    fn diurnal_peaks_and_troughs_follow_the_sinusoid() {
        let d = ArrivalProcess::Diurnal {
            rps: 6.0,
            period_ms: 120_000.0,
            amplitude: 1.0,
        }
        .generate(3, 120_000.0);
        let rows = d.bucket_counts(30_000.0);
        // Quarter-period buckets: [rising-peak, falling, trough, rising].
        assert!(
            rows[0].1 > 2 * rows[2].1,
            "peak bucket {} vs trough bucket {}",
            rows[0].1,
            rows[2].1
        );
    }

    #[test]
    fn flash_crowd_bursts_then_decays() {
        let f = ArrivalProcess::FlashCrowd {
            rps: 2.0,
            at_ms: 60_000.0,
            magnitude: 10.0,
            decay_ms: 8_000.0,
        }
        .generate(4, 180_000.0);
        let rows = f.bucket_counts(20_000.0);
        let before = rows[1].1; // steady state
        let burst = rows[3].1; // [60 s, 80 s): the crowd
        let after = rows[7].1; // long after: decayed back
        assert!(
            burst as f64 > 4.0 * before as f64,
            "burst {burst} vs steady {before}"
        );
        assert!(
            (after as f64) < 2.0 * before as f64 + 8.0,
            "decayed {after} vs steady {before}"
        );
    }

    #[test]
    fn mmpp_visits_both_rates() {
        let m = ArrivalProcess::Mmpp {
            states: vec![
                MmppState {
                    rps: 1.0,
                    mean_dwell_ms: 15_000.0,
                },
                MmppState {
                    rps: 20.0,
                    mean_dwell_ms: 15_000.0,
                },
            ],
        }
        .generate(5, 600_000.0);
        let counts: Vec<usize> = m.bucket_counts(10_000.0).iter().map(|r| r.1).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Some buckets sit in the slow state, some in the fast one.
        assert!(max >= 100, "fast-state bucket observed: {max}");
        assert!(min <= 30, "slow-state bucket observed: {min}");
    }

    #[test]
    fn peak_rps_matches_the_definition() {
        assert_eq!(ArrivalProcess::Poisson { rps: 3.0 }.peak_rps(), 3.0);
        assert_eq!(
            ArrivalProcess::FlashCrowd {
                rps: 3.0,
                at_ms: 0.0,
                magnitude: 10.0,
                decay_ms: 1.0
            }
            .peak_rps(),
            30.0
        );
    }
}
