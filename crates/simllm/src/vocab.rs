//! Token identifiers and vocabulary metadata.

use std::fmt;

/// A token identifier in the shared vocabulary.
///
/// Token ids are opaque; the substrate never materializes token *text* except
/// for demo rendering (see [`Vocab::render`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl fmt::Display for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Beginning-of-sequence token, used as the root of prompt-less trees.
pub const BOS_TOKEN: TokenId = TokenId(0);

/// End-of-sequence token. The serving layer forces it once a request reaches
/// its sampled output length.
pub const EOS_TOKEN: TokenId = TokenId(1);

/// Number of reserved special tokens at the bottom of the id space.
pub const NUM_SPECIAL_TOKENS: u32 = 2;

/// Vocabulary metadata.
///
/// The default size mirrors the Llama-3 tokenizer (128,256 entries); the
/// distributions in [`crate::dist`] are sparse so the size only affects tail
/// sampling and never costs O(|V|) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vocab {
    size: u32,
}

impl Vocab {
    /// Creates a vocabulary of `size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not leave room for the reserved special tokens.
    pub fn new(size: u32) -> Self {
        assert!(size > NUM_SPECIAL_TOKENS, "vocab must hold special tokens");
        Self { size }
    }

    /// The Llama-3 style default (128,256 tokens).
    pub fn llama3() -> Self {
        Self::new(128_256)
    }

    /// Total number of tokens.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `token` is a valid id in this vocabulary.
    pub fn contains(&self, token: TokenId) -> bool {
        token.0 < self.size
    }

    /// Renders a token as pseudo-text for demos and examples.
    ///
    /// Produces a deterministic lowercase pseudo-word so example binaries can
    /// print readable output streams without a real tokenizer.
    pub fn render(&self, token: TokenId) -> String {
        match token {
            BOS_TOKEN => "<bos>".to_string(),
            EOS_TOKEN => "<eos>".to_string(),
            TokenId(id) => {
                let mut h = crate::hash::mix64(u64::from(id) ^ 0x5EED);
                let len = 3 + (h % 5) as usize;
                let mut s = String::with_capacity(len);
                for _ in 0..len {
                    h = crate::hash::mix64(h);
                    let c = b'a' + (h % 26) as u8;
                    s.push(c as char);
                }
                s
            }
        }
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Self::llama3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_vocab_is_llama3_sized() {
        assert_eq!(Vocab::default().size(), 128_256);
    }

    #[test]
    fn contains_checks_bounds() {
        let v = Vocab::new(100);
        assert!(v.contains(TokenId(0)));
        assert!(v.contains(TokenId(99)));
        assert!(!v.contains(TokenId(100)));
    }

    #[test]
    fn render_is_deterministic_and_readable() {
        let v = Vocab::default();
        assert_eq!(v.render(TokenId(42)), v.render(TokenId(42)));
        assert_eq!(v.render(BOS_TOKEN), "<bos>");
        assert_eq!(v.render(EOS_TOKEN), "<eos>");
        let w = v.render(TokenId(1234));
        assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        assert!((3..=8).contains(&w.len()));
    }

    #[test]
    #[should_panic(expected = "special tokens")]
    fn tiny_vocab_rejected() {
        let _ = Vocab::new(1);
    }
}
