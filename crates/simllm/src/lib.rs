//! Synthetic language-model substrate for the AdaServe reproduction.
//!
//! The AdaServe paper evaluates SLO-customized speculative decoding with real
//! Llama/Qwen model pairs on A100 GPUs. This crate substitutes the *model*
//! half of that stack: a deterministic, hash-seeded pair of target and draft
//! language models whose joint statistics (top-token concentration, draft/
//! target divergence, acceptance-rate decay with speculation depth) are
//! controllable and calibrated to match published speculative-decoding
//! measurements.
//!
//! The key property preserved from the real system is that *all* decisions
//! made by a serving engine — which tokens to speculate, which to select for
//! verification, which get accepted — depend only on the target distribution
//! `p(· | context)` and the draft distribution `q(· | context)`. Both are
//! implemented here as pure functions of the request's content stream, so
//! every engine (AdaServe and each baseline) observes exactly the same
//! stochastic process, making comparisons fair and runs reproducible.
//!
//! # Architecture
//!
//! * [`vocab`] — token identifiers and vocabulary metadata.
//! * [`hash`] — the deterministic mixing primitives everything is seeded by.
//! * [`dist`] — sparse next-token distributions (top-K entries + uniform tail).
//! * [`lm`] — the [`lm::Lm`] trait, decoding contexts and content classes.
//! * [`target`] — the hash-seeded target model.
//! * [`draft`] — the divergence-controlled draft model.
//! * [`sampler`] — seeded sampling strategies (greedy, temperature, top-k).
//! * [`calib`] — empirical acceptance-rate estimation used for calibration.
//!
//! # Example
//!
//! ```
//! use simllm::{ContentClass, Lm, LmContext, ModelPair, TokenId};
//!
//! let pair = ModelPair::calibrated(42);
//! let ctx_tokens = vec![TokenId(5), TokenId(9), TokenId(11)];
//! let ctx = LmContext::new(7, ContentClass::Code, &ctx_tokens);
//! let p = pair.target().next_dist(&ctx);
//! let q = pair.draft().next_dist(&ctx);
//! // Draft and target agree on most of the mass for code-like content.
//! let overlap: f64 = p
//!     .entries()
//!     .iter()
//!     .map(|&(t, pp)| pp.min(q.prob(t)))
//!     .sum();
//! assert!(overlap > 0.5);
//! ```

pub mod calib;
pub mod dist;
pub mod draft;
pub mod hash;
pub mod lm;
pub mod memo;
pub mod sampler;
pub mod target;
pub mod vocab;

pub use calib::AcceptanceEstimate;
pub use dist::SparseDist;
pub use draft::DraftLm;
pub use hash::{mix64, seed_stream};
pub use lm::{ContentClass, Lm, LmContext};
pub use memo::{DistMemo, MemoStats};
pub use sampler::{sample_seeded, Sampler, SamplingMode};
pub use target::{TargetLm, TargetLmConfig};
pub use vocab::{TokenId, Vocab, BOS_TOKEN, EOS_TOKEN};

/// A matched (target, draft) model pair sharing one vocabulary.
///
/// Mirrors the paper's deployment setting: the draft model is the smallest
/// model of the same family (Llama-3.2-1B for Llama-3.1-70B, Qwen2.5-0.5B for
/// Qwen2.5-32B), i.e. trained on the same data with closely aligned logits
/// (paper §4.2, eq. 7). [`ModelPair::calibrated`] produces a pair whose
/// acceptance statistics match the published speculative-decoding regime.
#[derive(Debug, Clone)]
pub struct ModelPair {
    target: TargetLm,
    draft: DraftLm,
}

impl ModelPair {
    /// Creates a pair from an explicit target configuration and draft divergence.
    pub fn new(config: TargetLmConfig, divergence: f64) -> Self {
        let target = TargetLm::new(config);
        let draft = DraftLm::from_target(&target, divergence);
        Self { target, draft }
    }

    /// Creates the default calibrated pair used across experiments.
    ///
    /// Divergence is set so that a length-4 sequence speculation accepts
    /// roughly 2.5–3.5 tokens per verification on mixed content, matching the
    /// ranges reported for Llama/Qwen draft pairs (paper Fig. 12).
    pub fn calibrated(seed: u64) -> Self {
        Self::new(TargetLmConfig::default_with_seed(seed), 0.18)
    }

    /// The target (verified) model.
    pub fn target(&self) -> &TargetLm {
        &self.target
    }

    /// The draft (speculating) model.
    pub fn draft(&self) -> &DraftLm {
        &self.draft
    }

    /// Shared vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.target.vocab_size()
    }

    /// Aggregated hit/miss counters of every distribution memo in the
    /// pair: the (shared) target cache, the blended-draft cache and the
    /// draft's noise cache. Engines surface the resulting hit rate in
    /// their per-replica stats.
    pub fn dist_cache_stats(&self) -> MemoStats {
        // The draft's inner target shares the target's memo (one Arc), so
        // counting `self.target` once covers both consumers.
        let mut stats = self.target.cache_stats();
        stats.merge(self.draft.cache_stats());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_pair_shares_vocab() {
        let pair = ModelPair::calibrated(1);
        assert_eq!(pair.vocab_size(), pair.target().vocab_size());
        assert_eq!(pair.vocab_size(), pair.draft().vocab_size());
    }

    #[test]
    fn pair_is_deterministic_across_instances() {
        let a = ModelPair::calibrated(9);
        let b = ModelPair::calibrated(9);
        let tokens = vec![TokenId(3), TokenId(100), TokenId(7)];
        let ctx = LmContext::new(11, ContentClass::Chat, &tokens);
        assert_eq!(a.target().next_dist(&ctx), b.target().next_dist(&ctx));
        assert_eq!(a.draft().next_dist(&ctx), b.draft().next_dist(&ctx));
    }

    #[test]
    fn different_seeds_give_different_processes() {
        let a = ModelPair::calibrated(1);
        let b = ModelPair::calibrated(2);
        let tokens = vec![TokenId(3), TokenId(100), TokenId(7)];
        let ctx = LmContext::new(11, ContentClass::Chat, &tokens);
        assert_ne!(a.target().next_dist(&ctx), b.target().next_dist(&ctx));
    }
}
