//! Empirical acceptance-rate estimation.
//!
//! Calibration ties the synthetic model pair to published speculative-
//! decoding behaviour: for sequence speculation of length `n`, the expected
//! number of accepted tokens per verification should land in the 2.5–3.5
//! range reported for same-family Llama/Qwen draft pairs (paper Fig. 12 and
//! the vLLM-Spec baselines). This module measures those statistics directly
//! on a [`ModelPair`] so tests (and the DESIGN.md claims) are checkable.

use crate::lm::{ContentClass, Lm, LmContext};
use crate::sampler::sample_seeded;
use crate::vocab::TokenId;
use crate::ModelPair;

/// Result of an acceptance measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceEstimate {
    /// Content class measured.
    pub class: ContentClass,
    /// Speculation length used (draft chain length).
    pub spec_len: usize,
    /// Mean accepted tokens per verification, *excluding* the bonus token.
    pub mean_accepted: f64,
    /// Per-position acceptance rate of the first speculated token.
    pub first_token_rate: f64,
}

/// Measures chain-speculation acceptance for a model pair.
///
/// Simulates `trials` independent verification steps: the draft model greedily
/// proposes `spec_len` tokens, the target model samples its own token at each
/// position, and the chain is accepted up to the first mismatch (SpecInfer-
/// style multi-step verification, which is also what the serving engines use).
pub fn estimate_acceptance(
    pair: &ModelPair,
    class: ContentClass,
    spec_len: usize,
    trials: u64,
) -> AcceptanceEstimate {
    let mut total_accepted = 0u64;
    let mut first_accepts = 0u64;
    for trial in 0..trials {
        let stream_seed = crate::hash::combine(0xCA11_B8A7E, trial);
        // Independent random starting context per trial.
        let ctx_tokens: Vec<TokenId> = (0..4)
            .map(|i| TokenId((crate::hash::seed_stream(stream_seed, i) % 50_000) as u32 + 2))
            .collect();
        let accepted_prefix: Vec<TokenId> = ctx_tokens.clone();
        let mut scratch = Vec::new();
        // Draft proposes a greedy chain.
        let mut chain = Vec::with_capacity(spec_len);
        for _ in 0..spec_len {
            let ctx = LmContext::new(stream_seed, class, &accepted_prefix);
            let q = pair.draft().next_dist_extended(&ctx, &chain, &mut scratch);
            let t = q.top1();
            chain.push(t);
        }
        // Target verifies position by position.
        for (i, &proposed) in chain.iter().enumerate() {
            let ctx = LmContext::new(stream_seed, class, &accepted_prefix);
            let p = pair
                .target()
                .next_dist_extended(&ctx, &chain[..i], &mut scratch);
            let target_token = sample_seeded(&p, stream_seed, (ctx_tokens.len() + i) as u64);
            if target_token == proposed {
                total_accepted += 1;
                if i == 0 {
                    first_accepts += 1;
                }
            } else {
                break;
            }
        }
    }
    AcceptanceEstimate {
        class,
        spec_len,
        mean_accepted: total_accepted as f64 / trials as f64,
        first_token_rate: first_accepts as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_pair_matches_published_regime() {
        let pair = ModelPair::calibrated(2024);
        let est = estimate_acceptance(&pair, ContentClass::Chat, 4, 400);
        assert!(
            est.mean_accepted > 1.5 && est.mean_accepted < 3.2,
            "chat mean accepted = {}",
            est.mean_accepted
        );
    }

    #[test]
    fn code_accepts_more_than_news() {
        let pair = ModelPair::calibrated(2024);
        let code = estimate_acceptance(&pair, ContentClass::Code, 4, 400);
        let news = estimate_acceptance(&pair, ContentClass::News, 4, 400);
        assert!(
            code.mean_accepted > news.mean_accepted,
            "code {} !> news {}",
            code.mean_accepted,
            news.mean_accepted
        );
    }

    #[test]
    fn longer_chains_accept_more_in_total_but_saturate() {
        let pair = ModelPair::calibrated(2024);
        let short = estimate_acceptance(&pair, ContentClass::Chat, 2, 300);
        let long = estimate_acceptance(&pair, ContentClass::Chat, 8, 300);
        assert!(long.mean_accepted >= short.mean_accepted);
        // Acceptance saturates: doubling spec length does not double yield.
        assert!(long.mean_accepted < short.mean_accepted * 4.0);
    }

    #[test]
    fn first_token_rate_is_a_probability() {
        let pair = ModelPair::calibrated(2024);
        let est = estimate_acceptance(&pair, ContentClass::Code, 4, 200);
        assert!((0.0..=1.0).contains(&est.first_token_rate));
        assert!(
            est.first_token_rate > 0.3,
            "rate = {}",
            est.first_token_rate
        );
    }
}
