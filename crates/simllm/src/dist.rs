//! Sparse next-token distributions.
//!
//! Real LLM logits span a vocabulary of ~128k entries, but speculative
//! decoding only ever inspects the high-probability head: beam-search
//! speculation expands the top-w tokens and verification accepts tokens whose
//! mass is non-negligible. [`SparseDist`] therefore stores an explicit sorted
//! head of top-K tokens plus a uniform tail over the rest of the vocabulary,
//! giving O(K) distribution operations regardless of vocabulary size.

use crate::hash::mix64;
use crate::vocab::TokenId;

/// Relative tolerance used for normalization checks.
pub const NORM_EPS: f64 = 1e-9;

/// A sparse probability distribution over the vocabulary.
///
/// Invariants (enforced by constructors, validated by [`SparseDist::validate`]):
///
/// * `entries` are sorted by descending probability (ties broken by token id),
/// * token ids are unique and within the vocabulary,
/// * all probabilities are positive,
/// * head + tail mass sums to 1 within [`NORM_EPS`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDist {
    entries: Vec<(TokenId, f64)>,
    tail_mass: f64,
    vocab_size: u32,
}

impl SparseDist {
    /// Builds a distribution from raw (token, weight) pairs plus a tail weight.
    ///
    /// Weights are normalized; duplicate tokens are merged. `tail_weight`
    /// spreads uniformly over all tokens not present in `weights`.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero or any weight is negative/non-finite.
    pub fn from_weights(
        mut weights: Vec<(TokenId, f64)>,
        tail_weight: f64,
        vocab_size: u32,
    ) -> Self {
        assert!(tail_weight >= 0.0 && tail_weight.is_finite());
        for &(t, w) in &weights {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w} for {t}");
            assert!(t.0 < vocab_size, "token {t} out of vocab");
        }
        // Merge duplicates.
        weights.sort_by_key(|&(t, _)| t);
        weights.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        weights.retain(|&(_, w)| w > 0.0);
        let head: f64 = weights.iter().map(|&(_, w)| w).sum();
        let total = head + tail_weight;
        assert!(total > 0.0, "distribution has zero total mass");
        let mut entries: Vec<(TokenId, f64)> =
            weights.into_iter().map(|(t, w)| (t, w / total)).collect();
        Self::sort_entries(&mut entries);
        Self {
            entries,
            tail_mass: tail_weight / total,
            vocab_size,
        }
    }

    /// Builds a distribution that puts all mass on a single token.
    pub fn delta(token: TokenId, vocab_size: u32) -> Self {
        Self::from_weights(vec![(token, 1.0)], 0.0, vocab_size)
    }

    /// Fast path of [`SparseDist::from_weights`] for weights with
    /// **distinct tokens and strictly positive weights** (the hot-loop
    /// constructors: model heads, blends, residuals all produce such
    /// weights by construction).
    ///
    /// Bit-identical to `from_weights` on such input: the head mass is
    /// summed in token-sorted order exactly as `from_weights` does after
    /// its dedup pass, and both sort keys are total orders with no equal
    /// elements (tokens are distinct), so the unstable sorts used here
    /// reproduce the stable sorts' output without their merge-buffer
    /// allocations. Skips the dedup and retain passes entirely.
    pub(crate) fn from_distinct_weights(
        mut weights: Vec<(TokenId, f64)>,
        tail_weight: f64,
        vocab_size: u32,
    ) -> Self {
        debug_assert!(tail_weight >= 0.0 && tail_weight.is_finite());
        weights.sort_unstable_by_key(|&(t, _)| t);
        debug_assert!(
            weights.windows(2).all(|w| w[0].0 != w[1].0),
            "from_distinct_weights requires distinct tokens"
        );
        debug_assert!(
            weights
                .iter()
                .all(|&(t, w)| w > 0.0 && w.is_finite() && t.0 < vocab_size),
            "from_distinct_weights requires positive weights within vocab"
        );
        let head: f64 = weights.iter().map(|&(_, w)| w).sum();
        let total = head + tail_weight;
        assert!(total > 0.0, "distribution has zero total mass");
        for w in &mut weights {
            w.1 /= total;
        }
        weights.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probs")
                .then_with(|| a.0.cmp(&b.0))
        });
        Self {
            entries: weights,
            tail_mass: tail_weight / total,
            vocab_size,
        }
    }

    /// Raw constructor for callers that already hold normalized,
    /// descending-sorted head entries and a final tail mass (the fused
    /// draft-blend path). Invariants are debug-checked via `validate`.
    pub(crate) fn from_parts(
        entries: Vec<(TokenId, f64)>,
        tail_mass: f64,
        vocab_size: u32,
    ) -> Self {
        let dist = Self {
            entries,
            tail_mass,
            vocab_size,
        };
        debug_assert_eq!(dist.validate(), Ok(()));
        dist
    }

    fn sort_entries(entries: &mut [(TokenId, f64)]) {
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite probs")
                .then_with(|| a.0.cmp(&b.0))
        });
    }

    /// The explicit head entries, sorted by descending probability.
    pub fn entries(&self) -> &[(TokenId, f64)] {
        &self.entries
    }

    /// Mass spread uniformly over tokens absent from the head.
    pub fn tail_mass(&self) -> f64 {
        self.tail_mass
    }

    /// Vocabulary size this distribution is defined over.
    pub fn vocab_size(&self) -> u32 {
        self.vocab_size
    }

    /// Probability of `token`.
    pub fn prob(&self, token: TokenId) -> f64 {
        for &(t, p) in &self.entries {
            if t == token {
                return p;
            }
        }
        let tail_count = self.vocab_size as usize - self.entries.len();
        if tail_count == 0 {
            0.0
        } else {
            self.tail_mass / tail_count as f64
        }
    }

    /// The most likely token.
    pub fn top1(&self) -> TokenId {
        self.entries.first().map(|&(t, _)| t).unwrap_or(TokenId(0))
    }

    /// The `k` most likely tokens with their probabilities.
    pub fn top_k(&self, k: usize) -> &[(TokenId, f64)] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Shannon entropy in nats (tail counted as a uniform block).
    pub fn entropy(&self) -> f64 {
        let mut h = 0.0;
        for &(_, p) in &self.entries {
            if p > 0.0 {
                h -= p * p.ln();
            }
        }
        let tail_count = self.vocab_size as usize - self.entries.len();
        if self.tail_mass > 0.0 && tail_count > 0 {
            let per = self.tail_mass / tail_count as f64;
            h -= self.tail_mass * per.ln();
        }
        h
    }

    /// Samples a token from the inverse CDF at `u ∈ [0, 1)`.
    ///
    /// Tail samples pick a deterministic pseudo-uniform token outside the
    /// head (linear probing resolves the rare collision with a head token).
    pub fn sample(&self, u: f64) -> TokenId {
        debug_assert!((0.0..1.0).contains(&u));
        let mut acc = 0.0;
        for &(t, p) in &self.entries {
            acc += p;
            if u < acc {
                return t;
            }
        }
        // Tail: derive a pseudo-token from the residual position.
        let residual = if self.tail_mass > 0.0 {
            (u - acc).max(0.0) / self.tail_mass
        } else {
            0.0
        };
        let mut candidate = mix64((residual * (1u64 << 52) as f64) as u64 ^ 0x7A11_5EED_0BAD_F00D)
            % u64::from(self.vocab_size);
        // Probe against the head in place: the head is tiny, and this runs
        // on every tail sample — no temporary token Vec.
        while self
            .entries
            .iter()
            .any(|&(t, _)| u64::from(t.0) == candidate)
        {
            candidate = (candidate + 1) % u64::from(self.vocab_size);
        }
        TokenId(candidate as u32)
    }

    /// Blends two distributions: `(1 - alpha) * self + alpha * other`.
    ///
    /// Used to derive draft distributions from target distributions with a
    /// controlled divergence. The result's head is the union of both heads.
    pub fn blend(&self, other: &SparseDist, alpha: f64) -> SparseDist {
        assert!((0.0..=1.0).contains(&alpha));
        assert_eq!(self.vocab_size, other.vocab_size);
        let mut weights: Vec<(TokenId, f64)> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        for &(t, p) in &self.entries {
            weights.push((t, (1.0 - alpha) * p + alpha * other.head_prob(t)));
        }
        for &(t, q) in &other.entries {
            if self.head_prob(t) == 0.0 {
                weights.push((t, alpha * q));
            }
        }
        let tail = (1.0 - alpha) * self.tail_mass + alpha * other.tail_mass;
        if alpha == 0.0 || alpha == 1.0 {
            // Degenerate mixtures produce zero weights that must be
            // dropped; only the general constructor handles that.
            return SparseDist::from_weights(weights, tail, self.vocab_size);
        }
        // With 0 < alpha < 1 the union head has distinct tokens (self's
        // head, plus other-only tokens) and strictly positive weights:
        // take the sort-light constructor.
        SparseDist::from_distinct_weights(weights, tail, self.vocab_size)
    }

    /// Probability of `token` counting only the explicit head (0 if in tail).
    fn head_prob(&self, token: TokenId) -> f64 {
        self.entries
            .iter()
            .find(|&&(t, _)| t == token)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Truncates to the top-`k` head and renormalizes head + tail.
    pub fn truncate_top_k(&self, k: usize) -> SparseDist {
        let kept: Vec<(TokenId, f64)> = self.top_k(k).to_vec();
        let dropped: f64 = self.entries[k.min(self.entries.len())..]
            .iter()
            .map(|&(_, p)| p)
            .sum();
        SparseDist::from_weights(kept, self.tail_mass + dropped, self.vocab_size)
    }

    /// Applies a temperature `tau` to the head and renormalizes.
    ///
    /// `tau < 1` sharpens, `tau > 1` flattens. The tail mass is scaled to
    /// keep head/tail balance consistent with the sharpened head.
    pub fn with_temperature(&self, tau: f64) -> SparseDist {
        assert!(tau > 0.0);
        let weights: Vec<(TokenId, f64)> = self
            .entries
            .iter()
            .map(|&(t, p)| (t, p.powf(1.0 / tau)))
            .collect();
        let tail = self.tail_mass.powf(1.0 / tau).min(1.0);
        SparseDist::from_weights(weights, tail, self.vocab_size)
    }

    /// Residual distribution `norm(max(self − other, 0))` used by
    /// rejection-sampling speculative decoding.
    ///
    /// After a draft proposal from `other` is rejected, the target resamples
    /// from this residual (Leviathan et al. \[23\]; SpecInfer's multi-branch
    /// variant applies it per sibling). Head entries subtract pointwise; the
    /// tails subtract as uniform blocks (exact when both tails spread over
    /// nearly the same complement set, which holds here since heads are
    /// tiny relative to the vocabulary).
    ///
    /// Returns `None` if the residual has (numerically) no mass, i.e.
    /// `other` dominates `self` everywhere.
    pub fn residual(&self, other: &SparseDist) -> Option<SparseDist> {
        assert_eq!(self.vocab_size, other.vocab_size);
        let mut weights: Vec<(TokenId, f64)> = Vec::with_capacity(self.entries.len());
        let tail_count = (self.vocab_size as usize)
            .saturating_sub(self.entries.len())
            .max(1) as f64;
        let other_tail_per = other.tail_mass
            / ((other.vocab_size as usize)
                .saturating_sub(other.entries.len())
                .max(1) as f64);
        for &(t, p) in &self.entries {
            let q = if other.head_prob(t) > 0.0 {
                other.head_prob(t)
            } else {
                other_tail_per
            };
            let r = p - q;
            if r > 0.0 {
                weights.push((t, r));
            }
        }
        // Tokens only in `other`'s head contribute nothing (self's mass there
        // is tail-level, almost surely below other's head mass).
        let self_tail_per = self.tail_mass / tail_count;
        let tail = (self_tail_per - other_tail_per).max(0.0) * tail_count;
        let total: f64 = weights.iter().map(|&(_, w)| w).sum::<f64>() + tail;
        if total <= 1e-12 {
            return None;
        }
        // Residual weights are distinct (drawn from self's head) and kept
        // only when strictly positive.
        Some(SparseDist::from_distinct_weights(
            weights,
            tail,
            self.vocab_size,
        ))
    }

    /// Total-variation overlap `Σ min(self, other)` over the union head
    /// (the expected single-draft acceptance rate of rejection sampling).
    pub fn overlap(&self, other: &SparseDist) -> f64 {
        let mut tokens: Vec<TokenId> = self.entries.iter().map(|&(t, _)| t).collect();
        tokens.extend(other.entries.iter().map(|&(t, _)| t));
        tokens.sort();
        tokens.dedup();
        let head: f64 = tokens
            .iter()
            .map(|&t| self.prob(t).min(other.prob(t)))
            .sum();
        head + self.tail_mass.min(other.tail_mass)
    }

    /// Checks all structural invariants, returning a description on failure.
    pub fn validate(&self) -> Result<(), String> {
        let mut total = self.tail_mass;
        let mut prev = f64::INFINITY;
        let mut seen = std::collections::HashSet::new();
        for &(t, p) in &self.entries {
            if p <= 0.0 || !p.is_finite() {
                return Err(format!("non-positive prob {p} for {t}"));
            }
            if p > prev + NORM_EPS {
                return Err("entries not sorted by descending prob".into());
            }
            if !seen.insert(t) {
                return Err(format!("duplicate token {t}"));
            }
            if t.0 >= self.vocab_size {
                return Err(format!("token {t} outside vocab"));
            }
            prev = p;
            total += p;
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("mass sums to {total}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(entries: Vec<(u32, f64)>, tail: f64) -> SparseDist {
        SparseDist::from_weights(
            entries.into_iter().map(|(t, w)| (TokenId(t), w)).collect(),
            tail,
            1000,
        )
    }

    #[test]
    fn from_weights_normalizes_and_sorts() {
        let dist = d(vec![(5, 1.0), (3, 3.0)], 1.0);
        assert!(dist.validate().is_ok());
        assert_eq!(dist.top1(), TokenId(3));
        assert!((dist.prob(TokenId(3)) - 0.6).abs() < 1e-12);
        assert!((dist.prob(TokenId(5)) - 0.2).abs() < 1e-12);
        assert!((dist.tail_mass() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_merged() {
        let dist = d(vec![(5, 1.0), (5, 1.0)], 0.0);
        assert_eq!(dist.entries().len(), 1);
        assert!((dist.prob(TokenId(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_walks_the_cdf() {
        let dist = d(vec![(3, 0.6), (5, 0.3)], 0.1);
        assert_eq!(dist.sample(0.0), TokenId(3));
        assert_eq!(dist.sample(0.59), TokenId(3));
        assert_eq!(dist.sample(0.61), TokenId(5));
        let tail_token = dist.sample(0.95);
        assert_ne!(tail_token, TokenId(3));
        assert_ne!(tail_token, TokenId(5));
    }

    #[test]
    fn blend_interpolates() {
        let p = d(vec![(1, 1.0)], 0.0);
        let q = d(vec![(2, 1.0)], 0.0);
        let half = p.blend(&q, 0.5);
        assert!((half.prob(TokenId(1)) - 0.5).abs() < 1e-12);
        assert!((half.prob(TokenId(2)) - 0.5).abs() < 1e-12);
        assert!(half.validate().is_ok());
    }

    #[test]
    fn blend_alpha_zero_is_identity_on_head() {
        let p = d(vec![(1, 0.7), (2, 0.2)], 0.1);
        let q = d(vec![(9, 1.0)], 0.0);
        let b = p.blend(&q, 0.0);
        assert!((b.prob(TokenId(1)) - 0.7).abs() < 1e-12);
        assert!((b.prob(TokenId(9)) - 0.0001).abs() < 1e-3);
    }

    #[test]
    fn truncate_moves_mass_to_tail() {
        let dist = d(vec![(1, 0.5), (2, 0.3), (3, 0.2)], 0.0);
        let t = dist.truncate_top_k(1);
        assert_eq!(t.entries().len(), 1);
        assert!((t.tail_mass() - 0.5).abs() < 1e-12);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn entropy_of_delta_is_zero() {
        let dist = SparseDist::delta(TokenId(7), 100);
        assert!(dist.entropy().abs() < 1e-12);
    }

    #[test]
    fn temperature_sharpens_and_flattens() {
        let dist = d(vec![(1, 0.6), (2, 0.4)], 0.0);
        let sharp = dist.with_temperature(0.5);
        let flat = dist.with_temperature(2.0);
        assert!(sharp.prob(TokenId(1)) > dist.prob(TokenId(1)));
        assert!(flat.prob(TokenId(1)) < dist.prob(TokenId(1)));
    }

    #[test]
    fn residual_removes_dominated_mass() {
        let p = d(vec![(1, 0.6), (2, 0.4)], 0.0);
        let q = d(vec![(1, 1.0)], 0.0);
        let r = p.residual(&q).expect("residual exists");
        // Token 1 is dominated by q; all residual mass concentrates on 2.
        assert!(r.prob(TokenId(2)) > 0.99);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn residual_of_self_is_none() {
        let p = d(vec![(1, 0.6), (2, 0.4)], 0.0);
        assert!(p.residual(&p).is_none());
    }

    #[test]
    fn overlap_is_symmetric_and_bounded() {
        let p = d(vec![(1, 0.6), (2, 0.4)], 0.0);
        let q = d(vec![(1, 0.3), (3, 0.7)], 0.0);
        let o1 = p.overlap(&q);
        let o2 = q.overlap(&p);
        assert!((o1 - o2).abs() < 1e-12);
        assert!((o1 - 0.3).abs() < 1e-12);
        assert!((p.overlap(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_bad_mass() {
        let mut dist = d(vec![(1, 0.6), (2, 0.4)], 0.0);
        dist.tail_mass = 0.5;
        assert!(dist.validate().is_err());
    }
}
