//! The language-model interface: contexts, content classes and the [`Lm`] trait.

use crate::dist::SparseDist;
use crate::vocab::TokenId;

/// Content class of a request's text stream.
///
/// The paper's three request categories carry different *content*: code
/// completions (HumanEval), instruction-following chat (Alpaca) and news
/// summarization (CNN/DailyMail). Content affects two statistics that matter
/// for speculative decoding:
///
/// * **target predictability** — code is low-entropy (high top-1 mass), prose
///   is flatter;
/// * **draft alignment** — published acceptance rates are highest on code and
///   lowest on long-form summarization.
///
/// Each class therefore selects a (peakedness, divergence-multiplier) pair in
/// the synthetic models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentClass {
    /// Code completion (HumanEval-like): highly predictable continuations.
    Code,
    /// Conversational/instruction content (Alpaca-like).
    Chat,
    /// Long-document summarization content (CNN/DailyMail-like).
    News,
}

impl ContentClass {
    /// All classes, in a stable order.
    pub const ALL: [ContentClass; 3] = [ContentClass::Code, ContentClass::Chat, ContentClass::News];

    /// Geometric decay ratio of the head probabilities: larger = flatter.
    ///
    /// The head of the next-token distribution follows `p_i ∝ r^i`; code uses
    /// a small ratio (top-1 dominant), summaries a larger one. Values are
    /// calibrated so that per-token acceptance under SpecInfer-style match
    /// verification (≈ target top-1 mass for an aligned draft) lands at
    /// ~0.85 / ~0.75 / ~0.68 for code / chat / news, which reproduces the
    /// published 2–3 accepted tokens per length-4 sequence speculation.
    pub fn head_decay(self) -> f64 {
        match self {
            ContentClass::Code => 0.10,
            ContentClass::Chat => 0.20,
            ContentClass::News => 0.30,
        }
    }

    /// Multiplier on the model pair's base draft divergence.
    pub fn divergence_scale(self) -> f64 {
        match self {
            ContentClass::Code => 0.6,
            ContentClass::Chat => 1.0,
            ContentClass::News => 1.4,
        }
    }

    /// Stable small integer id (used in hashing).
    pub fn id(self) -> u64 {
        match self {
            ContentClass::Code => 0,
            ContentClass::Chat => 1,
            ContentClass::News => 2,
        }
    }
}

/// A decoding context: everything the next-token distribution conditions on.
///
/// `stream_seed` identifies the request's content stream (two requests with
/// different seeds are independent processes); `tokens` is the generated
/// sequence so far. Only the last [`LmContext::MARKOV_ORDER`] tokens influence
/// the distribution, mirroring the locality of n-gram statistics while keeping
/// hashing O(1).
#[derive(Debug, Clone, Copy)]
pub struct LmContext<'a> {
    /// Seed identifying this request's content stream.
    pub stream_seed: u64,
    /// Content class of the stream.
    pub class: ContentClass,
    /// The token sequence decoded so far (prompt + generated).
    pub tokens: &'a [TokenId],
}

impl<'a> LmContext<'a> {
    /// Number of trailing tokens the distribution conditions on.
    pub const MARKOV_ORDER: usize = 6;

    /// Creates a context.
    pub fn new(stream_seed: u64, class: ContentClass, tokens: &'a [TokenId]) -> Self {
        Self {
            stream_seed,
            class,
            tokens,
        }
    }

    /// The trailing window of tokens the models condition on.
    pub fn window(&self) -> &'a [TokenId] {
        let n = self.tokens.len();
        &self.tokens[n.saturating_sub(Self::MARKOV_ORDER)..]
    }

    /// Deterministic 64-bit digest of everything the distribution
    /// conditions on: stream seed, content class and the trailing
    /// [`LmContext::MARKOV_ORDER`]-token window.
    ///
    /// Runs once per simulated model forward, so it hashes the window in
    /// place ([`crate::hash::hash_token_iter`]) — no temporary `Vec`. The
    /// produced values are pinned by a unit test: calibrated token streams
    /// are pure functions of these hashes, so they must never shift.
    pub fn hash(&self) -> u64 {
        crate::hash::hash_token_iter(
            crate::hash::combine(self.stream_seed, self.class.id() ^ 0xC0DE_0001_5A17),
            self.window().iter().map(|t| t.0),
        )
    }
}

/// A language model: maps contexts to next-token distributions.
///
/// Implementations must be pure: the same context always yields the same
/// distribution. This is what makes the whole reproduction deterministic.
pub trait Lm {
    /// Vocabulary size the model emits over.
    fn vocab_size(&self) -> u32;

    /// Next-token distribution for `ctx`.
    fn next_dist(&self, ctx: &LmContext<'_>) -> SparseDist;

    /// Shared-ownership variant of [`Lm::next_dist`].
    ///
    /// Memoizing implementations ([`crate::TargetLm`], [`crate::DraftLm`])
    /// override this to hand out an `Arc` clone of the cached distribution —
    /// a cache hit then costs a refcount bump instead of copying the head
    /// entries. The default wraps [`Lm::next_dist`] so plain models need no
    /// changes.
    fn next_dist_arc(&self, ctx: &LmContext<'_>) -> std::sync::Arc<SparseDist> {
        std::sync::Arc::new(self.next_dist(ctx))
    }

    /// Convenience: distribution for a context extended by `extra` tokens.
    ///
    /// Beam search needs `p(· | prefix ++ hypothesis)` for many hypotheses;
    /// this default assembles the extended token slice in a scratch buffer.
    fn next_dist_extended(
        &self,
        ctx: &LmContext<'_>,
        extra: &[TokenId],
        scratch: &mut Vec<TokenId>,
    ) -> SparseDist {
        scratch.clear();
        scratch.extend_from_slice(ctx.window());
        scratch.extend_from_slice(extra);
        let ext = LmContext::new(ctx.stream_seed, ctx.class, scratch);
        self.next_dist(&ext)
    }

    /// Shared-ownership variant of [`Lm::next_dist_extended`] (see
    /// [`Lm::next_dist_arc`]); the hot speculation/verification loops use
    /// this so memo hits stay allocation-free.
    fn next_dist_extended_arc(
        &self,
        ctx: &LmContext<'_>,
        extra: &[TokenId],
        scratch: &mut Vec<TokenId>,
    ) -> std::sync::Arc<SparseDist> {
        scratch.clear();
        scratch.extend_from_slice(ctx.window());
        scratch.extend_from_slice(extra);
        let ext = LmContext::new(ctx.stream_seed, ctx.class, scratch);
        self.next_dist_arc(&ext)
    }

    /// Fills `out` with the top-`w` `(token, probability)` entries of the
    /// extended context's distribution — **identical values and order**
    /// to `self.next_dist_extended(..).top_k(w)`.
    ///
    /// Beam-search speculation consumes nothing but the top-`w` head of
    /// each draft distribution, so mixture models
    /// ([`crate::DraftLm`]) override this with a fused partial selection
    /// that never materializes (or sorts) the full blended head. The
    /// default delegates to the full distribution.
    fn top_w_extended(
        &self,
        ctx: &LmContext<'_>,
        extra: &[TokenId],
        w: usize,
        scratch: &mut Vec<TokenId>,
        out: &mut Vec<(TokenId, f64)>,
    ) {
        let dist = self.next_dist_extended_arc(ctx, extra, scratch);
        out.clear();
        out.extend_from_slice(dist.top_k(w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_takes_trailing_tokens() {
        let tokens: Vec<TokenId> = (0..10).map(TokenId).collect();
        let ctx = LmContext::new(1, ContentClass::Chat, &tokens);
        assert_eq!(ctx.window().len(), LmContext::MARKOV_ORDER);
        assert_eq!(ctx.window()[0], TokenId(4));
    }

    #[test]
    fn short_context_window_is_whole_sequence() {
        let tokens = vec![TokenId(3)];
        let ctx = LmContext::new(1, ContentClass::Chat, &tokens);
        assert_eq!(ctx.window(), &tokens[..]);
    }

    #[test]
    fn hash_matches_collected_window_reference() {
        // The in-place window hash must equal hashing the collected window
        // through the slice API — same mixing, no temporary Vec.
        let tokens: Vec<TokenId> = (0..10).map(|i| TokenId(i * 17 + 3)).collect();
        for n in 0..=tokens.len() {
            for class in ContentClass::ALL {
                let ctx = LmContext::new(99, class, &tokens[..n]);
                let window: Vec<u32> = ctx.window().iter().map(|t| t.0).collect();
                let reference = crate::hash::hash_tokens(
                    crate::hash::combine(99, class.id() ^ 0xC0DE_0001_5A17),
                    &window,
                );
                assert_eq!(ctx.hash(), reference, "n = {n}, class = {class:?}");
            }
        }
    }

    #[test]
    fn hash_values_are_pinned() {
        // Calibrated token streams are pure functions of these hashes;
        // if any of them shifts, every calibrated experiment shifts with
        // it. Values recorded from the original Vec-collecting hash.
        let toks: Vec<TokenId> = [3u32, 100, 7, 9, 11, 13, 15]
            .iter()
            .map(|&t| TokenId(t))
            .collect();
        let cases: [(u64, ContentClass, usize, u64); 6] = [
            (0x0, ContentClass::Code, 0, 0x86af9e4d4f8ec6a5),
            (0x7, ContentClass::Chat, 1, 0xb7649d27b0d8945d),
            (0x7, ContentClass::Chat, 6, 0x7cd9600560436186),
            (0x7, ContentClass::Chat, 7, 0x8ec9dd1fba3da3ad),
            (0x2a, ContentClass::News, 7, 0x36f107a869ccd9e8),
            (0xdeadbeef, ContentClass::Code, 3, 0xcc091b4e338bcb59),
        ];
        for (seed, class, n, expected) in cases {
            let ctx = LmContext::new(seed, class, &toks[..n]);
            assert_eq!(
                ctx.hash(),
                expected,
                "hash shifted for ({seed:#x}, {class:?}, {n})"
            );
        }
    }

    #[test]
    fn class_parameters_are_ordered_by_predictability() {
        assert!(ContentClass::Code.head_decay() < ContentClass::Chat.head_decay());
        assert!(ContentClass::Chat.head_decay() < ContentClass::News.head_decay());
        assert!(ContentClass::Code.divergence_scale() < ContentClass::News.divergence_scale());
    }
}
