//! Seeded sampling strategies.
//!
//! Verification outcomes must be reproducible *and* consistent across serving
//! engines: the target model's "sampled" token at a given position of a given
//! request is a property of the request, not of which engine serves it.
//! [`sample_seeded`] therefore derives the sampling uniform from
//! `(stream_seed, position)` rather than from mutable RNG state.

use crate::dist::SparseDist;
use crate::hash::{combine, unit_f64};
use crate::vocab::TokenId;

/// Decoding strategy applied on top of a raw distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingMode {
    /// Always pick the most likely token.
    Greedy,
    /// Sample from the full distribution at the given temperature.
    Temperature(f64),
    /// Restrict to the top-k tokens, then sample at temperature 1.
    TopK(usize),
}

impl Default for SamplingMode {
    fn default() -> Self {
        SamplingMode::Temperature(1.0)
    }
}

/// A deterministic sampler bound to a stream seed.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    mode: SamplingMode,
    stream_seed: u64,
}

impl Sampler {
    /// Creates a sampler for one request stream.
    pub fn new(mode: SamplingMode, stream_seed: u64) -> Self {
        Self { mode, stream_seed }
    }

    /// The sampling mode.
    pub fn mode(&self) -> SamplingMode {
        self.mode
    }

    /// Samples the token at `position` of the stream from `dist`.
    pub fn sample(&self, dist: &SparseDist, position: u64) -> TokenId {
        match self.mode {
            SamplingMode::Greedy => dist.top1(),
            SamplingMode::Temperature(tau) => {
                let d = if (tau - 1.0).abs() < 1e-12 {
                    dist.clone()
                } else {
                    dist.with_temperature(tau)
                };
                sample_seeded(&d, self.stream_seed, position)
            }
            SamplingMode::TopK(k) => {
                // Restrict support to the head (no tail) and renormalize.
                let kept = dist.top_k(k).to_vec();
                let d = SparseDist::from_weights(kept, 0.0, dist.vocab_size());
                sample_seeded(&d, self.stream_seed, position)
            }
        }
    }
}

/// Samples `dist` with the uniform derived from `(stream_seed, position)`.
pub fn sample_seeded(dist: &SparseDist, stream_seed: u64, position: u64) -> TokenId {
    let u = unit_f64(combine(stream_seed ^ 0x5A3B_1E0F, position));
    dist.sample(u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> SparseDist {
        SparseDist::from_weights(
            vec![(TokenId(3), 0.5), (TokenId(4), 0.3), (TokenId(5), 0.15)],
            0.05,
            1000,
        )
    }

    #[test]
    fn greedy_picks_top1() {
        let s = Sampler::new(SamplingMode::Greedy, 1);
        assert_eq!(s.sample(&dist(), 0), TokenId(3));
        assert_eq!(s.sample(&dist(), 99), TokenId(3));
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let s = Sampler::new(SamplingMode::Temperature(1.0), 42);
        let a = s.sample(&dist(), 7);
        let b = s.sample(&dist(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_positions_vary() {
        let s = Sampler::new(SamplingMode::Temperature(1.0), 42);
        let samples: std::collections::HashSet<_> =
            (0..100).map(|i| s.sample(&dist(), i)).collect();
        assert!(samples.len() > 1, "all positions sampled the same token");
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let d = dist();
        let n = 50_000u64;
        let mut count3 = 0u64;
        for i in 0..n {
            if sample_seeded(&d, 9, i) == TokenId(3) {
                count3 += 1;
            }
        }
        let freq = count3 as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn top_k_restricts_support() {
        let s = Sampler::new(SamplingMode::TopK(1), 42);
        for i in 0..50 {
            assert_eq!(s.sample(&dist(), i), TokenId(3));
        }
    }
}
