//! The divergence-controlled draft (speculating) language model.

use crate::dist::SparseDist;
use crate::lm::{Lm, LmContext};
use crate::memo::{DistMemo, MemoStats};
use crate::target::{TargetLm, TargetLmConfig};
use std::sync::Arc;

/// The draft model: a perturbed view of the target model.
///
/// Real draft models are smaller members of the same family, distilled or
/// co-trained so their logits track the target's (paper §4.2: "the logits of
/// the draft model are accurate surrogates for estimating f(v)"). We model
/// this as a pointwise mixture
///
/// ```text
/// q(· | ctx) = (1 - δ_c) · p(· | ctx) + δ_c · noise(· | ctx)
/// ```
///
/// where `p` is the target distribution, `noise` is an independent hash model
/// over the same vocabulary, and the effective divergence `δ_c` scales with
/// the content class `c` (code drafts align best, long-form prose worst).
/// δ directly controls the expected acceptance rate, making calibration to
/// published speculative-decoding numbers a one-parameter fit.
#[derive(Debug)]
pub struct DraftLm {
    target: TargetLm,
    noise: TargetLm,
    /// Base divergence δ before per-class scaling.
    divergence: f64,
    /// Memo of the *blended* draft distribution (shared across clones).
    /// A hit skips the target lookup, the noise lookup and the mixture
    /// entirely; the inner `target`'s own memo is shared with the model
    /// pair's target, so verification reuses draft-pass work.
    memo: Arc<DistMemo>,
    /// Reusable buffers of the fused top-`w` path (never cloned; a clone
    /// starts with cold buffers).
    scratch: std::sync::Mutex<TopWScratch>,
}

impl Clone for DraftLm {
    fn clone(&self) -> Self {
        Self {
            target: self.target.clone(),
            noise: self.noise.clone(),
            divergence: self.divergence,
            memo: Arc::clone(&self.memo),
            scratch: std::sync::Mutex::new(TopWScratch::default()),
        }
    }
}

/// Scratch buffers of [`DraftLm::top_w_extended`]'s fused blend.
#[derive(Debug, Default)]
struct TopWScratch {
    /// Target head entries re-sorted by token id (merge order).
    p_sorted: Vec<(crate::TokenId, f64)>,
    /// Noise head probabilities, token-sorted.
    noise: Vec<(crate::TokenId, f64)>,
    /// Blended union head (weights, then normalized probabilities).
    merged: Vec<(crate::TokenId, f64)>,
}

impl DraftLm {
    /// Derives a draft model from a target model with base divergence `δ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ δ ≤ 1`.
    pub fn from_target(target: &TargetLm, divergence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&divergence),
            "divergence must be in [0, 1]"
        );
        let mut noise_config: TargetLmConfig = *target.config();
        // The noise model is an independent process: different seed, flatter head.
        noise_config.seed = crate::hash::mix64(target.config().seed ^ 0xD12A_F7ED);
        noise_config.weight_jitter = 0.8;
        Self {
            // Cloning shares the target's distribution memo: contexts the
            // draft pass evaluates are cache hits for verification.
            target: target.clone(),
            noise: TargetLm::new(noise_config),
            divergence,
            memo: DistMemo::shared(),
            scratch: std::sync::Mutex::new(TopWScratch::default()),
        }
    }

    /// Base (class-unscaled) divergence δ.
    pub fn divergence(&self) -> f64 {
        self.divergence
    }

    /// Hit/miss counters of the blended-draft distribution memo. (The
    /// inner target model's memo is shared with the pair's target and
    /// reported there; the noise model is fused into the blend and never
    /// caches separately.)
    pub fn cache_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// The miss path of the draft memo: the mixture
    /// `(1 − δ)·p + δ·noise`, fused so the noise model's head never
    /// becomes an intermediate [`SparseDist`].
    ///
    /// Bit-identical to `p.blend(&noise_dist, delta)`: probabilities come
    /// from the same token-sorted construction, membership tests match
    /// `head_prob(t) == 0` exactly (head probabilities are strictly
    /// positive), and the final constructor is the order-insensitive
    /// distinct-weights path.
    fn compute_blend(&self, ctx: &LmContext<'_>, delta: f64) -> SparseDist {
        let p = self.target.next_dist_arc(ctx);
        let hn = self.noise.dist_key(ctx);
        let (noise_probs, noise_tail) = self.noise.head_probs_token_sorted(hn, ctx.class);
        let mut weights: Vec<(crate::TokenId, f64)> =
            Vec::with_capacity(p.entries().len() + noise_probs.len());
        // Noise heads are at most a few dozen entries: a u64 marks which
        // of them also appear in the target head.
        debug_assert!(noise_probs.len() <= 64, "noise head exceeds marker");
        let mut in_target = 0u64;
        for &(t, pp) in p.entries() {
            let q = match noise_probs.binary_search_by_key(&t, |e| e.0) {
                Ok(i) => {
                    in_target |= 1 << i;
                    noise_probs[i].1
                }
                Err(_) => 0.0,
            };
            weights.push((t, (1.0 - delta) * pp + delta * q));
        }
        for (i, &(t, q)) in noise_probs.iter().enumerate() {
            if in_target & (1 << i) == 0 {
                weights.push((t, delta * q));
            }
        }
        let tail = (1.0 - delta) * p.tail_mass() + delta * noise_tail;
        SparseDist::from_distinct_weights(weights, tail, self.target.vocab_size())
    }

    /// Effective divergence for a content class, clamped to [0, 1].
    pub fn effective_divergence(&self, class: crate::ContentClass) -> f64 {
        (self.divergence * class.divergence_scale()).clamp(0.0, 1.0)
    }
}

impl Lm for DraftLm {
    fn vocab_size(&self) -> u32 {
        self.target.vocab_size()
    }

    fn next_dist(&self, ctx: &LmContext<'_>) -> SparseDist {
        (*self.next_dist_arc(ctx)).clone()
    }

    fn next_dist_arc(&self, ctx: &LmContext<'_>) -> Arc<SparseDist> {
        let delta = self.effective_divergence(ctx.class);
        if delta == 0.0 {
            return self.target.next_dist_arc(ctx);
        }
        // ctx.hash() already folds in class and stream; the salt keeps the
        // key space disjoint from the raw context hash.
        let key = crate::hash::mix64(ctx.hash() ^ 0xD4AF_7B1E_57D1_57D1);
        self.memo.get_or_compute(key, || {
            if delta >= 1.0 || self.noise.config().head_width > 64 {
                // Degenerate mixtures (blend must drop the zero-weight
                // target head) and heads too wide for the fused path's
                // 64-bit membership marker take the general route.
                let p = self.target.next_dist(ctx);
                let noise = self.noise.next_dist(ctx);
                p.blend(&noise, delta)
            } else {
                self.compute_blend(ctx, delta)
            }
        })
    }

    /// Fused top-`w` of the blended draft head: beam search needs only
    /// the `w` (≤ beam width, a handful) most likely tokens, so this
    /// merges the target head with the noise head **in token order**
    /// (reproducing the exact normalization sum of the full blend),
    /// normalizes, and partially selects — no full-head sort, no
    /// intermediate distribution, no allocations once the scratch is
    /// warm. Values and order are bit-identical to
    /// `next_dist_extended(..).top_k(w)`.
    fn top_w_extended(
        &self,
        ctx: &LmContext<'_>,
        extra: &[crate::TokenId],
        w: usize,
        scratch: &mut Vec<crate::TokenId>,
        out: &mut Vec<(crate::TokenId, f64)>,
    ) {
        if w == 0 {
            out.clear();
            return;
        }
        let delta = self.effective_divergence(ctx.class);
        // Degenerate mixtures — and heads too wide for the 64-bit
        // membership marker below — take the exact full-distribution
        // path.
        if delta <= 0.0 || delta >= 1.0 || self.noise.config().head_width > 64 {
            let dist = self.next_dist_extended_arc(ctx, extra, scratch);
            out.clear();
            out.extend_from_slice(dist.top_k(w));
            return;
        }
        scratch.clear();
        scratch.extend_from_slice(ctx.window());
        scratch.extend_from_slice(extra);
        let ext = LmContext::new(ctx.stream_seed, ctx.class, scratch);

        // Target head through the shared memo (verification reuses it).
        let p = self.target.next_dist_arc(&ext);
        let mut s = self.scratch.lock().expect("draft scratch lock");
        let s = &mut *s;
        s.p_sorted.clear();
        s.p_sorted.extend_from_slice(p.entries());
        s.p_sorted.sort_unstable_by_key(|&(t, _)| t);
        // Noise head, computed straight into token order (never cached:
        // it exists only to perturb this one blend).
        let hn = self.noise.dist_key(&ext);
        let noise_tail = self
            .noise
            .head_probs_token_sorted_into(hn, ext.class, &mut s.noise);

        // Token-ordered merge of the union head, accumulating the
        // normalization sum in exactly the order `from_distinct_weights`
        // would (token-ascending).
        s.merged.clear();
        let mut head = 0.0f64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < s.p_sorted.len() || j < s.noise.len() {
            let weight = match (s.p_sorted.get(i), s.noise.get(j)) {
                (Some(&(tp, pp)), Some(&(tn, _))) if tp < tn => {
                    i += 1;
                    (tp, (1.0 - delta) * pp + delta * 0.0)
                }
                (Some(&(tp, pp)), Some(&(tn, qn))) if tp == tn => {
                    i += 1;
                    j += 1;
                    (tp, (1.0 - delta) * pp + delta * qn)
                }
                (Some(_), Some(&(tn, qn))) | (None, Some(&(tn, qn))) => {
                    j += 1;
                    (tn, delta * qn)
                }
                (Some(&(tp, pp)), None) => {
                    i += 1;
                    (tp, (1.0 - delta) * pp + delta * 0.0)
                }
                (None, None) => unreachable!("loop condition"),
            };
            head += weight.1;
            s.merged.push(weight);
        }
        let tail = (1.0 - delta) * p.tail_mass() + delta * noise_tail;
        let total = head + tail;
        for e in s.merged.iter_mut() {
            e.1 /= total;
        }
        // Top-w on final probabilities with the head comparator of
        // `SparseDist` (prob desc, token asc): partial selection plus a
        // tiny sort reproduces `top_k(w)` exactly.
        let cmp = |a: &(crate::TokenId, f64), b: &(crate::TokenId, f64)| {
            b.1.partial_cmp(&a.1)
                .expect("finite probs")
                .then_with(|| a.0.cmp(&b.0))
        };
        if s.merged.len() > w && w > 0 {
            s.merged.select_nth_unstable_by(w - 1, cmp);
            s.merged.truncate(w);
        }
        s.merged.sort_unstable_by(cmp);
        out.clear();
        out.extend_from_slice(&s.merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::ContentClass;
    use crate::TokenId;

    fn make_pair(delta: f64) -> (TargetLm, DraftLm) {
        let t = TargetLm::new(TargetLmConfig::default_with_seed(77));
        let d = DraftLm::from_target(&t, delta);
        (t, d)
    }

    fn total_variation(p: &SparseDist, q: &SparseDist) -> f64 {
        let mut tokens: Vec<TokenId> = p.entries().iter().map(|&(t, _)| t).collect();
        tokens.extend(q.entries().iter().map(|&(t, _)| t));
        tokens.sort();
        tokens.dedup();
        0.5 * tokens
            .iter()
            .map(|&t| (p.prob(t) - q.prob(t)).abs())
            .sum::<f64>()
    }

    #[test]
    fn zero_divergence_matches_target() {
        let (t, d) = make_pair(0.0);
        let tokens = vec![TokenId(4), TokenId(5)];
        let ctx = LmContext::new(3, ContentClass::Chat, &tokens);
        assert_eq!(t.next_dist(&ctx), d.next_dist(&ctx));
    }

    #[test]
    fn divergence_increases_distance() {
        let tokens = vec![TokenId(4), TokenId(5)];
        let ctx = LmContext::new(3, ContentClass::Chat, &tokens);
        let (t, d_small) = make_pair(0.05);
        let (_, d_large) = make_pair(0.5);
        let p = t.next_dist(&ctx);
        let tv_small = total_variation(&p, &d_small.next_dist(&ctx));
        let tv_large = total_variation(&p, &d_large.next_dist(&ctx));
        assert!(tv_small < tv_large, "{tv_small} !< {tv_large}");
        assert!(tv_small > 0.0);
    }

    #[test]
    fn code_drafts_align_better_than_news() {
        let (t, d) = make_pair(0.25);
        let tokens = vec![TokenId(4), TokenId(5)];
        let mut tv = std::collections::HashMap::new();
        for s in 0..40u64 {
            for class in [ContentClass::Code, ContentClass::News] {
                let ctx = LmContext::new(s, class, &tokens);
                *tv.entry(class).or_insert(0.0) +=
                    total_variation(&t.next_dist(&ctx), &d.next_dist(&ctx)) / 40.0;
            }
        }
        assert!(tv[&ContentClass::Code] < tv[&ContentClass::News]);
    }

    #[test]
    fn fused_top_w_matches_full_distribution_top_k() {
        // The beam-search fast path must return bit-identical entries to
        // slicing the fully constructed blended distribution.
        let (_, d) = make_pair(0.25);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        for s in 0..200u64 {
            let tokens = vec![
                TokenId((s % 97) as u32 + 2),
                TokenId(5),
                TokenId((s % 13) as u32 + 1),
            ];
            for class in ContentClass::ALL {
                let ctx = LmContext::new(s, class, &tokens);
                for w in [1usize, 2, 4, 7, 64] {
                    d.top_w_extended(&ctx, &[], w, &mut scratch, &mut out);
                    let full = d.next_dist(&ctx);
                    assert_eq!(
                        out.as_slice(),
                        full.top_k(w),
                        "fused top-{w} diverged (seed {s}, {class:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_top_w_matches_with_extension() {
        let (_, d) = make_pair(0.18);
        let base = vec![TokenId(4), TokenId(5)];
        let extra = vec![TokenId(9), TokenId(11)];
        let ctx = LmContext::new(3, ContentClass::Code, &base);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        d.top_w_extended(&ctx, &extra, 4, &mut scratch, &mut out);
        let full = d.next_dist_extended(&ctx, &extra, &mut scratch);
        assert_eq!(out.as_slice(), full.top_k(4));
    }

    #[test]
    fn wide_heads_take_the_exact_general_blend_path() {
        // Heads wider than the fused path's 64-bit membership marker must
        // fall back to the general blend — valid, and consistent between
        // the full distribution and the fused top-w.
        let mut config = crate::TargetLmConfig::default_with_seed(3);
        config.head_width = 80;
        let t = TargetLm::new(config);
        let d = DraftLm::from_target(&t, 0.25);
        let tokens = vec![TokenId(4), TokenId(5)];
        let ctx = LmContext::new(3, ContentClass::Chat, &tokens);
        let dist = d.next_dist(&ctx);
        dist.validate().expect("valid wide-head draft dist");
        assert!(dist.entries().len() > 64, "head really is wide");
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        d.top_w_extended(&ctx, &[], 4, &mut scratch, &mut out);
        assert_eq!(out.as_slice(), dist.top_k(4));
    }

    #[test]
    fn draft_dists_are_valid() {
        let (_, d) = make_pair(0.3);
        let tokens = vec![TokenId(9)];
        for class in ContentClass::ALL {
            let ctx = LmContext::new(11, class, &tokens);
            d.next_dist(&ctx).validate().expect("valid draft dist");
        }
    }

    #[test]
    #[should_panic(expected = "divergence")]
    fn divergence_out_of_range_rejected() {
        let t = TargetLm::new(TargetLmConfig::default_with_seed(1));
        let _ = DraftLm::from_target(&t, 1.5);
    }
}
