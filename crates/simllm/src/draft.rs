//! The divergence-controlled draft (speculating) language model.

use crate::dist::SparseDist;
use crate::lm::{Lm, LmContext};
use crate::target::{TargetLm, TargetLmConfig};

/// The draft model: a perturbed view of the target model.
///
/// Real draft models are smaller members of the same family, distilled or
/// co-trained so their logits track the target's (paper §4.2: "the logits of
/// the draft model are accurate surrogates for estimating f(v)"). We model
/// this as a pointwise mixture
///
/// ```text
/// q(· | ctx) = (1 - δ_c) · p(· | ctx) + δ_c · noise(· | ctx)
/// ```
///
/// where `p` is the target distribution, `noise` is an independent hash model
/// over the same vocabulary, and the effective divergence `δ_c` scales with
/// the content class `c` (code drafts align best, long-form prose worst).
/// δ directly controls the expected acceptance rate, making calibration to
/// published speculative-decoding numbers a one-parameter fit.
#[derive(Debug, Clone)]
pub struct DraftLm {
    target: TargetLm,
    noise: TargetLm,
    /// Base divergence δ before per-class scaling.
    divergence: f64,
}

impl DraftLm {
    /// Derives a draft model from a target model with base divergence `δ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ δ ≤ 1`.
    pub fn from_target(target: &TargetLm, divergence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&divergence),
            "divergence must be in [0, 1]"
        );
        let mut noise_config: TargetLmConfig = *target.config();
        // The noise model is an independent process: different seed, flatter head.
        noise_config.seed = crate::hash::mix64(target.config().seed ^ 0xD12A_F7ED);
        noise_config.weight_jitter = 0.8;
        Self {
            target: target.clone(),
            noise: TargetLm::new(noise_config),
            divergence,
        }
    }

    /// Base (class-unscaled) divergence δ.
    pub fn divergence(&self) -> f64 {
        self.divergence
    }

    /// Effective divergence for a content class, clamped to [0, 1].
    pub fn effective_divergence(&self, class: crate::ContentClass) -> f64 {
        (self.divergence * class.divergence_scale()).clamp(0.0, 1.0)
    }
}

impl Lm for DraftLm {
    fn vocab_size(&self) -> u32 {
        self.target.vocab_size()
    }

    fn next_dist(&self, ctx: &LmContext<'_>) -> SparseDist {
        let p = self.target.next_dist(ctx);
        let delta = self.effective_divergence(ctx.class);
        if delta == 0.0 {
            return p;
        }
        let noise = self.noise.next_dist(ctx);
        p.blend(&noise, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::ContentClass;
    use crate::TokenId;

    fn make_pair(delta: f64) -> (TargetLm, DraftLm) {
        let t = TargetLm::new(TargetLmConfig::default_with_seed(77));
        let d = DraftLm::from_target(&t, delta);
        (t, d)
    }

    fn total_variation(p: &SparseDist, q: &SparseDist) -> f64 {
        let mut tokens: Vec<TokenId> = p.entries().iter().map(|&(t, _)| t).collect();
        tokens.extend(q.entries().iter().map(|&(t, _)| t));
        tokens.sort();
        tokens.dedup();
        0.5 * tokens
            .iter()
            .map(|&t| (p.prob(t) - q.prob(t)).abs())
            .sum::<f64>()
    }

    #[test]
    fn zero_divergence_matches_target() {
        let (t, d) = make_pair(0.0);
        let tokens = vec![TokenId(4), TokenId(5)];
        let ctx = LmContext::new(3, ContentClass::Chat, &tokens);
        assert_eq!(t.next_dist(&ctx), d.next_dist(&ctx));
    }

    #[test]
    fn divergence_increases_distance() {
        let tokens = vec![TokenId(4), TokenId(5)];
        let ctx = LmContext::new(3, ContentClass::Chat, &tokens);
        let (t, d_small) = make_pair(0.05);
        let (_, d_large) = make_pair(0.5);
        let p = t.next_dist(&ctx);
        let tv_small = total_variation(&p, &d_small.next_dist(&ctx));
        let tv_large = total_variation(&p, &d_large.next_dist(&ctx));
        assert!(tv_small < tv_large, "{tv_small} !< {tv_large}");
        assert!(tv_small > 0.0);
    }

    #[test]
    fn code_drafts_align_better_than_news() {
        let (t, d) = make_pair(0.25);
        let tokens = vec![TokenId(4), TokenId(5)];
        let mut tv = std::collections::HashMap::new();
        for s in 0..40u64 {
            for class in [ContentClass::Code, ContentClass::News] {
                let ctx = LmContext::new(s, class, &tokens);
                *tv.entry(class).or_insert(0.0) +=
                    total_variation(&t.next_dist(&ctx), &d.next_dist(&ctx)) / 40.0;
            }
        }
        assert!(tv[&ContentClass::Code] < tv[&ContentClass::News]);
    }

    #[test]
    fn draft_dists_are_valid() {
        let (_, d) = make_pair(0.3);
        let tokens = vec![TokenId(9)];
        for class in ContentClass::ALL {
            let ctx = LmContext::new(11, class, &tokens);
            d.next_dist(&ctx).validate().expect("valid draft dist");
        }
    }

    #[test]
    #[should_panic(expected = "divergence")]
    fn divergence_out_of_range_rejected() {
        let t = TargetLm::new(TargetLmConfig::default_with_seed(1));
        let _ = DraftLm::from_target(&t, 1.5);
    }
}
