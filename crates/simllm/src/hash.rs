//! Deterministic 64-bit mixing primitives.
//!
//! Every stochastic quantity in the substrate — next-token distributions,
//! sampled tokens, dataset lengths — is a pure function of explicit seeds fed
//! through these mixers. This gives bit-identical runs across engines and
//! platforms without threading RNG state through the call graph.

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
///
/// This is the finalization function of the SplitMix64 generator, which has
/// full avalanche behaviour (every input bit affects every output bit with
/// probability ~1/2) and is commonly used to derive independent streams from
/// a single seed.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines two seeds into one, order-sensitively.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    // Boost-style hash_combine lifted to 64 bits.
    mix64(
        a ^ b
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a << 6)
            .wrapping_add(a >> 2),
    )
}

/// Derives the i-th value of a seed stream.
///
/// `seed_stream(s, 0), seed_stream(s, 1), …` behave as independent draws.
#[inline]
pub fn seed_stream(seed: u64, index: u64) -> u64 {
    mix64(seed ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// Hashes a slice of 32-bit values together with a seed.
#[inline]
pub fn hash_tokens(seed: u64, tokens: &[u32]) -> u64 {
    hash_token_iter(seed, tokens.iter().copied())
}

/// Streaming variant of [`hash_tokens`]: folds an iterator of 32-bit
/// values without materializing them into a slice first.
///
/// Produces bit-identical hashes to [`hash_tokens`] over the same value
/// sequence — hot paths (`LmContext::hash` runs once per simulated model
/// forward) use this to hash token windows in place instead of collecting
/// them into a temporary `Vec`.
#[inline]
pub fn hash_token_iter(seed: u64, tokens: impl Iterator<Item = u32>) -> u64 {
    let mut h = mix64(seed ^ 0xA076_1D64_78BD_642F);
    for t in tokens {
        h = mix64(h ^ u64::from(t).wrapping_mul(0xE703_7ED1_A0B4_28DB));
    }
    h
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn unit_f64_stays_in_range() {
        for i in 0..10_000u64 {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit_f64(seed_stream(7, i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn hash_tokens_depends_on_order() {
        assert_ne!(hash_tokens(1, &[1, 2, 3]), hash_tokens(1, &[3, 2, 1]));
        assert_ne!(hash_tokens(1, &[1, 2]), hash_tokens(1, &[1, 2, 0]));
    }

    #[test]
    fn seed_stream_draws_look_independent() {
        // Adjacent indices must not produce correlated low bits.
        let a = seed_stream(99, 0);
        let b = seed_stream(99, 1);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
