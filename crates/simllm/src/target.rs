//! The hash-seeded target (verified) language model.

use crate::dist::SparseDist;
use crate::hash::{mix64, seed_stream, unit_f64};
use crate::lm::{Lm, LmContext};
use crate::memo::{DistMemo, MemoStats};
use crate::vocab::{Vocab, NUM_SPECIAL_TOKENS};
use std::sync::Arc;

/// Configuration of a [`TargetLm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetLmConfig {
    /// Global model seed; two models with different seeds are independent.
    pub seed: u64,
    /// Vocabulary.
    pub vocab: Vocab,
    /// Number of explicit head tokens per distribution.
    pub head_width: usize,
    /// Mass held by the explicit head (rest spreads over the tail).
    pub head_mass: f64,
    /// Jitter applied to head weights so distributions are not perfectly
    /// geometric; `0` disables.
    pub weight_jitter: f64,
}

impl TargetLmConfig {
    /// The default configuration with an explicit seed.
    ///
    /// 24 head tokens covering 97% of the mass approximates the measured
    /// concentration of instruction-tuned LLM output distributions (the top
    /// 20–30 tokens of such models typically carry >95% of the mass under
    /// normal decoding temperatures).
    pub fn default_with_seed(seed: u64) -> Self {
        Self {
            seed,
            vocab: Vocab::default(),
            head_width: 24,
            head_mass: 0.97,
            weight_jitter: 0.35,
        }
    }
}

/// The target model: a pure function from contexts to sparse distributions.
///
/// For a context hash `h`, the model derives `head_width` distinct candidate
/// tokens and geometric-with-jitter weights whose decay is set by the
/// context's [`crate::ContentClass`]. Because the construction is pure, the
/// model needs no GPU, no weights and no state — yet it exposes exactly the
/// statistics speculative decoding interacts with.
#[derive(Debug, Clone)]
pub struct TargetLm {
    config: TargetLmConfig,
    /// Distribution memo, **shared across clones** (an `Arc`): the draft
    /// model derived via [`crate::DraftLm::from_target`] clones this
    /// model, so the verification pass hits distributions the draft pass
    /// already computed. Memoization is exact (pure function of the
    /// context hash), so cached and recomputed runs are bit-identical.
    memo: Arc<DistMemo>,
}

impl TargetLm {
    /// Creates a target model.
    pub fn new(config: TargetLmConfig) -> Self {
        assert!(config.head_width >= 2, "head must hold at least two tokens");
        assert!(
            (0.0..=1.0).contains(&config.head_mass),
            "head mass must be a probability"
        );
        Self {
            config,
            memo: DistMemo::shared(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &TargetLmConfig {
        &self.config
    }

    /// Hit/miss counters of the distribution memo (shared across clones).
    pub fn cache_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Derives the head candidate tokens for a context hash.
    ///
    /// Tokens are pseudo-uniform over the non-special id space with linear
    /// probing to guarantee distinctness.
    fn head_tokens(&self, h: u64) -> Vec<u32> {
        let space = self.config.vocab.size() - NUM_SPECIAL_TOKENS;
        let mut tokens = Vec::with_capacity(self.config.head_width);
        let mut i = 0u64;
        while tokens.len() < self.config.head_width {
            let cand = NUM_SPECIAL_TOKENS + (seed_stream(h, i) % u64::from(space)) as u32;
            if !tokens.contains(&cand) {
                tokens.push(cand);
            }
            i += 1;
        }
        tokens
    }

    /// Head probabilities for context hash `h`, **sorted by token id**,
    /// plus the final tail mass.
    ///
    /// This is the shared core of [`TargetLm::next_dist`] and the fused
    /// draft blend ([`crate::DraftLm`] mixes these probabilities straight
    /// into its mixture without building an intermediate [`SparseDist`]).
    /// The token-sorted summation order matches
    /// `SparseDist::from_weights`, keeping every downstream value
    /// bit-identical to the unfused construction.
    pub(crate) fn head_probs_token_sorted(
        &self,
        h: u64,
        class: crate::ContentClass,
    ) -> (Vec<(crate::TokenId, f64)>, f64) {
        let mut out = Vec::new();
        let tail_mass = self.head_probs_token_sorted_into(h, class, &mut out);
        (out, tail_mass)
    }

    /// Scratch-buffer variant of [`TargetLm::head_probs_token_sorted`]:
    /// fills `out` (cleared first) and returns the tail mass.
    pub(crate) fn head_probs_token_sorted_into(
        &self,
        h: u64,
        class: crate::ContentClass,
        out: &mut Vec<(crate::TokenId, f64)>,
    ) -> f64 {
        let tail_weight = self.raw_head_weights(h, class, out);
        // Tokens are distinct; sum in token-sorted order exactly as
        // `from_weights` would after its dedup pass.
        out.sort_unstable_by_key(|&(t, _)| t);
        let head: f64 = out.iter().map(|&(_, w)| w).sum();
        let total = head + tail_weight;
        for w in out.iter_mut() {
            w.1 /= total;
        }
        tail_weight / total
    }

    /// Generates the raw (unnormalized) jittered head weights for context
    /// hash `h` into `out` (cleared first), in head order — strictly
    /// descending for every supported decay/jitter configuration.
    /// Returns the raw tail weight.
    fn raw_head_weights(
        &self,
        h: u64,
        class: crate::ContentClass,
        out: &mut Vec<(crate::TokenId, f64)>,
    ) -> f64 {
        let tokens = self.head_tokens(h);
        let decay = class.head_decay();
        out.clear();
        out.reserve(tokens.len());
        for (i, &t) in tokens.iter().enumerate() {
            let base = decay.powi(i as i32);
            let jitter = if self.config.weight_jitter > 0.0 {
                // Multiplicative jitter in [1 - j/2, 1 + j/2].
                let u = unit_f64(seed_stream(h ^ 0x0117_7E12, i as u64));
                1.0 + self.config.weight_jitter * (u - 0.5)
            } else {
                1.0
            };
            out.push((crate::TokenId(t), base * jitter));
        }
        // Scale the head to hold exactly `head_mass` of the total.
        let head_sum: f64 = out.iter().map(|&(_, w)| w).sum();
        head_sum * (1.0 - self.config.head_mass) / self.config.head_mass
    }

    /// The memo key for `ctx` (context hash mixed with the model seed).
    pub(crate) fn dist_key(&self, ctx: &LmContext<'_>) -> u64 {
        mix64(ctx.hash() ^ self.config.seed)
    }

    /// Computes the distribution for context hash `h` and head decay of
    /// `class` (the miss path of the memo).
    ///
    /// Fast path: geometric decay dominates the jitter for every
    /// supported configuration, so the generated weights are already
    /// strictly descending — the final probabilities then equal the
    /// generation order and only the *sum* needs token order (computed
    /// through a packed index sort). When the descending check ever
    /// fails, the code falls back to the general sort, producing the
    /// exact same distribution either way.
    fn compute_dist(&self, h: u64, class: crate::ContentClass) -> SparseDist {
        let mut weights = Vec::new();
        let tail_weight = self.raw_head_weights(h, class, &mut weights);
        // Exact token-ascending sum without reordering the entries:
        // sort packed (token << 32 | index) keys — tokens are distinct,
        // so this is pure token order.
        let mut order: Vec<u64> = weights
            .iter()
            .enumerate()
            .map(|(i, &(t, _))| (u64::from(t.0) << 32) | i as u64)
            .collect();
        order.sort_unstable();
        let head: f64 = order
            .iter()
            .map(|&k| weights[(k & 0xFFFF_FFFF) as usize].1)
            .sum();
        let total = head + tail_weight;
        for w in &mut weights {
            w.1 /= total;
        }
        let descending = weights.windows(2).all(|p| p[0].1 > p[1].1);
        if !descending {
            // `from_weights` orders by (prob desc, token asc); distinct
            // tokens make the unstable sort deterministic.
            weights.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite probs")
                    .then_with(|| a.0.cmp(&b.0))
            });
        }
        SparseDist::from_parts(weights, tail_weight / total, self.config.vocab.size())
    }
}

impl Lm for TargetLm {
    fn vocab_size(&self) -> u32 {
        self.config.vocab.size()
    }

    fn next_dist(&self, ctx: &LmContext<'_>) -> SparseDist {
        (*self.next_dist_arc(ctx)).clone()
    }

    fn next_dist_arc(&self, ctx: &LmContext<'_>) -> Arc<SparseDist> {
        // The context hash folds in the stream seed, content class and
        // token window — everything `compute_dist` conditions on — so it
        // is a sound memo key once mixed with the model seed.
        let h = self.dist_key(ctx);
        self.memo
            .get_or_compute(h, || self.compute_dist(h, ctx.class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::ContentClass;
    use crate::TokenId;

    fn ctx_tokens() -> Vec<TokenId> {
        vec![TokenId(10), TokenId(20), TokenId(30)]
    }

    #[test]
    fn distributions_are_valid() {
        let lm = TargetLm::new(TargetLmConfig::default_with_seed(3));
        let tokens = ctx_tokens();
        for class in ContentClass::ALL {
            let ctx = LmContext::new(5, class, &tokens);
            let d = lm.next_dist(&ctx);
            d.validate().expect("valid dist");
            assert_eq!(d.entries().len(), 24);
            assert!((d.tail_mass() - 0.03).abs() < 1e-9);
        }
    }

    #[test]
    fn code_is_peakier_than_news() {
        let lm = TargetLm::new(TargetLmConfig::default_with_seed(3));
        let tokens = ctx_tokens();
        let mut top1 = std::collections::HashMap::new();
        // Average over several contexts to wash out jitter.
        for s in 0..50u64 {
            for class in ContentClass::ALL {
                let ctx = LmContext::new(s, class, &tokens);
                let d = lm.next_dist(&ctx);
                *top1.entry(class).or_insert(0.0) += d.entries()[0].1 / 50.0;
            }
        }
        assert!(top1[&ContentClass::Code] > top1[&ContentClass::Chat]);
        assert!(top1[&ContentClass::Chat] > top1[&ContentClass::News]);
    }

    #[test]
    fn context_changes_distribution() {
        let lm = TargetLm::new(TargetLmConfig::default_with_seed(3));
        let a = ctx_tokens();
        let mut b = ctx_tokens();
        b.push(TokenId(999));
        let da = lm.next_dist(&LmContext::new(5, ContentClass::Chat, &a));
        let db = lm.next_dist(&LmContext::new(5, ContentClass::Chat, &b));
        assert_ne!(da, db);
    }

    #[test]
    fn head_tokens_are_distinct_and_non_special() {
        let lm = TargetLm::new(TargetLmConfig::default_with_seed(3));
        let toks = lm.head_tokens(12345);
        let set: std::collections::HashSet<_> = toks.iter().collect();
        assert_eq!(set.len(), toks.len());
        assert!(toks.iter().all(|&t| t >= NUM_SPECIAL_TOKENS));
    }

    #[test]
    fn extended_context_matches_explicit_concatenation() {
        let lm = TargetLm::new(TargetLmConfig::default_with_seed(3));
        let base = ctx_tokens();
        let extra = vec![TokenId(7), TokenId(8)];
        let mut full = base.clone();
        full.extend_from_slice(&extra);
        let ctx = LmContext::new(5, ContentClass::Chat, &base);
        let mut scratch = Vec::new();
        let via_ext = lm.next_dist_extended(&ctx, &extra, &mut scratch);
        let direct = lm.next_dist(&LmContext::new(5, ContentClass::Chat, &full));
        assert_eq!(via_ext, direct);
    }
}
