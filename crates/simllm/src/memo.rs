//! Memoization of next-token distributions.
//!
//! Contexts are Markov-order-[`crate::LmContext::MARKOV_ORDER`], so the
//! same trailing window recurs constantly inside one serving run: the
//! draft pass evaluates the target model on every candidate-tree node,
//! verification re-evaluates the accepted path, and successive iterations
//! re-expand overlapping windows. A [`DistMemo`] caches each model's
//! distribution keyed by the context hash, turning those repeats into a
//! refcount bump.
//!
//! The memo lives behind an `Arc`, so cloning a model **shares** its cache
//! — in particular [`crate::DraftLm::from_target`] clones the target, and
//! the verification pass then hits the distributions the draft pass
//! already computed. Interior mutability uses a `Mutex` (uncontended in
//! practice: one engine steps on one thread at a time) so models stay
//! `Send + Sync` for parallel replica stepping.
//!
//! The table is **direct-mapped**: keys are already full-avalanche mixed
//! hashes, so `key & mask` picks the slot and a conflicting insert simply
//! overwrites. That keeps lookups and inserts O(1) with no hashing, no
//! rehash pauses and bounded memory — a conflict only costs a recompute,
//! never correctness, because memoization is exact: a hit returns the
//! same bit-identical [`SparseDist`] the miss path would compute.

use crate::dist::SparseDist;
use std::sync::{Arc, Mutex};

/// Default slot count (a power of two) of the direct-mapped table.
///
/// A distribution's head holds a few dozen entries (~½ KiB); 8 Ki slots
/// keep the slot array itself cache-resident (≈200 KiB) while covering
/// far more contexts than a serving iteration touches — hits come
/// overwhelmingly from the current iteration's draft/verify overlap, so
/// a larger, cache-colder table measures slower, not faster.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 13;

/// Hit/miss counters of one (or several merged) [`DistMemo`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the distribution.
    pub misses: u64,
}

impl MemoStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in percent (0 when no lookups happened).
    pub fn hit_rate_pct(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.lookups() as f64
        }
    }

    /// Accumulates another memo's counters.
    pub fn merge(&mut self, other: MemoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

#[derive(Debug)]
struct MemoInner {
    /// Direct-mapped slots: `slots[key & mask]` holds the entry (if any)
    /// whose full key is stored alongside for exactness.
    slots: Vec<Option<(u64, Arc<SparseDist>)>>,
    stats: MemoStats,
}

/// A shared, direct-mapped distribution cache (see the module docs).
#[derive(Debug)]
pub struct DistMemo {
    inner: Mutex<MemoInner>,
    mask: u64,
}

impl Default for DistMemo {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_MEMO_CAPACITY)
    }
}

impl DistMemo {
    /// Creates a memo with `capacity` slots (rounded up to a power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(1);
        Self {
            inner: Mutex::new(MemoInner {
                slots: vec![None; cap],
                stats: MemoStats::default(),
            }),
            mask: cap as u64 - 1,
        }
    }

    /// A fresh memo wrapped for sharing across model clones.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the cached distribution for `key`, computing and inserting
    /// it via `compute` on a miss (or slot conflict).
    ///
    /// `compute` runs outside the lock (it may itself consult other
    /// memos); a racing duplicate computation is harmless because
    /// distributions are pure functions of the key.
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> SparseDist,
    ) -> Arc<SparseDist> {
        let slot = (key & self.mask) as usize;
        {
            let mut inner = self.inner.lock().expect("memo lock");
            if let Some((k, dist)) = &inner.slots[slot] {
                if *k == key {
                    let dist = Arc::clone(dist);
                    inner.stats.hits += 1;
                    return dist;
                }
            }
            inner.stats.misses += 1;
        }
        let dist = Arc::new(compute());
        let mut inner = self.inner.lock().expect("memo lock");
        inner.slots[slot] = Some((key, Arc::clone(&dist)));
        dist
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> MemoStats {
        self.inner.lock().expect("memo lock").stats
    }

    /// Occupied slots right now.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("memo lock")
            .slots
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::TokenId;

    fn dist(t: u32) -> SparseDist {
        SparseDist::delta(TokenId(t), 100)
    }

    #[test]
    fn hit_returns_identical_distribution() {
        let memo = DistMemo::default();
        let a = memo.get_or_compute(7, || dist(3));
        let b = memo.get_or_compute(7, || panic!("must not recompute"));
        assert_eq!(*a, *b);
        assert_eq!(memo.stats(), MemoStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let memo = DistMemo::default();
        let a = memo.get_or_compute(1, || dist(1));
        let b = memo.get_or_compute(2, || dist(2));
        assert_ne!(*a, *b);
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn slot_conflicts_overwrite_and_recompute_exactly() {
        // Capacity 2: keys 1 and 3 map to the same slot (1 & 1 == 3 & 1).
        let memo = DistMemo::with_capacity(2);
        memo.get_or_compute(1, || dist(1));
        let b = memo.get_or_compute(3, || dist(3));
        assert_eq!(*b, dist(3), "conflict evicts, never corrupts");
        // Key 1 was evicted: recomputation yields the exact same value.
        let again = memo.get_or_compute(1, || dist(1));
        assert_eq!(*again, dist(1));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = MemoStats { hits: 3, misses: 1 };
        assert!((s.hit_rate_pct() - 75.0).abs() < 1e-12);
        s.merge(MemoStats { hits: 1, misses: 3 });
        assert!((s.hit_rate_pct() - 50.0).abs() < 1e-12);
        assert_eq!(MemoStats::default().hit_rate_pct(), 0.0);
    }
}
