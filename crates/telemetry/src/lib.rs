//! End-to-end tracing for the serving stack.
//!
//! The simulator's reports (`metrics::SloReport`, timelines) say *that* a
//! request missed its SLO; this crate records *why*. A [`Tracer`] is a
//! cheap cloneable handle threaded through the session, deployments,
//! routers and dispatchers. When enabled it appends [`TraceEvent`]s —
//! enqueue, admission, routing, prefill chunks, KV transfers, per-iteration
//! speculation outcomes, preemptions, finishes and periodic gauge samples —
//! to a bounded ring buffer stamped with the simulation clock. When
//! disabled (the default) every call site reduces to one branch, so the
//! hot loop pays nothing.
//!
//! Three consumers sit on top of the raw log:
//!
//! * [`perfetto::export`] — Chrome-trace / Perfetto JSON with one track
//!   per replica and one per request;
//! * [`SloAttribution`] — decomposes each violating request's latency into
//!   queueing / prefill / transfer / decode / preemption shares and names
//!   the dominant cause per SLO tier;
//! * [`GaugeSample`] — point-in-time queue depth / in-flight / KV
//!   occupancy / cache hit rate, sampled on a configurable tick for
//!   future autoscaler use.
//!
//! This crate sits *below* `metrics` (which re-exports it) and has no
//! dependencies, so any layer of the stack can record events without
//! widening the dependency graph.

#![warn(missing_docs)]

pub mod attribution;
pub mod event;
pub mod perfetto;
pub mod tracer;

pub use attribution::{RequestPhases, SloAttribution, TierAttribution};
pub use event::{EventKind, GaugeSample, TraceEvent, TracePool, TraceReplica};
pub use tracer::Tracer;
