//! The trace event schema.
//!
//! Every event is stamped with the global simulation clock (`at_ms`).
//! Durations that the simulator knows exactly (iteration latency, KV wire
//! time) ride inside the event payload; phase spans that only exist
//! between events (queueing, prefill waiting) are reconstructed by the
//! consumers in [`crate::attribution`] and [`crate::perfetto`].

use std::fmt;

/// Which pool a traced replica belongs to.
///
/// Colocated and cluster replicas are decode-pool replicas (they prefill
/// and decode on the same engine); disaggregated deployments add a
/// dedicated prefill pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePool {
    /// Dedicated prefill replica (disaggregated deployments).
    Prefill,
    /// Decode (or colocated prefill+decode) replica.
    Decode,
}

impl TracePool {
    /// Short lowercase label used in track names.
    pub fn label(self) -> &'static str {
        match self {
            TracePool::Prefill => "prefill",
            TracePool::Decode => "decode",
        }
    }
}

/// Identifies one replica in trace events.
///
/// This is telemetry's own address type (the crate sits below `serving`
/// and cannot see its `ReplicaAddr`); deployments translate when they
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceReplica {
    /// Pool the replica serves in.
    pub pool: TracePool,
    /// Index within the pool.
    pub index: usize,
}

impl TraceReplica {
    /// Decode-pool replica (also used for colocated engines).
    pub fn decode(index: usize) -> Self {
        Self {
            pool: TracePool::Decode,
            index,
        }
    }

    /// Prefill-pool replica.
    pub fn prefill(index: usize) -> Self {
        Self {
            pool: TracePool::Prefill,
            index,
        }
    }
}

impl fmt::Display for TraceReplica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.pool.label(), self.index)
    }
}

/// A point-in-time counters snapshot, sampled on the session's gauge tick.
///
/// These are the live signals a future autoscaler consumes (ROADMAP
/// item 3): how much work is queued, how much is running, and how full /
/// effective the KV cache is.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GaugeSample {
    /// Requests waiting for admission across all replicas.
    pub queue_depth: usize,
    /// Requests currently running (in a decode/prefill batch).
    pub in_flight: usize,
    /// KV-cache block occupancy in percent (worst replica).
    pub kv_occupancy_pct: f64,
    /// Cross-request prefix-cache hit rate in percent so far.
    pub cache_hit_rate_pct: f64,
}

/// What happened, with event-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A request entered the serving session (client-visible arrival).
    Enqueue {
        /// Workload request id.
        id: u64,
        /// Prompt length in tokens.
        prompt_tokens: u32,
        /// Requested output length in tokens.
        output_tokens: u32,
    },
    /// The deployment accepted the request onto a replica.
    Admitted {
        /// Workload request id.
        id: u64,
        /// Replica that now owns the request.
        replica: TraceReplica,
        /// Prompt tokens already covered by the cross-request prefix
        /// cache at admission (0 when the cache is off or cold).
        cached_prefix_tokens: u32,
    },
    /// Admission control turned the request away.
    Rejected {
        /// Workload request id.
        id: u64,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// A router picked a replica for the request.
    RouteDecision {
        /// Workload request id.
        id: u64,
        /// Router implementation name (e.g. `slo-aware`).
        router: String,
        /// Chosen replica.
        replica: TraceReplica,
        /// The router's modeled load estimate for the chosen replica in
        /// milliseconds (drain estimate at decision time).
        modeled_load_ms: f64,
    },
    /// A request left the waiting queue and began prefilling (first time
    /// it appears in a running batch).
    PrefillStart {
        /// Workload request id.
        id: u64,
        /// Replica performing the prefill.
        replica: TraceReplica,
    },
    /// One chunked-prefill step on a dedicated prefill replica.
    PrefillChunk {
        /// Replica performing the chunk.
        replica: TraceReplica,
        /// Requests sharing the chunk.
        requests: usize,
        /// Prompt tokens prefilled in this chunk.
        tokens: u64,
        /// Modeled chunk latency in milliseconds.
        latency_ms: f64,
    },
    /// A prefilled request's KV pages were enqueued on the interconnect
    /// toward its decode replica.
    KvTransfer {
        /// Workload request id.
        id: u64,
        /// Source prefill replica index.
        from_prefill: usize,
        /// Destination decode replica index.
        to_decode: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Wire departure time (ms).
        start_ms: f64,
        /// Wire arrival time (ms).
        arrive_ms: f64,
    },
    /// One engine iteration (speculate + verify or plain decode step).
    Iteration {
        /// Replica that stepped.
        replica: TraceReplica,
        /// Requests in the running batch after the step.
        batch: usize,
        /// Draft tokens speculated this iteration.
        draft_tokens: u64,
        /// Speculated tokens accepted this iteration.
        accepted_tokens: u64,
        /// Prefill time folded into this iteration's latency, ms.
        prefill_ms: f64,
        /// Modeled iteration latency (sim clock advance) in ms.
        latency_ms: f64,
        /// Real CPU wall-clock the scheduler spent this iteration, ms.
        sched_wall_ms: f64,
    },
    /// A running request was evicted back to the waiting queue.
    Preempted {
        /// Workload request id.
        id: u64,
        /// Replica that evicted it.
        replica: TraceReplica,
    },
    /// A previously preempted request re-entered a running batch.
    Resumed {
        /// Workload request id.
        id: u64,
        /// Replica that re-admitted it.
        replica: TraceReplica,
    },
    /// The request emitted its final token; scalar record fields ride
    /// along so attribution needs no access to `metrics` types.
    Finished {
        /// Workload request id.
        id: u64,
        /// SLO tier label (workload category).
        tier: String,
        /// Arrival time (ms).
        arrival_ms: f64,
        /// First decode iteration start (ms).
        decode_start_ms: f64,
        /// Final token time (ms).
        completion_ms: f64,
        /// Output tokens generated.
        output_tokens: u32,
        /// Preemption count over the request's lifetime.
        preemptions: u32,
        /// TTFT SLO carried by the request (ms).
        ttft_slo_ms: f64,
        /// TPOT SLO carried by the request (ms).
        tpot_slo_ms: f64,
    },
    /// Periodic counters snapshot (session gauge tick).
    Gauge(GaugeSample),
    /// A replica crashed (fault injection): its in-flight KV is lost and
    /// the requests it held return to the front door.
    ReplicaDown {
        /// The crashed replica.
        replica: TraceReplica,
        /// Human-readable fault description (e.g. `crash for 400ms`).
        fault: String,
        /// Requests whose KV/queue slot was lost on this replica.
        lost_requests: usize,
    },
    /// A previously crashed replica rejoined service.
    ReplicaRecovered {
        /// The recovered replica.
        replica: TraceReplica,
    },
    /// A non-crash fault began (slow replica, link degradation/outage).
    FaultInjected {
        /// What is faulted (`decode/1`, `kv-link`, ...).
        target: String,
        /// Human-readable fault description.
        fault: String,
        /// Requests lost to the fault at injection time (link outages
        /// abort in-flight transfers).
        lost_requests: usize,
    },
    /// A previously injected non-crash fault cleared.
    FaultCleared {
        /// What recovered (`decode/1`, `kv-link`, ...).
        target: String,
    },
    /// A request lost to a fault was scheduled for re-dispatch by the
    /// session's recovery policy.
    RetryScheduled {
        /// Workload request id.
        id: u64,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// When the request re-enters the front door (ms); the gap to
        /// `at_ms` is the exponential backoff.
        resubmit_at_ms: f64,
    },
}

/// One timestamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global simulation clock at record time, milliseconds.
    pub at_ms: f64,
    /// Payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_display_is_pool_slash_index() {
        assert_eq!(TraceReplica::decode(2).to_string(), "decode/2");
        assert_eq!(TraceReplica::prefill(0).to_string(), "prefill/0");
    }
}
