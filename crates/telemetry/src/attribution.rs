//! SLO attribution: *why* did a request miss its budget?
//!
//! [`SloAttribution::from_events`] replays a trace and decomposes every
//! finished request's end-to-end latency into five phases:
//!
//! * **queueing** — arrival until the request first entered a running
//!   batch ([`EventKind::PrefillStart`]): session queue plus replica
//!   waiting queue;
//! * **prefill** — from prefill start until the first decode step, minus
//!   any KV transfer time;
//! * **transfer** — time the request's KV pages spent on the wire
//!   (disaggregated deployments only);
//! * **decode** — first decode step to final token, minus preemption;
//! * **preemption** — time spent evicted between [`EventKind::Preempted`]
//!   and [`EventKind::Resumed`].
//!
//! Per SLO tier the violating requests' phases are pooled, weighted by
//! each request's overshoot, and the largest share is named the dominant
//! cause. A tier with zero violations falls back to pooling *all* its
//! requests (flagged via [`TierAttribution::fallback_all_requests`]) so
//! low-load sweep points still report where latency lives.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};

/// Phase names, in the order [`RequestPhases::shares_pct`] reports them.
pub const PHASES: [&str; 5] = ["queueing", "prefill", "transfer", "decode", "preemption"];

/// One request's reconstructed phase decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestPhases {
    /// Workload request id.
    pub id: u64,
    /// SLO tier label (workload category).
    pub tier: String,
    /// Arrival time (ms).
    pub arrival_ms: f64,
    /// Final token time (ms).
    pub completion_ms: f64,
    /// Time queued before first entering a running batch (ms).
    pub queueing_ms: f64,
    /// Prefill compute time (ms).
    pub prefill_ms: f64,
    /// KV transfer wire time (ms).
    pub transfer_ms: f64,
    /// Decode time excluding preemption (ms).
    pub decode_ms: f64,
    /// Time spent evicted (ms).
    pub preemption_ms: f64,
    /// How far past its SLO budget the request landed (ms); 0 when it
    /// met both its TTFT and TPOT SLOs.
    pub overshoot_ms: f64,
    /// Whether the request violated its TTFT or TPOT SLO.
    pub violated: bool,
}

impl RequestPhases {
    /// Sum of the five phases (ms).
    pub fn total_ms(&self) -> f64 {
        self.queueing_ms + self.prefill_ms + self.transfer_ms + self.decode_ms + self.preemption_ms
    }

    /// Phase shares in percent, [`PHASES`] order; sums to 100 for any
    /// request with nonzero total.
    pub fn shares_pct(&self) -> [f64; 5] {
        let total = self.total_ms();
        if total <= 0.0 {
            return [0.0; 5];
        }
        [
            100.0 * self.queueing_ms / total,
            100.0 * self.prefill_ms / total,
            100.0 * self.transfer_ms / total,
            100.0 * self.decode_ms / total,
            100.0 * self.preemption_ms / total,
        ]
    }
}

/// Aggregated attribution for one SLO tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierAttribution {
    /// Tier label.
    pub tier: String,
    /// Finished requests in the tier.
    pub requests: usize,
    /// Requests that violated their TTFT or TPOT SLO.
    pub violations: usize,
    /// Pooled queueing share in percent.
    pub queueing_pct: f64,
    /// Pooled prefill share in percent.
    pub prefill_pct: f64,
    /// Pooled transfer share in percent.
    pub transfer_pct: f64,
    /// Pooled decode share in percent.
    pub decode_pct: f64,
    /// Pooled preemption share in percent.
    pub preemption_pct: f64,
    /// Phase with the largest share.
    pub dominant: String,
    /// True when the tier had zero violations and the shares pool all
    /// requests instead of just violators.
    pub fallback_all_requests: bool,
}

impl TierAttribution {
    /// Shares in [`PHASES`] order.
    pub fn shares_pct(&self) -> [f64; 5] {
        [
            self.queueing_pct,
            self.prefill_pct,
            self.transfer_pct,
            self.decode_pct,
            self.preemption_pct,
        ]
    }

    fn pool(tier: &str, members: &[&RequestPhases]) -> Self {
        let violators: Vec<&&RequestPhases> = members.iter().filter(|p| p.violated).collect();
        let fallback = violators.is_empty();
        // Pool shares weighted by overshoot (violator mode) or uniformly
        // (fallback); each request's shares sum to 100, so the weighted
        // mean does too.
        let mut pooled = [0.0; 5];
        let mut weight_sum = 0.0;
        for p in members {
            let in_pool = fallback || p.violated;
            if !in_pool || p.total_ms() <= 0.0 {
                continue;
            }
            let w = if fallback {
                1.0
            } else {
                p.overshoot_ms.max(1e-9)
            };
            for (acc, share) in pooled.iter_mut().zip(p.shares_pct()) {
                *acc += w * share;
            }
            weight_sum += w;
        }
        if weight_sum > 0.0 {
            for acc in &mut pooled {
                *acc /= weight_sum;
            }
        }
        let dominant = PHASES
            .iter()
            .zip(pooled)
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(name, _)| (*name).to_string())
            .unwrap_or_default();
        Self {
            tier: tier.to_string(),
            requests: members.len(),
            violations: violators.len(),
            queueing_pct: pooled[0],
            prefill_pct: pooled[1],
            transfer_pct: pooled[2],
            decode_pct: pooled[3],
            preemption_pct: pooled[4],
            dominant,
            fallback_all_requests: fallback,
        }
    }
}

/// The full attribution report over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAttribution {
    /// Every finished request's decomposition, in finish order.
    pub per_request: Vec<RequestPhases>,
    /// Per-tier aggregation, sorted by tier label.
    pub per_tier: Vec<TierAttribution>,
}

impl SloAttribution {
    /// Replays `events` and builds the report. Events may arrive in any
    /// interleaving as long as each request's own events are in causal
    /// order (the tracer records them that way).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        #[derive(Default)]
        struct Pending {
            arrival_ms: Option<f64>,
            prefill_start_ms: Option<f64>,
            transfer_ms: f64,
            preempted_at: Option<f64>,
            preemption_ms: f64,
        }
        let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
        let mut per_request = Vec::new();

        for event in events {
            match &event.kind {
                EventKind::Enqueue { id, .. } => {
                    pending.entry(*id).or_default().arrival_ms = Some(event.at_ms);
                }
                EventKind::PrefillStart { id, .. } => {
                    let p = pending.entry(*id).or_default();
                    if p.prefill_start_ms.is_none() {
                        p.prefill_start_ms = Some(event.at_ms);
                    }
                }
                EventKind::KvTransfer {
                    id,
                    start_ms,
                    arrive_ms,
                    ..
                } => {
                    pending.entry(*id).or_default().transfer_ms += (arrive_ms - start_ms).max(0.0);
                }
                EventKind::Preempted { id, .. } => {
                    pending.entry(*id).or_default().preempted_at = Some(event.at_ms);
                }
                EventKind::Resumed { id, .. } => {
                    let p = pending.entry(*id).or_default();
                    if let Some(at) = p.preempted_at.take() {
                        p.preemption_ms += (event.at_ms - at).max(0.0);
                    }
                }
                EventKind::Finished {
                    id,
                    tier,
                    arrival_ms,
                    decode_start_ms,
                    completion_ms,
                    output_tokens,
                    ttft_slo_ms,
                    tpot_slo_ms,
                    ..
                } => {
                    let mut p = pending.remove(id).unwrap_or_default();
                    // A request still marked preempted at finish spent the
                    // remainder of its life evicted.
                    if let Some(at) = p.preempted_at.take() {
                        p.preemption_ms += (completion_ms - at).max(0.0);
                    }
                    let arrival = p.arrival_ms.unwrap_or(*arrival_ms);
                    let prefill_start = p.prefill_start_ms.unwrap_or(arrival);
                    let queueing = (prefill_start - arrival).max(0.0);
                    let decode_span = (completion_ms - decode_start_ms).max(0.0);
                    let preemption = p.preemption_ms.min(decode_span);
                    let prefill = (decode_start_ms - prefill_start - p.transfer_ms).max(0.0);
                    let ttft = decode_start_ms - arrival;
                    let tpot = if *output_tokens == 0 {
                        0.0
                    } else {
                        decode_span / f64::from(*output_tokens)
                    };
                    let overshoot = (ttft - ttft_slo_ms).max(0.0)
                        + ((tpot - tpot_slo_ms).max(0.0) * f64::from(*output_tokens));
                    per_request.push(RequestPhases {
                        id: *id,
                        tier: tier.clone(),
                        arrival_ms: arrival,
                        completion_ms: *completion_ms,
                        queueing_ms: queueing,
                        prefill_ms: prefill,
                        transfer_ms: p.transfer_ms,
                        decode_ms: decode_span - preemption,
                        preemption_ms: preemption,
                        overshoot_ms: overshoot,
                        violated: overshoot > 0.0,
                    });
                }
                _ => {}
            }
        }

        let mut by_tier: BTreeMap<&str, Vec<&RequestPhases>> = BTreeMap::new();
        for p in &per_request {
            by_tier.entry(p.tier.as_str()).or_default().push(p);
        }
        let per_tier = by_tier
            .iter()
            .map(|(tier, members)| TierAttribution::pool(tier, members))
            .collect();
        Self {
            per_request,
            per_tier,
        }
    }

    /// Pools every tier into one aggregate row (tier label `"all"`).
    pub fn overall(&self) -> TierAttribution {
        let members: Vec<&RequestPhases> = self.per_request.iter().collect();
        TierAttribution::pool("all", &members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceReplica;

    fn ev(at_ms: f64, kind: EventKind) -> TraceEvent {
        TraceEvent { at_ms, kind }
    }

    fn finished(id: u64, tier: &str, decode_start: f64, completion: f64, tokens: u32) -> EventKind {
        EventKind::Finished {
            id,
            tier: tier.to_string(),
            arrival_ms: 0.0,
            decode_start_ms: decode_start,
            completion_ms: completion,
            output_tokens: tokens,
            preemptions: 0,
            ttft_slo_ms: 100.0,
            tpot_slo_ms: 50.0,
        }
    }

    #[test]
    fn phases_partition_the_latency() {
        // Arrive 0, prefill start 40 (queueing 40), decode start 100 with
        // a 10 ms transfer inside (prefill 50), finish 300 with a 30 ms
        // preemption window (decode 170).
        let events = vec![
            ev(
                0.0,
                EventKind::Enqueue {
                    id: 1,
                    prompt_tokens: 64,
                    output_tokens: 4,
                },
            ),
            ev(
                40.0,
                EventKind::PrefillStart {
                    id: 1,
                    replica: TraceReplica::decode(0),
                },
            ),
            ev(
                60.0,
                EventKind::KvTransfer {
                    id: 1,
                    from_prefill: 0,
                    to_decode: 0,
                    bytes: 1024,
                    start_ms: 60.0,
                    arrive_ms: 70.0,
                },
            ),
            ev(
                150.0,
                EventKind::Preempted {
                    id: 1,
                    replica: TraceReplica::decode(0),
                },
            ),
            ev(
                180.0,
                EventKind::Resumed {
                    id: 1,
                    replica: TraceReplica::decode(0),
                },
            ),
            ev(300.0, finished(1, "chatbot", 100.0, 300.0, 4)),
        ];
        let attr = SloAttribution::from_events(&events);
        assert_eq!(attr.per_request.len(), 1);
        let p = &attr.per_request[0];
        assert!((p.queueing_ms - 40.0).abs() < 1e-9);
        assert!((p.prefill_ms - 50.0).abs() < 1e-9);
        assert!((p.transfer_ms - 10.0).abs() < 1e-9);
        assert!((p.preemption_ms - 30.0).abs() < 1e-9);
        assert!((p.decode_ms - 170.0).abs() < 1e-9);
        assert!((p.total_ms() - 300.0).abs() < 1e-9);
        let shares: f64 = p.shares_pct().iter().sum();
        assert!((shares - 100.0).abs() < 1e-9);
        // TPOT 50 ms/token exactly meets the SLO; TTFT 100 meets 100.
        assert!(!p.violated);
    }

    #[test]
    fn violation_and_dominant_cause() {
        // Queueing-dominated violator: 400 ms queued, 50 prefill, decode
        // at the SLO rate.
        let events = vec![
            ev(
                0.0,
                EventKind::Enqueue {
                    id: 7,
                    prompt_tokens: 64,
                    output_tokens: 4,
                },
            ),
            ev(
                400.0,
                EventKind::PrefillStart {
                    id: 7,
                    replica: TraceReplica::decode(0),
                },
            ),
            ev(650.0, finished(7, "chatbot", 450.0, 650.0, 4)),
        ];
        let attr = SloAttribution::from_events(&events);
        let p = &attr.per_request[0];
        assert!(p.violated, "TTFT 450 ms against a 100 ms SLO");
        assert!((p.overshoot_ms - 350.0).abs() < 1e-9);
        assert_eq!(attr.per_tier.len(), 1);
        let tier = &attr.per_tier[0];
        assert_eq!(tier.tier, "chatbot");
        assert_eq!(tier.violations, 1);
        assert!(!tier.fallback_all_requests);
        assert_eq!(tier.dominant, "queueing");
        let sum: f64 = tier.shares_pct().iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn tier_without_violations_falls_back_to_all_requests() {
        let events = vec![
            ev(
                10.0,
                EventKind::PrefillStart {
                    id: 1,
                    replica: TraceReplica::decode(0),
                },
            ),
            ev(90.0, finished(1, "copilot", 60.0, 90.0, 4)),
        ];
        let attr = SloAttribution::from_events(&events);
        let tier = &attr.per_tier[0];
        assert_eq!(tier.violations, 0);
        assert!(tier.fallback_all_requests);
        assert_eq!(tier.dominant, "prefill");
        let sum: f64 = tier.shares_pct().iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn overall_pools_across_tiers() {
        let events = vec![
            ev(50.0, finished(1, "chatbot", 10.0, 50.0, 1)),
            ev(60.0, finished(2, "copilot", 20.0, 60.0, 1)),
        ];
        let attr = SloAttribution::from_events(&events);
        assert_eq!(attr.per_tier.len(), 2);
        let all = attr.overall();
        assert_eq!(all.tier, "all");
        assert_eq!(all.requests, 2);
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let attr = SloAttribution::from_events(&[]);
        assert!(attr.per_request.is_empty());
        assert!(attr.per_tier.is_empty());
        assert_eq!(attr.overall().requests, 0);
    }
}
