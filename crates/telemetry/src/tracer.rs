//! The [`Tracer`] handle and its ring-buffered event log.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, TraceEvent};

/// Default ring capacity when callers don't specify one: enough for every
/// event of a multi-minute sweep point without unbounded growth.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

#[derive(Debug, Default)]
struct TraceLog {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    fn push(&mut self, event: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

/// Cheap cloneable tracing handle.
///
/// The handle is either *off* (the default — [`Tracer::record`] is a
/// single branch, so leaving call sites in the hot loop costs ~nothing,
/// enforced by the `perf_report` tracer gate) or backed by a shared
/// bounded ring buffer. Clones share the same buffer, which is how one
/// logical trace spans the session, its deployment and every replica —
/// including replicas stepping on sharded-executor worker threads, hence
/// the mutex.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    log: Option<Arc<Mutex<TraceLog>>>,
}

impl Tracer {
    /// A disabled tracer: records nothing, costs one branch per call.
    pub fn off() -> Self {
        Self { log: None }
    }

    /// An enabled tracer over a bounded ring of `capacity` events. When
    /// the ring fills, the oldest events are dropped (counted by
    /// [`Tracer::dropped`]) so a long run degrades to a suffix trace
    /// instead of unbounded memory.
    pub fn ring(capacity: usize) -> Self {
        Self {
            log: Some(Arc::new(Mutex::new(TraceLog {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }))),
        }
    }

    /// An enabled tracer with [`DEFAULT_RING_CAPACITY`].
    pub fn on() -> Self {
        Self::ring(DEFAULT_RING_CAPACITY)
    }

    /// Whether events are being recorded. Call sites that build payloads
    /// with allocations (strings, vectors) should check this first so the
    /// disabled path allocates nothing.
    pub fn enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Appends one event stamped `at_ms`. No-op when disabled.
    pub fn record(&self, at_ms: f64, kind: EventKind) {
        if let Some(log) = &self.log {
            log.lock()
                .expect("trace log lock poisoned")
                .push(TraceEvent { at_ms, kind });
        }
    }

    /// Copies out the buffered events in record order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.log {
            Some(log) => log
                .lock()
                .expect("trace log lock poisoned")
                .ring
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.log {
            Some(log) => log.lock().expect("trace log lock poisoned").dropped,
            None => 0,
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match &self.log {
            Some(log) => log.lock().expect("trace log lock poisoned").ring.len(),
            None => 0,
        }
    }

    /// Whether no events are buffered (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enqueue(id: u64) -> EventKind {
        EventKind::Enqueue {
            id,
            prompt_tokens: 8,
            output_tokens: 4,
        }
    }

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.record(1.0, enqueue(1));
        assert!(t.snapshot().is_empty());
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn default_is_off() {
        assert!(!Tracer::default().enabled());
    }

    #[test]
    fn clones_share_one_log() {
        let t = Tracer::ring(16);
        let clone = t.clone();
        t.record(1.0, enqueue(1));
        clone.record(2.0, enqueue(2));
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ms, 1.0);
        assert_eq!(events[1].at_ms, 2.0);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let t = Tracer::ring(2);
        for id in 0..5 {
            t.record(id as f64, enqueue(id));
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at_ms, 3.0);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn tracer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer>();
    }
}
