//! Chrome-trace / Perfetto JSON export.
//!
//! [`export`] renders a trace into the Chrome trace-event JSON format
//! (`{"traceEvents": [...]}`), loadable in `ui.perfetto.dev` or
//! `chrome://tracing`. Process 1 holds one track per replica (iteration
//! and prefill-chunk spans plus gauge counters); process 2 holds one
//! track per request (queue / prefill / transfer / decode / preempted
//! phase spans, with instant markers for routing and rejection).
//!
//! Simulation milliseconds map to trace microseconds (the format's native
//! unit), so 1 ms of sim time is 1 µs × 1000 on screen. The exporter is
//! deterministic: rows are sorted by timestamp, then process, track and
//! name, so identical traces serialize identically. The JSON is
//! hand-rolled — this crate sits below `bench` and the container has no
//! serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::event::{EventKind, TraceEvent, TraceReplica};

const REPLICA_PID: u64 = 1;
const REQUEST_PID: u64 = 2;

/// One serialized trace row plus its sort key.
struct Row {
    ts_us: f64,
    pid: u64,
    tid: u64,
    json: String,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn meta_thread_name(pid: u64, tid: u64, name: &str) -> Row {
    Row {
        ts_us: -1.0, // metadata sorts ahead of every span
        pid,
        tid,
        json: format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ),
    }
}

fn meta_process_name(pid: u64, name: &str) -> Row {
    Row {
        ts_us: -2.0,
        pid,
        tid: 0,
        json: format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ),
    }
}

fn span(pid: u64, tid: u64, name: &str, start_ms: f64, dur_ms: f64, args: &str) -> Row {
    let ts_us = start_ms * 1000.0;
    Row {
        ts_us,
        pid,
        tid,
        json: format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            num(ts_us),
            num((dur_ms * 1000.0).max(0.0)),
            escape(name),
        ),
    }
}

fn instant(pid: u64, tid: u64, name: &str, at_ms: f64, args: &str) -> Row {
    let ts_us = at_ms * 1000.0;
    Row {
        ts_us,
        pid,
        tid,
        json: format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            num(ts_us),
            escape(name),
        ),
    }
}

fn counter(pid: u64, tid: u64, name: &str, at_ms: f64, args: &str) -> Row {
    let ts_us = at_ms * 1000.0;
    Row {
        ts_us,
        pid,
        tid,
        json: format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            num(ts_us),
            escape(name),
        ),
    }
}

/// Per-request state accumulated while replaying the event stream.
#[derive(Default)]
struct ReqState {
    enqueue_ms: Option<f64>,
    prefill_start_ms: Option<f64>,
    preempted_at: Option<f64>,
    seen: bool,
}

/// Renders `events` as Chrome trace-event JSON.
pub fn export(events: &[TraceEvent]) -> String {
    let mut rows: Vec<Row> = Vec::new();

    // Replica tracks: stable tids in sorted replica order.
    let mut replicas: BTreeMap<TraceReplica, u64> = BTreeMap::new();
    for event in events {
        let replica = match &event.kind {
            EventKind::Iteration { replica, .. }
            | EventKind::PrefillChunk { replica, .. }
            | EventKind::PrefillStart { replica, .. }
            | EventKind::Admitted { replica, .. }
            | EventKind::RouteDecision { replica, .. }
            | EventKind::Preempted { replica, .. }
            | EventKind::Resumed { replica, .. }
            | EventKind::ReplicaDown { replica, .. }
            | EventKind::ReplicaRecovered { replica, .. } => *replica,
            _ => continue,
        };
        let next = replicas.len() as u64 + 1;
        replicas.entry(replica).or_insert(next);
    }
    rows.push(meta_process_name(REPLICA_PID, "replicas"));
    rows.push(meta_process_name(REQUEST_PID, "requests"));
    for (replica, tid) in &replicas {
        rows.push(meta_thread_name(REPLICA_PID, *tid, &replica.to_string()));
    }

    let mut requests: BTreeMap<u64, ReqState> = BTreeMap::new();
    for event in events {
        let at = event.at_ms;
        match &event.kind {
            EventKind::Enqueue { id, .. } => {
                let state = requests.entry(*id).or_default();
                state.enqueue_ms = Some(at);
                state.seen = true;
            }
            EventKind::Admitted {
                id,
                cached_prefix_tokens,
                ..
            } => {
                requests.entry(*id).or_default().seen = true;
                rows.push(instant(
                    REQUEST_PID,
                    id + 1,
                    "admitted",
                    at,
                    &format!("\"cached_prefix_tokens\":{cached_prefix_tokens}"),
                ));
            }
            EventKind::Rejected { id, reason } => {
                requests.entry(*id).or_default().seen = true;
                rows.push(instant(
                    REQUEST_PID,
                    id + 1,
                    "rejected",
                    at,
                    &format!("\"reason\":\"{}\"", escape(reason)),
                ));
            }
            EventKind::RouteDecision {
                id,
                router,
                replica,
                modeled_load_ms,
            } => {
                requests.entry(*id).or_default().seen = true;
                rows.push(instant(
                    REQUEST_PID,
                    id + 1,
                    "route",
                    at,
                    &format!(
                        "\"router\":\"{}\",\"replica\":\"{replica}\",\"modeled_load_ms\":{}",
                        escape(router),
                        num(*modeled_load_ms)
                    ),
                ));
            }
            EventKind::PrefillStart { id, .. } => {
                let state = requests.entry(*id).or_default();
                state.seen = true;
                if state.prefill_start_ms.is_none() {
                    state.prefill_start_ms = Some(at);
                    if let Some(enq) = state.enqueue_ms {
                        rows.push(span(REQUEST_PID, id + 1, "queue", enq, at - enq, ""));
                    }
                }
            }
            EventKind::PrefillChunk {
                replica,
                requests: batch,
                tokens,
                latency_ms,
            } => {
                let tid = replicas[replica];
                rows.push(span(
                    REPLICA_PID,
                    tid,
                    "prefill_chunk",
                    at - latency_ms,
                    *latency_ms,
                    &format!("\"requests\":{batch},\"tokens\":{tokens}"),
                ));
            }
            EventKind::KvTransfer {
                id,
                bytes,
                start_ms,
                arrive_ms,
                ..
            } => {
                requests.entry(*id).or_default().seen = true;
                rows.push(span(
                    REQUEST_PID,
                    id + 1,
                    "kv_transfer",
                    *start_ms,
                    arrive_ms - start_ms,
                    &format!("\"bytes\":{bytes}"),
                ));
            }
            EventKind::Iteration {
                replica,
                batch,
                draft_tokens,
                accepted_tokens,
                latency_ms,
                ..
            } => {
                let tid = replicas[replica];
                rows.push(span(
                    REPLICA_PID,
                    tid,
                    "iteration",
                    at - latency_ms,
                    *latency_ms,
                    &format!(
                        "\"batch\":{batch},\"draft_tokens\":{draft_tokens},\
                         \"accepted_tokens\":{accepted_tokens}"
                    ),
                ));
            }
            EventKind::Preempted { id, .. } => {
                requests.entry(*id).or_default().preempted_at = Some(at);
            }
            EventKind::Resumed { id, .. } => {
                let state = requests.entry(*id).or_default();
                if let Some(from) = state.preempted_at.take() {
                    rows.push(span(REQUEST_PID, id + 1, "preempted", from, at - from, ""));
                }
            }
            EventKind::Finished {
                id,
                tier,
                arrival_ms,
                decode_start_ms,
                completion_ms,
                output_tokens,
                ..
            } => {
                let state = requests.entry(*id).or_default();
                state.seen = true;
                let prefill_from = state.prefill_start_ms.unwrap_or(*arrival_ms);
                rows.push(span(
                    REQUEST_PID,
                    id + 1,
                    "prefill",
                    prefill_from,
                    decode_start_ms - prefill_from,
                    &format!("\"tier\":\"{}\"", escape(tier)),
                ));
                rows.push(span(
                    REQUEST_PID,
                    id + 1,
                    "decode",
                    *decode_start_ms,
                    completion_ms - decode_start_ms,
                    &format!("\"output_tokens\":{output_tokens}"),
                ));
            }
            EventKind::ReplicaDown {
                replica,
                fault,
                lost_requests,
            } => {
                let tid = replicas[replica];
                rows.push(instant(
                    REPLICA_PID,
                    tid,
                    "replica_down",
                    at,
                    &format!(
                        "\"fault\":\"{}\",\"lost_requests\":{lost_requests}",
                        escape(fault)
                    ),
                ));
            }
            EventKind::ReplicaRecovered { replica } => {
                let tid = replicas[replica];
                rows.push(instant(REPLICA_PID, tid, "replica_recovered", at, ""));
            }
            EventKind::FaultInjected {
                target,
                fault,
                lost_requests,
            } => {
                rows.push(instant(
                    REPLICA_PID,
                    0,
                    "fault_injected",
                    at,
                    &format!(
                        "\"target\":\"{}\",\"fault\":\"{}\",\"lost_requests\":{lost_requests}",
                        escape(target),
                        escape(fault)
                    ),
                ));
            }
            EventKind::FaultCleared { target } => {
                rows.push(instant(
                    REPLICA_PID,
                    0,
                    "fault_cleared",
                    at,
                    &format!("\"target\":\"{}\"", escape(target)),
                ));
            }
            EventKind::RetryScheduled {
                id,
                attempt,
                resubmit_at_ms,
            } => {
                requests.entry(*id).or_default().seen = true;
                rows.push(instant(
                    REQUEST_PID,
                    id + 1,
                    "retry_scheduled",
                    at,
                    &format!(
                        "\"attempt\":{attempt},\"resubmit_at_ms\":{},\"backoff_ms\":{}",
                        num(*resubmit_at_ms),
                        num(resubmit_at_ms - at)
                    ),
                ));
            }
            EventKind::Gauge(sample) => {
                rows.push(counter(
                    REPLICA_PID,
                    0,
                    "gauges",
                    at,
                    &format!(
                        "\"queue_depth\":{},\"in_flight\":{},\"kv_occupancy_pct\":{},\
                         \"cache_hit_rate_pct\":{}",
                        sample.queue_depth,
                        sample.in_flight,
                        num(sample.kv_occupancy_pct),
                        num(sample.cache_hit_rate_pct)
                    ),
                ));
            }
        }
    }
    for (id, state) in &requests {
        if state.seen {
            rows.push(meta_thread_name(REQUEST_PID, id + 1, &format!("req {id}")));
        }
    }

    rows.sort_by(|a, b| {
        a.ts_us
            .total_cmp(&b.ts_us)
            .then(a.pid.cmp(&b.pid))
            .then(a.tid.cmp(&b.tid))
            .then(a.json.cmp(&b.json))
    });

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.json);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Renders and writes the trace to `path`.
pub fn export_to_file(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, export(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GaugeSample, TracePool};

    fn iteration(at_ms: f64, replica: TraceReplica) -> TraceEvent {
        TraceEvent {
            at_ms,
            kind: EventKind::Iteration {
                replica,
                batch: 3,
                draft_tokens: 12,
                accepted_tokens: 7,
                prefill_ms: 0.0,
                latency_ms: 25.0,
                sched_wall_ms: 0.01,
            },
        }
    }

    #[test]
    fn one_thread_name_per_replica() {
        let events = vec![
            iteration(25.0, TraceReplica::decode(0)),
            iteration(25.0, TraceReplica::decode(1)),
            iteration(50.0, TraceReplica::decode(0)),
            iteration(30.0, TraceReplica::prefill(0)),
        ];
        let json = export(&events);
        assert_eq!(json.matches("\"name\":\"decode/0\"").count(), 1);
        assert_eq!(json.matches("\"name\":\"decode/1\"").count(), 1);
        assert_eq!(json.matches("\"name\":\"prefill/0\"").count(), 1);
        assert_eq!(json.matches("\"name\":\"iteration\"").count(), 4);
    }

    #[test]
    fn request_track_carries_phase_spans() {
        let events = vec![
            TraceEvent {
                at_ms: 0.0,
                kind: EventKind::Enqueue {
                    id: 4,
                    prompt_tokens: 64,
                    output_tokens: 8,
                },
            },
            TraceEvent {
                at_ms: 10.0,
                kind: EventKind::PrefillStart {
                    id: 4,
                    replica: TraceReplica::decode(0),
                },
            },
            TraceEvent {
                at_ms: 90.0,
                kind: EventKind::Finished {
                    id: 4,
                    tier: "chatbot".into(),
                    arrival_ms: 0.0,
                    decode_start_ms: 40.0,
                    completion_ms: 90.0,
                    output_tokens: 8,
                    preemptions: 0,
                    ttft_slo_ms: 100.0,
                    tpot_slo_ms: 50.0,
                },
            },
        ];
        let json = export(&events);
        for phase in ["queue", "prefill", "decode"] {
            assert!(
                json.contains(&format!("\"name\":\"{phase}\"")),
                "missing {phase} span"
            );
        }
        assert!(json.contains("\"name\":\"req 4\""));
    }

    #[test]
    fn fault_events_render_as_instant_markers_with_args() {
        let events = vec![
            iteration(25.0, TraceReplica::decode(1)),
            TraceEvent {
                at_ms: 30.0,
                kind: EventKind::ReplicaDown {
                    replica: TraceReplica::decode(1),
                    fault: "crash for 400ms".into(),
                    lost_requests: 3,
                },
            },
            TraceEvent {
                at_ms: 35.0,
                kind: EventKind::RetryScheduled {
                    id: 9,
                    attempt: 1,
                    resubmit_at_ms: 85.0,
                },
            },
            TraceEvent {
                at_ms: 40.0,
                kind: EventKind::FaultInjected {
                    target: "kv-link".into(),
                    fault: "outage for 200ms".into(),
                    lost_requests: 1,
                },
            },
            TraceEvent {
                at_ms: 240.0,
                kind: EventKind::FaultCleared {
                    target: "kv-link".into(),
                },
            },
            TraceEvent {
                at_ms: 430.0,
                kind: EventKind::ReplicaRecovered {
                    replica: TraceReplica::decode(1),
                },
            },
        ];
        let json = export(&events);
        assert!(json.contains("\"name\":\"replica_down\""));
        assert!(json.contains("\"fault\":\"crash for 400ms\""));
        assert!(json.contains("\"lost_requests\":3"));
        assert!(json.contains("\"name\":\"replica_recovered\""));
        assert!(json.contains("\"name\":\"fault_injected\""));
        assert!(json.contains("\"target\":\"kv-link\""));
        assert!(json.contains("\"name\":\"fault_cleared\""));
        assert!(json.contains("\"name\":\"retry_scheduled\""));
        assert!(json.contains("\"attempt\":1"));
        assert!(json.contains("\"backoff_ms\":50"));
        assert!(json.contains("\"name\":\"req 9\""), "retry pins the track");
    }

    #[test]
    fn export_is_deterministic_and_balanced() {
        let events = vec![
            iteration(
                25.0,
                TraceReplica {
                    pool: TracePool::Decode,
                    index: 0,
                },
            ),
            TraceEvent {
                at_ms: 5.0,
                kind: EventKind::Gauge(GaugeSample {
                    queue_depth: 2,
                    in_flight: 3,
                    kv_occupancy_pct: 41.5,
                    cache_hit_rate_pct: 0.0,
                }),
            },
        ];
        let a = export(&events);
        let b = export(&events);
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with("]}"));
    }
}
