//! Criterion micro-benchmarks of the AdaServe pipeline components.
//!
//! These quantify the *real CPU cost* of the reimplemented algorithms —
//! candidate-tree speculation, the two selection phases (Algorithm 2), tree
//! verification, Algorithm 1, the paged-KV allocator and a full engine
//! iteration — backing the paper's claim that scheduling overhead is
//! negligible next to GPU time (Fig. 15).

use adaserve_core::{optimal_trees, select_tokens, AdaServeEngine, ExplicitProbTree, ScsdInput};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use serving::{Colocated, ServeSession, SystemConfig};
use simllm::{ContentClass, Lm, LmContext, ModelPair, TokenId};
use spectree::{verify_tree, CandidateTree, SpecParams, SpeculateScratch, TokenTree, VerifyMode};
use std::hint::black_box;
use workload::WorkloadBuilder;

fn bench_speculation(c: &mut Criterion) {
    let pair = ModelPair::calibrated(7);
    let tokens: Vec<TokenId> = (0..32).map(|i| TokenId(100 + i)).collect();
    let mut group = c.benchmark_group("speculation");
    for (d, w) in [(4u32, 2u32), (8, 4)] {
        group.bench_function(format!("beam_d{d}_w{w}"), |b| {
            b.iter(|| {
                let ctx = LmContext::new(5, ContentClass::Chat, &tokens);
                black_box(CandidateTree::speculate(
                    pair.draft(),
                    &ctx,
                    SpecParams::new(d, w),
                ))
            })
        });
    }
    group.finish();
}

fn candidate_trees(n: usize, d: u32, w: u32) -> Vec<TokenTree> {
    let pair = ModelPair::calibrated(7);
    (0..n)
        .map(|i| {
            let tokens: Vec<TokenId> = (0..16).map(|k| TokenId(50 + k + i as u32)).collect();
            let ctx = LmContext::new(i as u64, ContentClass::Chat, &tokens);
            CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(d, w)).into_tree()
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for n in [8usize, 32, 128] {
        let trees = candidate_trees(n, 6, 4);
        let refs: Vec<&TokenTree> = trees.iter().collect();
        let requirements: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64 * 0.4).collect();
        group.bench_function(format!("scsd_n{n}"), |b| {
            b.iter(|| {
                black_box(select_tokens(&ScsdInput {
                    candidates: &refs,
                    requirements: &requirements,
                    budget: 160,
                    n_max: 8,
                    min_phase2_prob: 0.08,
                }))
            })
        });
    }
    group.finish();
}

fn bench_dist_cache(c: &mut Criterion) {
    // The LM-distribution memo: a cold lookup computes the blended head,
    // a warm lookup is a table probe plus an Arc bump. The ratio is what
    // verification (which re-reads draft-pass contexts) gains.
    let tokens: Vec<TokenId> = (0..16).map(|i| TokenId(40 + i)).collect();
    let mut group = c.benchmark_group("dist_cache");
    group.bench_function("target_cold", |b| {
        let mut stream = 0u64;
        let pair = ModelPair::calibrated(7);
        b.iter(|| {
            stream += 1; // fresh stream seed => guaranteed memo miss
            let ctx = LmContext::new(stream, ContentClass::Chat, &tokens);
            black_box(pair.target().next_dist_arc(&ctx))
        })
    });
    group.bench_function("target_warm", |b| {
        let pair = ModelPair::calibrated(7);
        let ctx = LmContext::new(5, ContentClass::Chat, &tokens);
        let _ = pair.target().next_dist_arc(&ctx); // prime
        b.iter(|| black_box(pair.target().next_dist_arc(&ctx)))
    });
    group.bench_function("draft_top4_fused", |b| {
        let pair = ModelPair::calibrated(7);
        let mut stream = 0u64;
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        b.iter(|| {
            stream += 1;
            let ctx = LmContext::new(stream, ContentClass::Chat, &tokens);
            pair.draft()
                .top_w_extended(&ctx, &[], 4, &mut scratch, &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_tree_ops(c: &mut Criterion) {
    // The flat (intrusive-children) tree layout: pooled rebuilds and the
    // dense induced-subtree remap both run per request per iteration.
    let pair = ModelPair::calibrated(7);
    let tokens: Vec<TokenId> = (0..24).map(|i| TokenId(60 + i)).collect();
    let ctx = LmContext::new(11, ContentClass::Chat, &tokens);
    let params = SpecParams::new(6, 4);
    let cand = CandidateTree::speculate(pair.draft(), &ctx, params);
    let order = cand.tree().speculated_by_prob_desc();

    let mut group = c.benchmark_group("tree_ops");
    group.bench_function("speculate_pooled_d6_w4", |b| {
        let mut pooled = CandidateTree::empty();
        let mut scratch = SpeculateScratch::new();
        b.iter(|| {
            pooled.speculate_with(pair.draft(), &ctx, params, &mut scratch);
            black_box(pooled.tree().len())
        })
    });
    group.bench_function("induced_subtree_dense_remap", |b| {
        let keep = &order[..order.len() / 2];
        let mut out = TokenTree::new(TokenId(0));
        let mut scratch = spectree::SubtreeScratch::default();
        b.iter(|| {
            cand.tree()
                .induced_subtree_into(keep, &mut out, &mut scratch)
                .expect("connected prefix");
            black_box(out.len())
        })
    });
    group.bench_function("prob_desc_order_into", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            cand.tree().speculated_by_prob_desc_into(&mut buf);
            black_box(buf.len())
        })
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let pair = ModelPair::calibrated(7);
    let tokens: Vec<TokenId> = (0..24).map(|i| TokenId(70 + i)).collect();
    let ctx = LmContext::new(3, ContentClass::Chat, &tokens);
    let cand = CandidateTree::speculate(pair.draft(), &ctx, SpecParams::new(6, 4));
    c.bench_function("verify_tree_24node", |b| {
        b.iter(|| {
            black_box(verify_tree(
                pair.target(),
                &ctx,
                cand.tree(),
                0,
                VerifyMode::Stochastic,
            ))
        })
    });
}

fn bench_algorithm1(c: &mut Criterion) {
    // A moderately wide explicit tree per request.
    let build = |seed: u64| {
        let mut t = ExplicitProbTree::new(TokenId(0));
        let mut frontier = vec![0usize];
        let mut next_token = 1u32;
        for depth in 0..4 {
            let mut new_frontier = Vec::new();
            for &p in &frontier {
                for k in 0..3u32 {
                    let edge = 0.15 + 0.2 * ((seed + u64::from(k) + depth) % 4) as f64 / 4.0;
                    let id = t.add(p, TokenId(next_token), edge.min(0.9));
                    next_token += 1;
                    new_frontier.push(id);
                }
            }
            frontier = new_frontier;
        }
        t
    };
    let trees: Vec<ExplicitProbTree> = (0..16).map(build).collect();
    let refs: Vec<&ExplicitProbTree> = trees.iter().collect();
    let requirements = vec![1.2f64; 16];
    c.bench_function("algorithm1_16req", |b| {
        b.iter(|| black_box(optimal_trees(&refs, &requirements, 128)))
    });
}

fn bench_block_manager(c: &mut Criterion) {
    c.bench_function("block_manager_churn", |b| {
        b.iter_batched(
            || serving::BlockManager::new(4096, 16),
            |mut m| {
                for id in 0..256u64 {
                    m.reserve(id, 64 + id % 512);
                }
                for id in 0..256u64 {
                    m.release(id);
                }
                black_box(m.free_blocks())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_engine_iteration(c: &mut Criterion) {
    // Measures real scheduler CPU per simulated second of serving.
    c.bench_function("adaserve_serve_10s_sim", |b| {
        b.iter_batched(
            || {
                let config = SystemConfig::llama70b(1);
                let wl = WorkloadBuilder::new(3, config.baseline_ms)
                    .target_rps(2.0)
                    .duration_ms(10_000.0)
                    .build();
                (AdaServeEngine::new(config), wl)
            },
            |(engine, wl)| {
                let result = ServeSession::new(Colocated::new(Box::new(engine)))
                    .serve(&wl)
                    .unwrap();
                black_box(result.records.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_speculation, bench_selection, bench_dist_cache,
              bench_tree_ops, bench_verification, bench_algorithm1,
              bench_block_manager, bench_engine_iteration
}
criterion_main!(benches);
