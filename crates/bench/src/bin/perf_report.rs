//! `perf_report` — wall-clock performance of the serving hot loop.
//!
//! Every other bench binary reports what the *modelled system* does (SLO
//! attainment, goodput); this one reports what the *implementation*
//! costs: how many simulated output tokens and engine iterations one CPU
//! second drives, the peak decoding batch, the measured scheduling share
//! (the paper's Fig. 15 claim) and the LM-distribution cache hit rate.
//! It is the repo's wall-clock perf trajectory: CI emits and
//! schema-checks `BENCH_perf.json` on every push, so a PR that slows the
//! hot loop changes a tracked artifact instead of slipping by.
//!
//! Rows: a colocated AdaServe engine, and a 4-replica cluster stepped
//! both in parallel (the default) and sequentially — the cluster pair
//! exposes the parallel-stepping lever on multi-core hosts while staying
//! record-for-record identical (see `tests/output_equivalence.rs`).
//!
//! ```sh
//! cargo run --release -p adaserve-bench --bin perf_report -- \
//!     [--quick] [--duration-s F] [--json-out BENCH_perf.json]
//! ```

use adaserve_bench::{PerfRow, PerfSummary};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use metrics::HotLoopStats;
use serving::{Colocated, Deployment, RunReport, ServeSession, ServingEngine, SystemConfig};
use std::time::Instant;
use workload::{Workload, WorkloadBuilder};

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

/// Serves `wl` on `deployment`, returning the report and the wall time.
fn timed<D: Deployment>(deployment: D, wl: &Workload) -> (RunReport, f64) {
    let start = Instant::now();
    let report = ServeSession::new(deployment)
        .serve(wl)
        .expect("perf run completes");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

fn row(label: &str, report: &RunReport, wall_ms: f64) -> PerfRow {
    let sim_tokens: u64 = report
        .records
        .iter()
        .map(|r| u64::from(r.output_tokens))
        .sum();
    let mut hotloop = HotLoopStats::default();
    let mut breakdown = metrics::LatencyBreakdown::new();
    for u in report.serving_units() {
        hotloop.merge(&u.result.hotloop);
        breakdown.merge(&u.result.breakdown);
    }
    let (scheduling_share_pct, _, _, _) = breakdown.shares_pct();
    let wall_s = (wall_ms / 1e3).max(1e-9);
    PerfRow {
        label: label.to_string(),
        wall_ms,
        sim_ms: report.end_ms,
        sim_tokens,
        sim_tokens_per_sec: sim_tokens as f64 / wall_s,
        iterations: report.iterations,
        iterations_per_sec: report.iterations as f64 / wall_s,
        peak_decode_batch: hotloop.peak_decode_batch,
        scheduling_share_pct,
        dist_cache_hit_rate_pct: hotloop.dist_cache_hit_rate_pct(),
    }
}

fn main() {
    adaserve_bench::check_sweep_args("perf_report");
    let seed = adaserve_bench::seed();
    let duration_ms = adaserve_bench::sweep_duration_ms(10_000.0, 60_000.0);
    let mode = if adaserve_bench::is_smoke() {
        "smoke"
    } else {
        "full"
    };
    let config = SystemConfig::llama70b(seed);
    let baseline_ms = config.baseline_ms;
    let rps = if mode == "smoke" { 2.0 } else { 4.0 };
    let wl = WorkloadBuilder::new(seed, baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();

    println!("perf_report: seed={seed} duration={duration_ms}ms rps={rps} mode={mode}");
    let mut summary = PerfSummary::new("perf_report", mode, seed, duration_ms);

    let (report, wall_ms) = timed(Colocated::new(Box::new(AdaServeEngine::new(config))), &wl);
    summary
        .rows
        .push(row(&format!("colocated rps={rps}"), &report, wall_ms));

    // Heavier aggregate traffic for the fleet rows so every replica works.
    let fleet_wl = WorkloadBuilder::new(seed ^ 0xF1EE7, baseline_ms)
        .target_rps(rps * 4.0)
        .duration_ms(duration_ms)
        .build();
    let (par_report, par_wall) = timed(
        Cluster::new(engines(4, seed), RouterKind::SloAware.build()).with_parallel_stepping(true),
        &fleet_wl,
    );
    summary.rows.push(row(
        &format!("cluster-4x parallel rps={}", rps * 4.0),
        &par_report,
        par_wall,
    ));
    let (seq_report, seq_wall) = timed(
        Cluster::new(engines(4, seed), RouterKind::SloAware.build()).with_parallel_stepping(false),
        &fleet_wl,
    );
    summary.rows.push(row(
        &format!("cluster-4x sequential rps={}", rps * 4.0),
        &seq_report,
        seq_wall,
    ));
    assert_eq!(
        par_report.records, seq_report.records,
        "parallel and sequential stepping must stay record-identical"
    );

    println!(
        "{:<32} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "row", "wall_ms", "sim_tok/s", "iters/s", "peak_b", "sched%", "cache%"
    );
    for r in &summary.rows {
        println!(
            "{:<32} {:>10.1} {:>12.0} {:>10.0} {:>8} {:>8.3} {:>8.1}",
            r.label,
            r.wall_ms,
            r.sim_tokens_per_sec,
            r.iterations_per_sec,
            r.peak_decode_batch,
            r.scheduling_share_pct,
            r.dist_cache_hit_rate_pct,
        );
    }

    if let Some(path) = adaserve_bench::parse_json_out() {
        summary.write(&path).expect("write perf artifact");
    }
}
