//! `perf_report` — wall-clock performance of the serving hot loop.
//!
//! Every other bench binary reports what the *modelled system* does (SLO
//! attainment, goodput); this one reports what the *implementation*
//! costs: how many simulated output tokens and engine iterations one CPU
//! second drives, the peak decoding batch, the measured scheduling share
//! (the paper's Fig. 15 claim) and the LM-distribution cache hit rate.
//! It is the repo's wall-clock perf trajectory: CI emits and
//! schema-checks `BENCH_perf.json` on every push, so a PR that slows the
//! hot loop changes a tracked artifact instead of slipping by.
//!
//! Rows: a colocated AdaServe engine (plus an explicit `tracer=off` twin
//! the CI tracer gate compares against it, and an informational
//! `tracer=on` row pricing live event recording), and a 4-replica
//! cluster stepped under the resolved [`serving::ExecMode`]
//! (`ADASERVE_EXEC`-overridable, sharded by default) and sequentially —
//! the cluster pair is the executor's tracked win and stays
//! record-for-record identical (see `tests/output_equivalence.rs`).
//!
//! Methodology: every configuration gets one unmeasured warmup run, then
//! the cluster pair is timed in interleaved rounds keeping each side's
//! best of [`TRIALS`] — first-measured-run cold-start bias (allocator and
//! i-cache warmup) otherwise dwarfs the executor difference on small
//! smoke runs.
//!
//! ```sh
//! cargo run --release -p adaserve-bench --bin perf_report -- \
//!     [--quick] [--duration-s F] [--json-out BENCH_perf.json]
//! ```

use adaserve_bench::{PerfRow, PerfSummary};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use metrics::telemetry::Tracer;
use metrics::HotLoopStats;
use serving::{
    Colocated, Deployment, ExecMode, RunReport, ServeSession, ServingEngine, SystemConfig,
};
use std::time::Instant;
use workload::{Workload, WorkloadBuilder};

/// Measured trials per configuration (best-of; one extra warmup run).
const TRIALS: usize = 3;

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

/// Serves `wl` through a pre-built session, returning the report and the
/// wall time.
fn timed_session<D: Deployment>(mut session: ServeSession<D>, wl: &Workload) -> (RunReport, f64) {
    let start = Instant::now();
    let report = session.serve(wl).expect("perf run completes");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// Serves `wl` on `deployment`, returning the report and the wall time.
fn timed<D: Deployment>(deployment: D, wl: &Workload) -> (RunReport, f64) {
    timed_session(ServeSession::new(deployment), wl)
}

/// One warmup run then best-of-[`TRIALS`] for a single configuration;
/// `session` wraps each freshly-built deployment (e.g. to install a
/// tracer).
fn timed_best<D, F, S>(build: F, wl: &Workload, session: S) -> (RunReport, f64)
where
    D: Deployment,
    F: Fn() -> D,
    S: Fn(D) -> ServeSession<D>,
{
    let _ = timed_session(session(build()), wl);
    let mut best = f64::INFINITY;
    let mut kept = None;
    for _ in 0..TRIALS {
        let (report, wall) = timed_session(session(build()), wl);
        best = best.min(wall);
        kept = Some(report);
    }
    (kept.expect("at least one trial"), best)
}

fn row(label: &str, report: &RunReport, wall_ms: f64) -> PerfRow {
    let sim_tokens: u64 = report
        .records
        .iter()
        .map(|r| u64::from(r.output_tokens))
        .sum();
    let mut hotloop = HotLoopStats::default();
    let mut breakdown = metrics::LatencyBreakdown::new();
    for u in report.serving_units() {
        hotloop.merge(&u.result.hotloop);
        breakdown.merge(&u.result.breakdown);
    }
    let (scheduling_share_pct, _, _, _, _) = breakdown.shares_pct();
    let wall_s = (wall_ms / 1e3).max(1e-9);
    PerfRow {
        label: label.to_string(),
        wall_ms,
        sim_ms: report.end_ms,
        sim_tokens,
        sim_tokens_per_sec: sim_tokens as f64 / wall_s,
        iterations: report.iterations,
        iterations_per_sec: report.iterations as f64 / wall_s,
        peak_decode_batch: hotloop.peak_decode_batch,
        scheduling_share_pct,
        dist_cache_hit_rate_pct: hotloop.dist_cache_hit_rate_pct(),
        trace_dropped: report.trace_dropped,
    }
}

fn main() {
    adaserve_bench::check_sweep_args("perf_report");
    let seed = adaserve_bench::seed();
    let duration_ms = adaserve_bench::sweep_duration_ms(10_000.0, 60_000.0);
    let mode = if adaserve_bench::is_smoke() {
        "smoke"
    } else {
        "full"
    };
    let exec = adaserve_bench::exec_mode();
    let config = SystemConfig::llama70b(seed);
    let baseline_ms = config.baseline_ms;
    let rps = if mode == "smoke" { 2.0 } else { 4.0 };
    let wl = WorkloadBuilder::new(seed, baseline_ms)
        .target_rps(rps)
        .duration_ms(duration_ms)
        .build();

    println!(
        "perf_report: seed={seed} duration={duration_ms}ms rps={rps} mode={mode} exec={}",
        exec.label()
    );
    let mut summary = PerfSummary::new("perf_report", mode, seed, duration_ms);

    // The base colocated row and its explicit tracer=off twin are timed
    // in interleaved rounds (like the cluster pair below): the
    // check_bench_json tracer gate compares the two wall-clocks, so
    // drift and cold-start bias must hit both sides equally. A disabled
    // tracer is one branch per iteration, so the twin must land within
    // timer noise of the base row.
    let colocated = || Colocated::new(Box::new(AdaServeEngine::new(config.clone())));
    let _ = timed(colocated(), &wl);
    let _ = timed_session(
        ServeSession::new(colocated()).with_tracer(Tracer::off()),
        &wl,
    );
    let (mut base_best, mut off_best) = (f64::INFINITY, f64::INFINITY);
    let (mut base_report, mut off_report) = (None, None);
    for _ in 0..TRIALS {
        let (report, wall) = timed(colocated(), &wl);
        base_best = base_best.min(wall);
        base_report = Some(report);
        let (report, wall) = timed_session(
            ServeSession::new(colocated()).with_tracer(Tracer::off()),
            &wl,
        );
        off_best = off_best.min(wall);
        off_report = Some(report);
    }
    let (base_report, off_report) = (
        base_report.expect("trials ran"),
        off_report.expect("trials ran"),
    );
    summary.rows.push(row(
        &format!("colocated rps={rps}"),
        &base_report,
        base_best,
    ));
    summary.rows.push(row(
        &format!("colocated tracer=off rps={rps}"),
        &off_report,
        off_best,
    ));
    assert_eq!(
        base_report.records, off_report.records,
        "a disabled tracer must not change the served records"
    );

    // Informational: the same run with the ring tracer live (ungated —
    // recording genuinely costs something; the artifact tracks how much).
    let (on_report, on_best) = timed_best(colocated, &wl, |d| {
        ServeSession::new(d).with_tracer(Tracer::on())
    });
    summary.rows.push(row(
        &format!("colocated tracer=on rps={rps}"),
        &on_report,
        on_best,
    ));
    assert_eq!(
        base_report.records, on_report.records,
        "a live tracer must not change the served records"
    );

    // Heavier aggregate traffic for the fleet rows so every replica works.
    let fleet_wl = WorkloadBuilder::new(seed ^ 0xF1EE7, baseline_ms)
        .target_rps(rps * 4.0)
        .duration_ms(duration_ms)
        .build();
    let fleet = |mode: ExecMode| {
        Cluster::new(engines(4, seed), RouterKind::SloAware.build()).with_exec_mode(mode)
    };
    // Interleaved rounds: warmup pair first, then alternate the two
    // executors within each measured round so drift and cold-start bias
    // hit both sides equally.
    let _ = timed(fleet(exec), &fleet_wl);
    let _ = timed(fleet(ExecMode::Sequential), &fleet_wl);
    let (mut exec_best, mut seq_best) = (f64::INFINITY, f64::INFINITY);
    let (mut exec_report, mut seq_report) = (None, None);
    for _ in 0..TRIALS {
        let (report, wall) = timed(fleet(exec), &fleet_wl);
        exec_best = exec_best.min(wall);
        exec_report = Some(report);
        let (report, wall) = timed(fleet(ExecMode::Sequential), &fleet_wl);
        seq_best = seq_best.min(wall);
        seq_report = Some(report);
    }
    let (exec_report, seq_report) = (
        exec_report.expect("trials ran"),
        seq_report.expect("trials ran"),
    );
    summary.rows.push(row(
        &format!("cluster-4x {} rps={}", exec.label(), rps * 4.0),
        &exec_report,
        exec_best,
    ));
    summary.rows.push(row(
        &format!("cluster-4x sequential rps={}", rps * 4.0),
        &seq_report,
        seq_best,
    ));
    assert_eq!(
        exec_report.records, seq_report.records,
        "sharded and sequential stepping must stay record-identical"
    );

    println!(
        "{:<32} {:>10} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "row", "wall_ms", "sim_tok/s", "iters/s", "peak_b", "sched%", "cache%"
    );
    for r in &summary.rows {
        println!(
            "{:<32} {:>10.1} {:>12.0} {:>10.0} {:>8} {:>8.3} {:>8.1}",
            r.label,
            r.wall_ms,
            r.sim_tokens_per_sec,
            r.iterations_per_sec,
            r.peak_decode_batch,
            r.scheduling_share_pct,
            r.dist_cache_hit_rate_pct,
        );
    }

    if let Some(path) = adaserve_bench::parse_json_out() {
        summary.write(&path).expect("write perf artifact");
    }
}
