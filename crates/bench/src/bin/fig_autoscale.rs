//! `fig_autoscale` — elasticity and fairness through a 10x flash crowd.
//!
//! The tracked artifact behind the scenario engine (`scenario`): one
//! flash-crowd scenario — two tenants with different fair-share weights
//! and SLO mixes, session-affine users — served three ways on the same
//! 4-replica fleet:
//!
//! * `static-max` — all replicas active the whole run (the provisioning
//!   ceiling the autoscaler is priced against);
//! * `autoscale-fifo` — the closed-loop [`AutoScaler`] reacting to gauge
//!   ticks, FIFO admission;
//! * `autoscale-fair` — the same controller behind a weighted-fair
//!   [`FairFrontDoor`].
//!
//! Each row splits joint SLO attainment into the steady window and the
//! flash-crowd window and prices the run in replica-hours. The
//! `check_bench_json` gates hold the autoscaled rows' burst attainment
//! near their steady-state number, their replica-hours strictly under
//! static peak provisioning, and the weighted-fair row's per-tenant
//! attainment spread at or under the FIFO row's.
//!
//! ```sh
//! fig_autoscale                       # full scenario (60 s simulated)
//! ADASERVE_SMOKE=1 fig_autoscale --json-out BENCH_autoscale.json
//! ```

use adaserve_bench::{AutoscaleRow, AutoscaleSummary};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use scenario::{
    ArrivalProcess, AutoScaler, AutoScalerConfig, FairFrontDoor, Scenario, ScenarioWorkload,
    TenantSpec,
};
use serving::{RunReport, ServeSession, ServingEngine, SystemConfig};
use workload::CategoryMix;

/// Fleet size every configuration is built with (the static reference
/// keeps all of them active; the autoscaler scales within it).
const MAX_REPLICAS: usize = 4;

/// Replicas the autoscaler never drains below.
const MIN_REPLICAS: usize = 1;

/// Steady offered load; the flash crowd multiplies this by
/// [`MAGNITUDE`]. One replica rides the steady load comfortably; the
/// burst peak overloads even the full fleet for a while, so the
/// controller's reaction time is what the burst window measures.
const BASE_RPS: f64 = 2.5;

/// Flash-crowd peak multiplier (the "10x" the gates certify).
const MAGNITUDE: f64 = 10.0;

/// In-flight window of the weighted-fair front door: generous in steady
/// state, saturated during the burst so the weighted refill order is
/// what decides who waits.
const FAIR_WINDOW: usize = 3 * MAX_REPLICAS;

/// Gauge sampling period feeding the controller, ms.
const GAUGE_TICK_MS: f64 = 250.0;

/// Builds the shared scenario plus its burst window `[start, end)` in
/// ms. The pro tenant buys a 4x weight for purely latency-critical
/// (coding-tier, 400 ms TTFT) traffic; the free tier floods 3x the
/// volume of relaxed traffic whose multi-second TTFT budgets can absorb
/// front-door holding — so weighted-fair admission shields pro through
/// the crowd at a cost the free tier's SLOs barely notice.
fn flash_crowd(seed: u64, duration_ms: f64) -> (ScenarioWorkload, f64, f64) {
    let at_ms = duration_ms / 3.0;
    let decay_ms = duration_ms / 6.0;
    let sw = Scenario::new(seed, SystemConfig::llama70b(seed).baseline_ms)
        .process(ArrivalProcess::FlashCrowd {
            rps: BASE_RPS,
            at_ms,
            magnitude: MAGNITUDE,
            decay_ms,
        })
        .duration_ms(duration_ms)
        .users(200)
        // Bound session growth: an 8k-token returning prompt would need
        // more prefill than a 400 ms coding TTFT allows at *any* load,
        // which would drown the provisioning signal in structural misses.
        .max_context(1_536)
        .tenants(vec![
            TenantSpec::new("pro")
                .share(1.0)
                .weight(4.0)
                .mix(CategoryMix::new(1.0, 0.0, 0.0)),
            TenantSpec::new("free")
                .share(2.0)
                .weight(1.0)
                .mix(CategoryMix::new(0.0, 0.25, 0.75)),
        ])
        .build();
    (sw, at_ms, at_ms + 2.0 * decay_ms)
}

fn engines(seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..MAX_REPLICAS)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

fn controller() -> AutoScaler {
    AutoScaler::new(AutoScalerConfig {
        min_replicas: MIN_REPLICAS,
        max_replicas: MAX_REPLICAS,
        // A batched replica healthily carries a handful of outstanding
        // requests at this load; react within two gauge ticks.
        target_queue_per_replica: 6.0,
        cooldown_ms: 500.0,
        ..AutoScalerConfig::default()
    })
}

/// Joint (TPOT ∧ TTFT) attainment of the records arriving inside /
/// outside `[burst_start, burst_end)`, in percent (100 for an empty
/// slice).
fn windowed_attainment(report: &RunReport, burst_start: f64, burst_end: f64) -> (f64, f64) {
    let pct = |in_burst: bool| {
        let (mut n, mut ok) = (0usize, 0usize);
        for r in &report.records {
            if (r.arrival_ms >= burst_start && r.arrival_ms < burst_end) == in_burst {
                n += 1;
                if r.attained() && r.ttft_attained() {
                    ok += 1;
                }
            }
        }
        if n == 0 {
            100.0
        } else {
            ok as f64 / n as f64 * 100.0
        }
    };
    (pct(false), pct(true))
}

/// Lowers one configuration's run into an artifact row.
#[allow(clippy::too_many_arguments)]
fn row(
    label: &str,
    policy: &str,
    sw: &ScenarioWorkload,
    report: &RunReport,
    burst: (f64, f64),
    replica_hours: f64,
    peak_replicas: usize,
    actions: (u32, u32),
) -> AutoscaleRow {
    let slo = report.report();
    let (steady, burst_att) = windowed_attainment(report, burst.0, burst.1);
    let fairness = sw.fairness_report(report);
    AutoscaleRow {
        label: label.into(),
        policy: policy.into(),
        replicas_max: MAX_REPLICAS,
        requests: report.records.len(),
        rejected: report.rejected.len(),
        slo_attainment_pct: slo.attainment_pct,
        ttft_attainment_pct: slo.ttft_attainment_pct,
        steady_attainment_pct: steady,
        burst_attainment_pct: burst_att,
        replica_hours,
        peak_replicas,
        joins: actions.0 as usize,
        drains: actions.1 as usize,
        tenant_spread_pct: fairness.spread_pct(),
        worst_tenant_pct: fairness.worst_attainment_pct(),
    }
}

/// One closed-loop autoscaled run over `deploy` (already wrapped in
/// whatever admission policy the row measures).
fn autoscaled<D: serving::Deployment>(
    deploy: D,
    sw: &ScenarioWorkload,
) -> (RunReport, f64, usize, (u32, u32)) {
    let mut session = ServeSession::new(deploy)
        .with_gauge_events()
        .with_gauge_tick_ms(GAUGE_TICK_MS);
    let mut scaler = controller();
    for plan in scaler.initial_plans() {
        session.scale_at(plan.at_ms, plan.replica, plan.action);
    }
    session.enqueue(&sw.workload);
    let report = session
        .serve_online(|event, handle| {
            if let Some(plan) = scaler.observe(event) {
                handle.scale_at(plan.at_ms, plan.replica, plan.action);
            }
        })
        .expect("autoscaled run completes");
    let hours = scaler.replica_hours(report.end_ms);
    (report, hours, scaler.peak_active(), scaler.actions())
}

fn main() {
    adaserve_bench::check_sweep_args("fig_autoscale");
    let seed = adaserve_bench::seed();
    let smoke = adaserve_bench::is_smoke();
    let json_out = adaserve_bench::parse_json_out();
    let duration_ms = adaserve_bench::sweep_duration_ms(20_000.0, 60_000.0);

    let (sw, burst_start, burst_end) = flash_crowd(seed, duration_ms);
    println!(
        "autoscale scenario: {} over {MAX_REPLICAS}x llama70b, burst window \
         [{:.1}s, {:.1}s), seed {seed}\n",
        sw.workload.description,
        burst_start / 1e3,
        burst_end / 1e3,
    );

    let mut summary = AutoscaleSummary::new(
        "fig_autoscale",
        if smoke { "smoke" } else { "full" },
        seed,
        duration_ms,
    );

    let mut tenant_detail = Vec::new();

    // Static reference: every replica active for the whole run.
    let static_report = ServeSession::new(Cluster::new(
        engines(seed),
        RouterKind::LeastOutstanding.build(),
    ))
    .serve(&sw.workload)
    .expect("static run completes");
    let static_hours = MAX_REPLICAS as f64 * static_report.end_ms / 3_600_000.0;
    summary.rows.push(row(
        "static-max",
        "fifo",
        &sw,
        &static_report,
        (burst_start, burst_end),
        static_hours,
        MAX_REPLICAS,
        (0, 0),
    ));
    tenant_detail.push(sw.fairness_report(&static_report));

    // Closed-loop autoscaling, FIFO admission.
    let cluster = Cluster::new(engines(seed), RouterKind::LeastOutstanding.build());
    let (report, hours, peak, actions) = autoscaled(cluster, &sw);
    summary.rows.push(row(
        "autoscale-fifo",
        "fifo",
        &sw,
        &report,
        (burst_start, burst_end),
        hours,
        peak,
        actions,
    ));
    tenant_detail.push(sw.fairness_report(&report));

    // Closed-loop autoscaling behind weighted-fair admission.
    let cluster = Cluster::new(engines(seed), RouterKind::LeastOutstanding.build());
    let fair = FairFrontDoor::new(cluster, &sw.tenants, sw.tenant_table(), FAIR_WINDOW);
    let (report, hours, peak, actions) = autoscaled(fair, &sw);
    summary.rows.push(row(
        "autoscale-fair",
        "fair",
        &sw,
        &report,
        (burst_start, burst_end),
        hours,
        peak,
        actions,
    ));
    tenant_detail.push(sw.fairness_report(&report));

    println!(
        "{:<15} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>9} {:>5} {:>6} {:>7} {:>8}",
        "label",
        "reqs",
        "rej",
        "slo%",
        "ttft%",
        "steady%",
        "burst%",
        "rep-hrs",
        "peak",
        "j/d",
        "spread",
        "worst%"
    );
    for (r, fairness) in summary.rows.iter().zip(&tenant_detail) {
        println!(
            "{:<15} {:>6} {:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.4} {:>5} {:>3}/{:<2} {:>7.1} {:>8.1}",
            r.label,
            r.requests,
            r.rejected,
            r.slo_attainment_pct,
            r.ttft_attainment_pct,
            r.steady_attainment_pct,
            r.burst_attainment_pct,
            r.replica_hours,
            r.peak_replicas,
            r.joins,
            r.drains,
            r.tenant_spread_pct,
            r.worst_tenant_pct,
        );
        for t in &fairness.tenants {
            println!(
                "  tenant {:<6} {:>5} completed, {:>3} rejected, joint attainment {:>5.1}%",
                sw.tenants[t.tenant].name,
                t.requests,
                t.rejected,
                t.attainment_pct(),
            );
        }
    }

    if let Some(path) = json_out {
        summary.write(&path).expect("write autoscale artifact");
    }
}
