//! Figs. 8, 9 and 12 — the request-rate sweep.
//!
//! One set of runs produces all three paper figures (they share the same
//! experiment): the 60/20/20 category mix served at increasing request
//! rates on both Table 1 setups by AdaServe, Sarathi-Serve, vLLM and
//! vLLM-Spec(4/6/8).
//!
//! * Fig. 8 — SLO attainment (%) vs RPS,
//! * Fig. 9 — goodput (tokens/s) vs RPS,
//! * Fig. 12 — mean accepted tokens per request per verification vs RPS
//!   (speculative engines only).

use adaserve_bench::{parse_duration_ms, run_many, run_one, seed, EngineKind, ModelSetup};
use metrics::Table;
use workload::{TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let engines = EngineKind::main_lineup();

    for setup in ModelSetup::ALL {
        let config = setup.config(seed());
        let mut rps_points = setup.rps_sweep();
        let paper_range_end = rps_points.len();
        rps_points.extend(setup.rps_extended());
        println!(
            "==== {} ==== (points beyond index {} exceed the paper's plotted range)\n",
            setup.name(),
            paper_range_end
        );

        // Jobs: (engine, rps) pairs; workloads are built once per rps.
        let workloads: Vec<_> = rps_points
            .iter()
            .map(|&rps| {
                WorkloadBuilder::new(seed(), config.baseline_ms)
                    .trace(TraceKind::RealWorld)
                    .target_rps(rps)
                    .duration_ms(duration)
                    .build()
            })
            .collect();
        let jobs: Vec<(EngineKind, usize)> = engines
            .iter()
            .flat_map(|&e| (0..rps_points.len()).map(move |i| (e, i)))
            .collect();
        let results = run_many(jobs.clone(), |&(e, i)| {
            run_one(e, setup, seed(), &workloads[i])
        });

        let mut header: Vec<String> = vec!["RPS".into()];
        header.extend(engines.iter().map(|e| e.name()));
        let mut fig8 = Table::new(header.clone());
        let mut fig9 = Table::new(header.clone());
        let mut fig12 = Table::new(header);
        for (ri, &rps) in rps_points.iter().enumerate() {
            let mut row8 = vec![format!("{rps:.1}")];
            let mut row9 = vec![format!("{rps:.1}")];
            let mut row12 = vec![format!("{rps:.1}")];
            for (ei, _) in engines.iter().enumerate() {
                let idx = ei * rps_points.len() + ri;
                let report = results[idx].report();
                row8.push(format!("{:.1}", report.attainment_pct));
                row9.push(format!("{:.0}", report.goodput_tps));
                let acc = results[idx].mean_accepted_per_verify;
                row12.push(if acc > 0.0 {
                    format!("{acc:.2}")
                } else {
                    "-".into()
                });
            }
            fig8.row(row8);
            fig9.row(row9);
            fig12.row(row12);
        }
        println!("-- Fig. 8: SLO attainment (%) vs RPS --\n{}", fig8.render());
        println!("-- Fig. 9: goodput (tokens/s) vs RPS --\n{}", fig9.render());
        println!(
            "-- Fig. 12: mean accepted tokens / request / verification --\n{}",
            fig12.render()
        );
        println!("CSV fig8:\n{}", fig8.to_csv());
        println!("CSV fig9:\n{}", fig9.to_csv());
        println!("CSV fig12:\n{}", fig12.to_csv());

        // Paper-style headline ratios at the highest RPS.
        let last = rps_points.len() - 1;
        let ada = results[last].report(); // engines[0] == AdaServe
        let best_baseline = engines
            .iter()
            .enumerate()
            .skip(1)
            .map(|(ei, e)| (e, results[ei * rps_points.len() + last].report()))
            .max_by(|a, b| a.1.attainment_pct.total_cmp(&b.1.attainment_pct))
            .expect("baselines exist");
        let viol_ada = 100.0 - ada.attainment_pct;
        let viol_base = 100.0 - best_baseline.1.attainment_pct;
        println!(
            "Headline at {:.1} rps: AdaServe attainment {:.1}% vs best baseline ({}) {:.1}% \
             -> violation reduction {:.1}x; goodput {:.0} vs {:.0} tok/s -> {:.2}x\n",
            rps_points[last],
            ada.attainment_pct,
            best_baseline.0.name(),
            best_baseline.1.attainment_pct,
            if viol_ada > 0.0 {
                viol_base / viol_ada
            } else {
                f64::INFINITY
            },
            ada.goodput_tps,
            best_baseline.1.goodput_tps,
            ada.goodput_tps / best_baseline.1.goodput_tps.max(1e-9),
        );
    }
}
