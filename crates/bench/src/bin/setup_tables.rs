//! Regenerates the paper's setup tables: Table 1 (models/parallelism) and
//! Table 2 (request categories and SLOs), plus the profiled token budgets
//! AdaServe derives from the hardware (§3 footnote 1).

use adaserve_bench::ModelSetup;
use metrics::Table;
use roofline::{BudgetPolicy, TokenBudgetProfile};
use workload::Category;

fn main() {
    println!("== Table 1: evaluation setups ==\n");
    let mut t1 = Table::new(vec!["Model", "Parallelism", "GPUs", "Baseline decode (ms)"]);
    for setup in ModelSetup::ALL {
        let config = setup.config(adaserve_bench::seed());
        let tb = &config.testbed;
        t1.row(vec![
            tb.target.model().name.to_string(),
            format!("{}-way TP", tb.target.tensor_parallel()),
            format!("{} x {}", tb.target.tensor_parallel(), tb.target.gpu().name),
            format!("{:.1}", config.baseline_ms),
        ]);
    }
    println!("{}", t1.render());

    println!("== Table 2: request categories and SLOs ==\n");
    let mut t2 = Table::new(vec!["Category", "App", "Dataset stats", "TPOT SLO"]);
    let apps = ["Coding copilot", "Chatbot", "Summarization"];
    let datasets = ["HumanEval-like", "Alpaca-like", "CNN/DailyMail-like"];
    for (i, c) in Category::ALL.iter().enumerate() {
        let slo = match c.slo() {
            workload::SloSpec::AbsoluteMs(ms) => format!("{ms:.0} ms"),
            workload::SloSpec::RelativeToBaseline(s) => format!("{s:.1} x baseline latency"),
        };
        let pd = workload::LengthSampler::prompt_dist(*c);
        let od = workload::LengthSampler::output_dist(*c);
        t2.row(vec![
            format!("Cat. {}", i + 1),
            apps[i].to_string(),
            format!(
                "{}: prompt ~{:.0} toks, output ~{:.0} toks",
                datasets[i], pd.median, od.median
            ),
            slo,
        ]);
    }
    println!("{}", t2.render());

    println!("== Profiled token budgets (roofline, stretch 1.5x) ==\n");
    let mut t3 = Table::new(vec![
        "Setup",
        "Verify budget B (tokens)",
        "Spec budget B2 (tokens)",
        "Verify pass (ms)",
        "Draft step (ms)",
    ]);
    for setup in ModelSetup::ALL {
        let config = setup.config(adaserve_bench::seed());
        let p = TokenBudgetProfile::profile(
            &config.testbed.target,
            &config.testbed.draft,
            512,
            BudgetPolicy::LatencyStretch(1.5),
        );
        t3.row(vec![
            setup.name().to_string(),
            p.verify_budget.to_string(),
            p.spec_budget.to_string(),
            format!("{:.1}", p.verify_latency_ms),
            format!("{:.2}", p.draft_step_latency_ms),
        ]);
    }
    println!("{}", t3.render());
}
