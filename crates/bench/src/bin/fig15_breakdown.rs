//! Fig. 15 — latency breakdown of SLO-customized speculative decoding.
//!
//! Speculation and verification occupy the (modelled) GPU; scheduling —
//! requirement computation, both selection phases, subtree induction — is
//! *real* CPU work measured with a wall-clock timer. The paper reports a
//! 0.31–0.41% CPU share; this binary measures the share of this Rust
//! reimplementation.

use adaserve_bench::{parse_duration_ms, run_one, seed, EngineKind, ModelSetup};
use metrics::Table;
use workload::{TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let mut table = Table::new(vec![
        "Setup",
        "Scheduling (CPU) %",
        "Speculation (GPU) %",
        "Verification (GPU) %",
        "Prefill (GPU) %",
        "KV transfer %",
        "Scheduling total (ms)",
    ]);
    for setup in ModelSetup::ALL {
        let config = setup.config(seed());
        let workload = WorkloadBuilder::new(seed(), config.baseline_ms)
            .trace(TraceKind::RealWorld)
            .target_rps(4.0)
            .duration_ms(duration)
            .build();
        let result = run_one(EngineKind::AdaServe, setup, seed(), &workload);
        let b = result.breakdown;
        let (sched, spec, verify, prefill, kv_transfer) = b.shares_pct();
        table.row(vec![
            setup.name().to_string(),
            format!("{sched:.2}"),
            format!("{spec:.1}"),
            format!("{verify:.1}"),
            format!("{prefill:.1}"),
            format!("{kv_transfer:.1}"),
            format!("{:.1}", b.scheduling_ms),
        ]);
    }
    println!(
        "-- Fig. 15: latency breakdown of AdaServe --\n{}",
        table.render()
    );
    println!("CSV:\n{}", table.to_csv());
    println!(
        "Note: scheduling is measured wall-clock CPU of the real selection code;\n\
         speculation/verification/prefill are modelled GPU times."
    );
}
