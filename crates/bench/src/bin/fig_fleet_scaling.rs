//! `fig_fleet_scaling` — executor scaling: sequential vs sharded stepping
//! as the fleet grows.
//!
//! The tracked artifact behind the [`serving::exec`] subsystem: a
//! homogeneous AdaServe fleet is stepped to completion at 4, 16, 64 and
//! 256 replicas, once under [`serving::ExecMode::Sequential`] and once
//! under the resolved mode (`ADASERVE_EXEC`-overridable, sharded by
//! default), at equal per-replica pressure. Each pair is asserted
//! record-identical — the speedup column is a pure implementation win,
//! not a behavior change.
//!
//! Aggregate RPS scales with the fleet (2 × N) while the simulated
//! duration shrinks as 1/N, so every row serves a comparable request
//! count and the sweep's wall-clock stays bounded. Timing methodology
//! matches `perf_report`: one unmeasured warmup per executor, then
//! interleaved best-of-[`TRIALS`] rounds.
//!
//! ```sh
//! fig_fleet_scaling                    # full sweep
//! ADASERVE_SMOKE=1 fig_fleet_scaling --json-out BENCH_fleet_scaling.json
//! ```

use adaserve_bench::{FleetRow, FleetSummary};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use serving::{ExecMode, RunReport, ServeSession, ServingEngine, SystemConfig};
use std::time::Instant;
use workload::{Workload, WorkloadBuilder};

/// Measured trials per (replica count, executor); best-of, after one
/// unmeasured warmup pair per replica count.
const TRIALS: usize = 5;

/// Fleet sizes swept (the 4-replica point doubles as `perf_report`'s
/// tracked pair; the tail shows how the win grows with the fleet).
const REPLICA_COUNTS: [usize; 4] = [4, 16, 64, 256];

/// Per-replica request rate (aggregate RPS = 2 × N).
const RPS_PER_REPLICA: f64 = 2.0;

fn fleet(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

/// Serves `wl` on a fresh `n`-replica fleet under `mode`, returning the
/// report and the wall time.
fn timed(n: usize, seed: u64, mode: ExecMode, wl: &Workload) -> (RunReport, f64) {
    let cluster = Cluster::new(fleet(n, seed), RouterKind::SloAware.build()).with_exec_mode(mode);
    let start = Instant::now();
    let report = ServeSession::new(cluster)
        .serve(wl)
        .unwrap_or_else(|e| panic!("{} on {n} replicas failed: {e}", mode.label()));
    (report, start.elapsed().as_secs_f64() * 1e3)
}

fn row(n: usize, mode: ExecMode, report: &RunReport, wall_ms: f64, seq_wall_ms: f64) -> FleetRow {
    FleetRow {
        replicas: n,
        mode: mode.label(),
        workers: mode.effective_workers(),
        wall_ms,
        sim_ms: report.end_ms,
        requests: report.records.len(),
        iterations: report.iterations,
        iterations_per_sec: report.iterations as f64 / (wall_ms / 1e3).max(1e-9),
        speedup: seq_wall_ms / wall_ms.max(1e-9),
    }
}

fn main() {
    adaserve_bench::check_sweep_args("fig_fleet_scaling");
    let seed = adaserve_bench::seed();
    let smoke = adaserve_bench::is_smoke();
    let json_out = adaserve_bench::parse_json_out();
    let exec = adaserve_bench::exec_mode();
    // Per-row simulated duration is base/N: constant aggregate work per
    // row (~2 × base/1000 requests) however large the fleet.
    let base_ms = adaserve_bench::sweep_duration_ms(80_000.0, 160_000.0);
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;

    println!(
        "fleet scaling sweep: replicas {REPLICA_COUNTS:?} x {{sequential, {}}}, \
         {RPS_PER_REPLICA} rps/replica, base {}s simulated, best of {TRIALS}, seed {seed}\n",
        exec.label(),
        base_ms / 1e3,
    );

    let mut summary = FleetSummary::new(
        "fig_fleet_scaling",
        if smoke { "smoke" } else { "full" },
        seed,
    );
    println!(
        "{:>8} {:<12} {:>7} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "replicas", "exec", "workers", "wall_ms", "sim_ms", "reqs", "iters/s", "speedup"
    );
    for &n in &REPLICA_COUNTS {
        let wl = WorkloadBuilder::new(seed ^ 0xF1EE7, baseline_ms)
            .target_rps(RPS_PER_REPLICA * n as f64)
            .duration_ms(base_ms / n as f64)
            .build();
        // Warmup pair, then interleaved best-of rounds; the within-round
        // order flips each round so clock drift cannot systematically
        // favor either executor.
        let _ = timed(n, seed, exec, &wl);
        let _ = timed(n, seed, ExecMode::Sequential, &wl);
        let (mut exec_best, mut seq_best) = (f64::INFINITY, f64::INFINITY);
        let (mut exec_report, mut seq_report) = (None, None);
        for round in 0..TRIALS {
            // (is_sequential_slot, mode); the tag keeps the two slots
            // distinct even when `exec` itself resolves to sequential.
            let order = if round % 2 == 0 {
                [(false, exec), (true, ExecMode::Sequential)]
            } else {
                [(true, ExecMode::Sequential), (false, exec)]
            };
            for (is_seq, mode) in order {
                let (report, wall) = timed(n, seed, mode, &wl);
                if is_seq {
                    seq_best = seq_best.min(wall);
                    seq_report = Some(report);
                } else {
                    exec_best = exec_best.min(wall);
                    exec_report = Some(report);
                }
            }
        }
        let (exec_report, seq_report) = (
            exec_report.expect("trials ran"),
            seq_report.expect("trials ran"),
        );
        assert_eq!(
            exec_report.records,
            seq_report.records,
            "{} and sequential stepping must stay record-identical at {n} replicas",
            exec.label(),
        );
        let rows = [
            row(n, ExecMode::Sequential, &seq_report, seq_best, seq_best),
            row(n, exec, &exec_report, exec_best, seq_best),
        ];
        for r in rows {
            println!(
                "{:>8} {:<12} {:>7} {:>10.1} {:>10.0} {:>8} {:>10.0} {:>8.2}",
                r.replicas,
                r.mode,
                r.workers,
                r.wall_ms,
                r.sim_ms,
                r.requests,
                r.iterations_per_sec,
                r.speedup,
            );
            summary.rows.push(r);
        }
    }

    if let Some(path) = json_out {
        summary.write(&path).expect("write fleet artifact");
    }
}
