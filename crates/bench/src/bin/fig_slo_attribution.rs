//! `fig_slo_attribution` — *why* requests miss their SLOs, across load.
//!
//! The tracked artifact behind the tracing layer
//! (`metrics::telemetry`): each sweep point serves one workload on a
//! 2-replica SLO-aware cluster with the ring tracer live, replays the
//! trace through [`SloAttribution`] and emits one row per SLO tier (plus
//! a pooled `all` row) decomposing the violating requests' latency into
//! queueing / prefill / transfer / decode / preemption shares. As RPS
//! rises the dominant cause shifts from compute-bound (prefill/decode)
//! to queueing-bound — the shape the paper's SLO-attainment cliffs
//! (Figs. 8–9) imply but never show directly. The `check_bench_json`
//! gate holds every row's shares to a ~100% sum.
//!
//! `--trace-out PATH` additionally dumps the *last* (highest-RPS) sweep
//! point as Chrome-trace / Perfetto JSON, loadable in `ui.perfetto.dev`.
//!
//! ```sh
//! fig_slo_attribution                 # full sweep
//! ADASERVE_SMOKE=1 fig_slo_attribution --json-out BENCH_attribution.json \
//!     --trace-out trace.json
//! ```

use adaserve_bench::{AttributionRow, AttributionSummary};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use metrics::telemetry::{perfetto, SloAttribution, TraceEvent, Tracer};
use serving::{ServeSession, ServingEngine, SystemConfig};
use workload::WorkloadBuilder;

/// Replicas in the traced cluster: two is enough to exercise routing
/// decisions while keeping the smoke run CI-sized.
const REPLICAS: usize = 2;

fn main() {
    adaserve_bench::check_sweep_args("fig_slo_attribution");
    let seed = adaserve_bench::seed();
    let smoke = adaserve_bench::is_smoke();
    let json_out = adaserve_bench::parse_json_out();
    let trace_out = adaserve_bench::parse_trace_out();
    let duration_ms = adaserve_bench::sweep_duration_ms(10_000.0, 45_000.0);
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;

    // Low → high offered load on a fixed 2-replica fleet: the low points
    // sit inside capacity (violations rare, fallback rows show where
    // latency lives), the high points overload it (queueing dominates).
    let rates: &[f64] = if smoke {
        &[4.0, 12.0]
    } else {
        &[4.0, 8.0, 12.0, 16.0]
    };

    println!(
        "SLO attribution sweep: rps {rates:?} on {REPLICAS}x llama70b (slo-aware router), \
         {}s simulated per point, ring tracer live, seed {seed}\n",
        duration_ms / 1e3,
    );

    let mut summary = AttributionSummary::new(
        "fig_slo_attribution",
        if smoke { "smoke" } else { "full" },
        seed,
        duration_ms,
    );
    println!(
        "{:<10} {:<10} {:>6} {:>6} {:>7} {:>8} {:>6} {:>7} {:>8}  {:<10} {:>8}",
        "label",
        "tier",
        "reqs",
        "viol",
        "queue%",
        "prefill%",
        "xfer%",
        "decode%",
        "preempt%",
        "dominant",
        "fallback"
    );

    let mut last_trace: Vec<TraceEvent> = Vec::new();
    for &rps in rates {
        let wl = WorkloadBuilder::new(seed ^ 0xA77B, baseline_ms)
            .target_rps(rps)
            .duration_ms(duration_ms)
            .build();
        let engines: Vec<Box<dyn ServingEngine>> = (0..REPLICAS)
            .map(|_| {
                Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed)))
                    as Box<dyn ServingEngine>
            })
            .collect();
        let cluster = Cluster::new(engines, RouterKind::SloAware.build());
        let tracer = Tracer::on();
        let report = ServeSession::new(cluster)
            .with_tracer(tracer.clone())
            .serve(&wl)
            .expect("attribution sweep point completes");
        adaserve_bench::expect_no_rejections("fig_slo_attribution", &report);
        if tracer.dropped() > 0 {
            eprintln!(
                "warning: rps={rps:.1}: ring dropped {} events; attribution covers a suffix",
                tracer.dropped()
            );
        }
        let events = tracer.snapshot();
        let attr = SloAttribution::from_events(&events);

        let label = format!("rps={rps:.1}");
        let overall = attr.overall();
        for tier in attr.per_tier.iter().chain(std::iter::once(&overall)) {
            let r = AttributionRow::from_tier(&label, rps, tier);
            println!(
                "{:<10} {:<10} {:>6} {:>6} {:>7.1} {:>8.1} {:>6.1} {:>7.1} {:>8.1}  {:<10} {:>8}",
                r.label,
                r.tier,
                r.requests,
                r.violations,
                r.queueing_pct,
                r.prefill_pct,
                r.transfer_pct,
                r.decode_pct,
                r.preemption_pct,
                r.dominant,
                if r.fallback_all_requests {
                    "all"
                } else {
                    "viol"
                },
            );
            summary.rows.push(r);
        }
        last_trace = events;
    }

    if let Some(path) = trace_out {
        perfetto::export_to_file(&path, &last_trace).expect("write perfetto trace");
        eprintln!(
            "wrote {} ({} events, highest-RPS sweep point)",
            path.display(),
            last_trace.len()
        );
    }
    if let Some(path) = json_out {
        summary.write(&path).expect("write attribution artifact");
    }
}
