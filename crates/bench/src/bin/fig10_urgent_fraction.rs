//! Fig. 10 — SLO attainment and goodput vs urgent-request proportion.
//!
//! The request rate is fixed at 4.0 RPS while the fraction of tight-SLO
//! coding requests sweeps {30, 50, 70, 90}% (the remainder split evenly
//! between chat and summarization). Continuous-batching systems degrade as
//! urgency rises; speculative systems hold or improve (paper §6.2).

use adaserve_bench::{parse_duration_ms, run_many, run_one, seed, EngineKind, ModelSetup};
use metrics::Table;
use workload::{CategoryMix, TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let fractions = [0.3, 0.5, 0.7, 0.9];
    let engines = EngineKind::main_lineup();

    for setup in ModelSetup::ALL {
        let config = setup.config(seed());
        println!("==== {} (4.0 rps) ====\n", setup.name());
        let workloads: Vec<_> = fractions
            .iter()
            .map(|&f| {
                WorkloadBuilder::new(seed(), config.baseline_ms)
                    .mix(CategoryMix::with_urgent_fraction(f))
                    .trace(TraceKind::RealWorld)
                    .target_rps(4.0)
                    .duration_ms(duration)
                    .build()
            })
            .collect();
        let jobs: Vec<(EngineKind, usize)> = engines
            .iter()
            .flat_map(|&e| (0..fractions.len()).map(move |i| (e, i)))
            .collect();
        let results = run_many(jobs, |&(e, i)| run_one(e, setup, seed(), &workloads[i]));

        let mut header: Vec<String> = vec!["Urgent %".into()];
        header.extend(engines.iter().map(|e| e.name()));
        let mut att = Table::new(header.clone());
        let mut good = Table::new(header);
        for (fi, &f) in fractions.iter().enumerate() {
            let mut row_a = vec![format!("{:.0}", f * 100.0)];
            let mut row_g = vec![format!("{:.0}", f * 100.0)];
            for (ei, _) in engines.iter().enumerate() {
                let report = results[ei * fractions.len() + fi].report();
                row_a.push(format!("{:.1}", report.attainment_pct));
                row_g.push(format!("{:.0}", report.goodput_tps));
            }
            att.row(row_a);
            good.row(row_g);
        }
        println!("-- SLO attainment (%) --\n{}", att.render());
        println!("-- Goodput (tokens/s) --\n{}", good.render());
        println!("CSV attainment:\n{}", att.to_csv());
        println!("CSV goodput:\n{}", good.to_csv());
    }
}
