//! Ablations of AdaServe's design choices (DESIGN.md §4).
//!
//! * adaptive vs static `(d, w)` — the value of eq. 8–9;
//! * SLO-customized selection on/off — the value of phase 2 vs pure
//!   throughput selection;
//! * `n_max` sweep — the guard against low-probability monopolization;
//! * verification-budget policy sweep — latency-stretch vs roofline-knee.

use adaserve_bench::{
    parse_duration_ms, run_many, run_one, seed, serve_one, EngineKind, ModelSetup,
};
use adaserve_core::{AdaServeEngine, AdaServeOptions};
use metrics::Table;
use roofline::BudgetPolicy;
use workload::{TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let setup = ModelSetup::Llama70b;
    let config = setup.config(seed());
    // A deliberately hard operating point — sub-baseline urgent SLO at high
    // load — so design choices actually discriminate (at the default scale
    // every AdaServe variant attains ~100%).
    let workload = WorkloadBuilder::new(seed(), config.baseline_ms)
        .trace(TraceKind::RealWorld)
        .cat1_slo_scale(0.6)
        .target_rps(5.2)
        .duration_ms(duration)
        .build();
    println!(
        "Ablation workload: {} (cat-1 SLO scale 0.6)\n",
        workload.description
    );

    // ---- Adaptive control and SLO selection. ----
    let variants = vec![
        ("full AdaServe", EngineKind::AdaServe),
        (
            "static (d,w)=(4,2)",
            EngineKind::AdaServeAblated {
                adaptive: false,
                slo_selection: true,
                n_max: 8,
            },
        ),
        (
            "no SLO selection",
            EngineKind::AdaServeAblated {
                adaptive: true,
                slo_selection: false,
                n_max: 8,
            },
        ),
        (
            "neither",
            EngineKind::AdaServeAblated {
                adaptive: false,
                slo_selection: false,
                n_max: 8,
            },
        ),
    ];
    let results = run_many(variants.clone(), |(_, kind)| {
        run_one(*kind, setup, seed(), &workload)
    });
    let mut t = Table::new(vec![
        "Variant",
        "Attainment (%)",
        "Goodput (tok/s)",
        "Accepted/verify",
    ]);
    for ((label, _), result) in variants.iter().zip(&results) {
        let report = result.report();
        t.row(vec![
            label.to_string(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
            format!("{:.2}", result.mean_accepted_per_verify),
        ]);
    }
    println!(
        "-- Ablation: adaptive control & SLO-customized selection --\n{}",
        t.render()
    );

    // ---- n_max sweep. ----
    let n_maxes = [2usize, 4, 8, 16, 64];
    let results = run_many(n_maxes.to_vec(), |&n_max| {
        run_one(
            EngineKind::AdaServeAblated {
                adaptive: true,
                slo_selection: true,
                n_max,
            },
            setup,
            seed(),
            &workload,
        )
    });
    let mut t = Table::new(vec!["n_max", "Attainment (%)", "Goodput (tok/s)"]);
    for (&n_max, result) in n_maxes.iter().zip(&results) {
        let report = result.report();
        t.row(vec![
            n_max.to_string(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
        ]);
    }
    println!(
        "-- Ablation: per-request SLO-phase cap n_max --\n{}",
        t.render()
    );

    // ---- SLO-selection value when urgency anti-correlates with
    // predictability. ----
    //
    // In the paper's mix the urgent category (code) is also the most
    // predictable, so pure probability ordering happens to serve urgent
    // requests first and the SLO phase looks redundant. Tightening the
    // *summarization* SLO instead (least predictable content) separates the
    // two orderings and exposes the phase's value.
    let mut adversarial = workload.clone();
    for r in &mut adversarial.requests {
        if r.category == workload::Category::Summarization {
            r.tpot_slo_ms = config.baseline_ms * 0.9;
        }
    }
    let variants = vec![
        ("full AdaServe", EngineKind::AdaServe),
        (
            "no SLO selection",
            EngineKind::AdaServeAblated {
                adaptive: true,
                slo_selection: false,
                n_max: 8,
            },
        ),
    ];
    let results = run_many(variants.clone(), |(_, kind)| {
        run_one(*kind, setup, seed(), &adversarial)
    });
    let mut t = Table::new(vec![
        "Variant (tight summarization SLO)",
        "Attainment (%)",
        "summ viol%",
        "Goodput (tok/s)",
    ]);
    for ((label, _), result) in variants.iter().zip(&results) {
        let report = result.report();
        t.row(vec![
            label.to_string(),
            format!("{:.1}", report.attainment_pct),
            report
                .category(workload::Category::Summarization)
                .map(|c| format!("{:.1}", c.violation_pct))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}", report.goodput_tps),
        ]);
    }
    println!(
        "-- Ablation: SLO selection under urgency/predictability anti-correlation --\n{}",
        t.render()
    );

    // ---- Verification budget policy. ----
    let policies: Vec<(&str, BudgetPolicy)> = vec![
        ("stretch 1.2x", BudgetPolicy::LatencyStretch(1.2)),
        ("stretch 1.5x", BudgetPolicy::LatencyStretch(1.5)),
        ("stretch 2.0x", BudgetPolicy::LatencyStretch(2.0)),
        ("roofline knee", BudgetPolicy::Knee),
        ("fixed 64", BudgetPolicy::Fixed(64)),
        ("fixed 512", BudgetPolicy::Fixed(512)),
    ];
    let results = run_many(policies.clone(), |&(_, policy)| {
        let options = AdaServeOptions {
            budget_policy: policy,
            ..Default::default()
        };
        let engine = AdaServeEngine::with_options(setup.config(seed()), options);
        serve_one(Box::new(engine), &workload)
    });
    let mut t = Table::new(vec![
        "Budget policy",
        "B",
        "Attainment (%)",
        "Goodput (tok/s)",
    ]);
    for ((label, policy), result) in policies.iter().zip(&results) {
        let report = result.report();
        let b = {
            let cfg = setup.config(seed());
            roofline::TokenBudgetProfile::profile(
                &cfg.testbed.target,
                &cfg.testbed.draft,
                512,
                *policy,
            )
            .verify_budget
        };
        t.row(vec![
            label.to_string(),
            b.to_string(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
        ]);
    }
    println!("-- Ablation: verification token budget --\n{}", t.render());
}
