//! Fig. 1 — motivation: existing systems cannot serve a two-SLO workload.
//!
//! A 50/50 mix of tight-SLO coding requests and 50 ms chatbot requests is
//! served by five existing systems (vLLM, vLLM+chunked-prefill/Sarathi,
//! vLLM+Priority, FastServe, VTC). The paper's figure shows per-token
//! latency distributions with SLO lines and per-category violation rates;
//! this binary prints mean/p99 TPOT and the violation percentage per
//! category per system (AdaServe is appended as the punchline).

use adaserve_bench::{parse_duration_ms, run_many, run_one, seed, EngineKind, ModelSetup};
use metrics::Table;
use workload::{Category, CategoryMix, TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let setup = ModelSetup::Llama70b;
    let config = setup.config(seed());
    let workload = WorkloadBuilder::new(seed(), config.baseline_ms)
        .mix(CategoryMix::two_category())
        .trace(TraceKind::RealWorld)
        .target_rps(4.4)
        .duration_ms(duration)
        .build();
    println!("Fig. 1 workload: {}\n", workload.description);

    let mut systems = EngineKind::motivation_lineup();
    systems.push(EngineKind::AdaServe);
    let results = run_many(systems.clone(), |k| run_one(*k, setup, seed(), &workload));

    let mut table = Table::new(vec![
        "System",
        "Cat1(coding) mean TPOT",
        "Cat1 p99",
        "Cat1 violations",
        "Cat2(chat) mean TPOT",
        "Cat2 p99",
        "Cat2 violations",
    ]);
    for (kind, result) in systems.iter().zip(&results) {
        let report = result.report();
        let cell = |c: Category, f: &dyn Fn(&metrics::report::CategoryReport) -> String| {
            report.category(c).map(f).unwrap_or_else(|| "-".into())
        };
        table.row(vec![
            kind.name(),
            cell(Category::CodingCopilot, &|r| {
                format!("{:.1} ms", r.mean_tpot_ms)
            }),
            cell(Category::CodingCopilot, &|r| {
                format!("{:.1} ms", r.p99_tpot_ms)
            }),
            cell(Category::CodingCopilot, &|r| {
                format!("{:.1}%", r.violation_pct)
            }),
            cell(Category::Chatbot, &|r| format!("{:.1} ms", r.mean_tpot_ms)),
            cell(Category::Chatbot, &|r| format!("{:.1} ms", r.p99_tpot_ms)),
            cell(Category::Chatbot, &|r| format!("{:.1}%", r.violation_pct)),
        ]);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
    let slo1 = workload
        .requests
        .iter()
        .find(|r| r.category == Category::CodingCopilot)
        .map(|r| r.tpot_slo_ms)
        .unwrap_or(0.0);
    println!("SLO lines: coding = {slo1:.1} ms (1.2 x baseline), chat = 50 ms");
}
