//! `fig_cluster_scaling` — multi-replica scaling: replicas × RPS × router.
//!
//! The paper evaluates one engine; this extension figure evaluates
//! *fleets* of AdaServe engines behind the four routing policies of the
//! `cluster` crate, on heterogeneous hardware (every fourth replica is the
//! H100 what-if profile, the rest the paper's A100 profile). Aggregate
//! request rate scales with the fleet (`per-replica RPS × N`), so each
//! fleet size is compared at equal per-replica pressure.
//!
//! The headline row checks the cluster analogue of the paper's claim: the
//! SLO-aware router (tight tier → least-loaded replica, throughput tier →
//! packed) attains at least round-robin's SLO attainment at equal
//! aggregate RPS on the 4-replica mixed fleet.
//!
//! ```sh
//! fig_cluster_scaling                  # full sweep
//! fig_cluster_scaling --quick          # shorter trace
//! ADASERVE_SMOKE=1 fig_cluster_scaling --json-out BENCH_smoke.json
//! ```

use adaserve_bench::{
    check_sweep_args, expect_no_rejections, is_smoke, par_map, parse_json_out, seed,
    sweep_duration_ms, BenchSummary,
};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use metrics::Table;
use serving::{RunReport, ServeSession, ServingEngine, SystemConfig};
use workload::{TraceKind, WorkloadBuilder};

/// Builds the N-replica fleet: every fourth replica runs the H100 what-if
/// profile, the rest the paper's 4×A100 profile (so the 4-replica fleet is
/// a 3 + 1 mix).
fn fleet(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|i| {
            let config = if i % 4 == 3 {
                SystemConfig::new(roofline::Testbed::llama70b_h100(), seed)
            } else {
                SystemConfig::llama70b(seed)
            };
            Box::new(AdaServeEngine::new(config)) as Box<dyn ServingEngine>
        })
        .collect()
}

fn main() {
    check_sweep_args("fig_cluster_scaling");
    let seed = seed();
    let smoke = is_smoke();
    // --json-out is validated up front so a malformed flag fails before
    // any simulation runs.
    let json_out = parse_json_out();
    // Full-mode per-replica rates straddle the single-engine saturation
    // point (the fig08 extended sweep shows AdaServe itself starts missing
    // SLOs past ~5.4 rps), so the sweep exercises both the comfortable and
    // the overloaded regime where router quality separates.
    let duration_ms = sweep_duration_ms(6_000.0, 90_000.0);
    let (replica_counts, rps_points) = if smoke {
        (vec![2usize, 4], vec![2.0])
    } else {
        (vec![2usize, 4, 8], vec![4.0, 6.0, 8.0])
    };
    // Baseline-relative SLOs resolve against the slowest profile in any
    // fleet, keeping them attainable on every replica. The largest fleet
    // contains every profile the smaller ones use.
    let baseline_ms =
        cluster::max_baseline_ms(&fleet(*replica_counts.last().expect("non-empty"), seed));

    println!(
        "cluster scaling sweep: replicas {replica_counts:?} x per-replica rps {rps_points:?} \
         x {} routers, {}s simulated, seed {seed}\n",
        RouterKind::ALL.len(),
        duration_ms / 1e3,
    );

    // One job per (replica count, rps, router); each builds its own fleet.
    let jobs: Vec<(usize, f64, RouterKind)> = replica_counts
        .iter()
        .flat_map(|&n| {
            rps_points
                .iter()
                .flat_map(move |&rps| RouterKind::ALL.iter().map(move |&router| (n, rps, router)))
        })
        .collect();
    let results: Vec<RunReport> = par_map(jobs.clone(), |&(n, rps, router)| {
        let workload = WorkloadBuilder::new(seed, baseline_ms)
            .trace(TraceKind::RealWorld)
            .target_rps(rps * n as f64)
            .duration_ms(duration_ms)
            .build();
        let cluster = Cluster::new(fleet(n, seed), router.build())
            .with_exec_mode(adaserve_bench::exec_mode());
        let report = ServeSession::new(cluster)
            .serve(&workload)
            .unwrap_or_else(|e| panic!("{} on {n} replicas failed: {e}", router.name()));
        expect_no_rejections(router.name(), &report);
        report
    });

    let mut summary = BenchSummary::new(
        "fig_cluster_scaling",
        if smoke { "smoke" } else { "full" },
        seed,
        duration_ms,
    );
    let mut header: Vec<String> = vec!["replicas".into(), "rps/replica".into()];
    header.extend(RouterKind::ALL.iter().map(|r| r.name().to_string()));
    let mut attain = Table::new(header.clone());
    let mut goodput = Table::new(header.clone());
    let mut p99 = Table::new(header);

    let reports: Vec<metrics::SloReport> = results.iter().map(RunReport::report).collect();
    for (ji, &(n, rps, router)) in jobs.iter().enumerate() {
        summary.push_report(
            format!("replicas={n} rps={rps:.1} router={}", router.name()),
            &reports[ji],
        );
        // Router is the innermost sweep variable: each (n, rps) pair owns
        // one table row spanning all routers.
        if router == RouterKind::ALL[0] {
            let row_of = |f: &dyn Fn(&metrics::SloReport) -> String| {
                let mut row = vec![n.to_string(), format!("{rps:.1}")];
                row.extend((0..RouterKind::ALL.len()).map(|ri| f(&reports[ji + ri])));
                row
            };
            attain.row(row_of(&|r| format!("{:.1}", r.attainment_pct)));
            goodput.row(row_of(&|r| format!("{:.0}", r.goodput_tps)));
            p99.row(row_of(&|r| format!("{:.1}", r.p99_tpot_ms)));
        }
    }

    println!("-- SLO attainment (%) --\n{}", attain.render());
    println!("-- goodput (tokens/s) --\n{}", goodput.render());
    println!("-- p99 TPOT (ms) --\n{}", p99.render());
    println!("CSV attainment:\n{}", attain.to_csv());

    // Headline: SLO-aware vs round-robin on the 4-replica mixed fleet at
    // the highest shared aggregate RPS.
    let four = |router: RouterKind| {
        let rps = *rps_points.last().expect("non-empty sweep");
        jobs.iter()
            .position(|&(n, r, k)| n == 4 && r == rps && k == router)
            .map(|i| &reports[i])
    };
    if let (Some(slo_aware), Some(rr)) = (four(RouterKind::SloAware), four(RouterKind::RoundRobin))
    {
        println!(
            "Headline (4-replica mix, {:.1} rps/replica): slo-aware attainment {:.1}% vs \
             round-robin {:.1}% ({}); goodput {:.0} vs {:.0} tok/s",
            rps_points.last().unwrap(),
            slo_aware.attainment_pct,
            rr.attainment_pct,
            if slo_aware.attainment_pct >= rr.attainment_pct {
                "slo-aware >= round-robin: OK"
            } else {
                "slo-aware BELOW round-robin"
            },
            slo_aware.goodput_tps,
            rr.goodput_tps,
        );
    }

    if let Some(path) = json_out {
        summary.write(&path).expect("write BENCH json");
    }
}
