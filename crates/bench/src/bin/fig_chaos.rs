//! `fig_chaos` — SLO attainment through a seeded crash during a flash
//! crowd, with and without recovery.
//!
//! The tracked artifact behind the fault-injection subsystem
//! (`serving::FaultPlan` / `serving::RecoveryPolicy`): one flash-crowd
//! scenario served three ways on the same 3-replica fleet —
//!
//! * `no-fault` — the clean baseline. No plan is installed; by the
//!   fault-free equivalence test this run is record-identical to a
//!   session that has never heard of chaos.
//! * `fault-no-recovery` — a seeded [`FaultPlan`] crashes one replica
//!   and slows another mid-crowd, under [`RecoveryPolicy::no_retry`]:
//!   every request lost to the crash is terminally rejected.
//! * `fault-with-recovery` — the *identical* fault schedule under the
//!   default retry/backoff policy: lost requests return to the front
//!   door, re-dispatch SLO-aware, and sustained pressure sheds
//!   speculation depth before it sheds the loosest tier.
//!
//! The metric recovery is judged on is **offered-basis attainment**:
//! joint (TPOT ∧ TTFT) attainment over everything the clients offered,
//! with rejected requests counted as misses — a system cannot reject
//! its way to a good number. The `check_bench_json` chaos gates hold
//! per-row conservation (offered = finished + rejected), a clean
//! no-fault row, and the with-recovery row strictly above the
//! no-recovery row on that metric.
//!
//! ```sh
//! fig_chaos                           # full scenario (60 s simulated)
//! ADASERVE_SMOKE=1 fig_chaos --json-out BENCH_chaos.json
//! ```

use adaserve_bench::{ChaosRow, ChaosSummary};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use scenario::{ArrivalProcess, Scenario, ScenarioWorkload, TenantSpec};
use serving::{FaultPlan, RecoveryPolicy, RunReport, ServeSession, ServingEngine, SystemConfig};
use workload::CategoryMix;

/// Fleet size; the seeded plan crashes one of these replicas.
const REPLICAS: usize = 3;

/// Steady offered load; the flash crowd multiplies this by
/// [`MAGNITUDE`]. Tuned so the fleet rides the crowd with headroom —
/// the attainment the fault rows lose is then attributable to the
/// injected faults, not to pre-existing overload.
const BASE_RPS: f64 = 3.0;

/// Flash-crowd peak multiplier.
const MAGNITUDE: f64 = 4.0;

/// Builds the shared scenario plus its burst onset in ms. Two tenants
/// with different SLO mixes exercise the tiered shedding path: the
/// anchor tenant's traffic is latency-critical, the long tail's mix
/// includes the Summarization tier graceful degradation refuses first.
fn flash_crowd(seed: u64, duration_ms: f64) -> (ScenarioWorkload, f64) {
    let at_ms = duration_ms / 3.0;
    let sw = Scenario::new(seed, SystemConfig::llama70b(seed).baseline_ms)
        .process(ArrivalProcess::FlashCrowd {
            rps: BASE_RPS,
            at_ms,
            magnitude: MAGNITUDE,
            decay_ms: duration_ms / 6.0,
        })
        .duration_ms(duration_ms)
        .users(200)
        .max_context(1_536)
        .tenants(vec![
            TenantSpec::new("anchor")
                .share(2.0)
                .weight(2.0)
                .mix(CategoryMix::new(0.6, 0.4, 0.0)),
            TenantSpec::new("longtail")
                .share(1.0)
                .weight(1.0)
                .mix(CategoryMix::new(0.0, 0.4, 0.6)),
        ])
        .build();
    (sw, at_ms)
}

fn fleet(seed: u64) -> Cluster {
    let engines: Vec<Box<dyn ServingEngine>> = (0..REPLICAS)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect();
    Cluster::new(engines, RouterKind::SloAware.build())
}

/// Lowers one configuration's run into an artifact row. Offered-basis
/// attainment counts every front-door rejection as a miss.
fn row(label: &str, recovery: &str, faults: usize, report: &RunReport) -> ChaosRow {
    let finished = report.records.len();
    let rejected = report.rejected.len();
    let offered = finished + rejected;
    let ok = report
        .records
        .iter()
        .filter(|r| r.attained() && r.ttft_attained())
        .count();
    let pct = |num: usize, den: usize| {
        if den == 0 {
            100.0
        } else {
            num as f64 / den as f64 * 100.0
        }
    };
    let mean_ttft_ms = if finished == 0 {
        0.0
    } else {
        report
            .records
            .iter()
            .map(metrics::RequestRecord::ttft_ms)
            .sum::<f64>()
            / finished as f64
    };
    ChaosRow {
        label: label.into(),
        recovery: recovery.into(),
        faults,
        offered,
        finished,
        rejected,
        retries: report.retries_scheduled,
        slo_attainment_pct: pct(ok, finished),
        offered_attainment_pct: pct(ok, offered),
        mean_ttft_ms,
    }
}

fn main() {
    adaserve_bench::check_sweep_args("fig_chaos");
    let seed = adaserve_bench::seed();
    let smoke = adaserve_bench::is_smoke();
    let json_out = adaserve_bench::parse_json_out();
    let duration_ms = adaserve_bench::sweep_duration_ms(20_000.0, 60_000.0);

    let (sw, burst_at) = flash_crowd(seed, duration_ms);
    // Chaos lands on the crowd: the window opens at burst onset and
    // spans its decay, so the crash takes out a replica exactly when
    // the fleet can least afford it.
    let plan = FaultPlan::seeded(seed, burst_at, duration_ms / 3.0, REPLICAS, false);
    println!(
        "chaos scenario: {} over {REPLICAS}x llama70b, burst at {:.1}s, seed {seed}",
        sw.workload.description,
        burst_at / 1e3,
    );
    for e in plan.events() {
        println!(
            "  fault @ {:>7.1}ms  {:<9} {}",
            e.at_ms,
            e.kind.target_label(),
            e.kind.describe()
        );
    }
    println!();

    let mut summary = ChaosSummary::new(
        "fig_chaos",
        if smoke { "smoke" } else { "full" },
        seed,
        duration_ms,
    );

    let baseline = ServeSession::new(fleet(seed))
        .serve(&sw.workload)
        .expect("no-fault run completes");
    summary.rows.push(row("no-fault", "n/a", 0, &baseline));

    let unrecovered = ServeSession::new(fleet(seed))
        .with_fault_plan(plan.clone())
        .with_recovery_policy(RecoveryPolicy::no_retry())
        .serve(&sw.workload)
        .expect("no-recovery run completes");
    summary.rows.push(row(
        "fault-no-recovery",
        "none",
        plan.events().len(),
        &unrecovered,
    ));

    let recovered = ServeSession::new(fleet(seed))
        .with_fault_plan(plan.clone())
        .with_recovery_policy(RecoveryPolicy::default())
        .serve(&sw.workload)
        .expect("with-recovery run completes");
    summary.rows.push(row(
        "fault-with-recovery",
        "retry",
        plan.events().len(),
        &recovered,
    ));

    println!(
        "{:<22} {:>8} {:>7} {:>8} {:>8} {:>7} {:>9} {:>11} {:>10}",
        "label",
        "recovery",
        "offered",
        "finished",
        "rejected",
        "retries",
        "slo%",
        "offered-slo%",
        "ttft-ms"
    );
    for r in &summary.rows {
        println!(
            "{:<22} {:>8} {:>7} {:>8} {:>8} {:>7} {:>9.1} {:>11.1} {:>10.1}",
            r.label,
            r.recovery,
            r.offered,
            r.finished,
            r.rejected,
            r.retries,
            r.slo_attainment_pct,
            r.offered_attainment_pct,
            r.mean_ttft_ms,
        );
    }

    if let Some(path) = json_out {
        summary.write(&path).expect("write chaos artifact");
    }
}
