//! `check_bench_json` — schema validator for `BENCH_*.json` artifacts.
//!
//! CI's `bench-json` step pipes every emitted artifact through this binary
//! before uploading; a missing required key fails the job with every
//! violation listed.
//!
//! Beyond the per-kind schemas, two artifact kinds carry semantic gates:
//!
//! * fleet artifacts (`"kind": "fleet"`, from `fig_fleet_scaling`) — the
//!   4-replica row measured under a sharded executor must not be slower
//!   than its sequential pair ([`SPEEDUP_FLOOR`] documents the tolerated
//!   noise);
//! * prefix artifacts (`"kind": "prefix"`, from `fig_prefix_cache`) —
//!   every cache-on row over shared-prefix traffic must report a hit rate
//!   of at least [`HIT_RATE_FLOOR_PCT`], and no cache-on row may have a
//!   worse p50 TTFT than its cache-off twin beyond
//!   [`TTFT_NOISE_FACTOR`];
//! * attribution artifacts (`"kind": "attribution"`, from
//!   `fig_slo_attribution`) — every row with requests must report phase
//!   shares summing to ~100%;
//! * perf artifacts (`"kind": "perf"`, from `perf_report`) — a disabled
//!   tracer must stay free: the `tracer=off` row's wall-clock may not
//!   exceed the base colocated row's by more than
//!   [`TRACER_OVERHEAD_FACTOR`];
//! * autoscale artifacts (`"kind": "autoscale"`, from `fig_autoscale`) —
//!   every autoscaled row must have actually scaled (≥ 1 join, peak past
//!   the floor), priced under [`REPLICA_HOURS_CEILING_FACTOR`] of the
//!   static-max reference, with burst attainment within
//!   [`BURST_DROP_TOLERANCE_PTS`] of steady state; and the weighted-fair
//!   row's per-tenant attainment spread may not exceed the FIFO row's;
//! * chaos artifacts (`"kind": "chaos"`, from `fig_chaos`) — every row
//!   must conserve requests (offered = finished + rejected), the no-fault
//!   row must be untouched by the chaos machinery (0 faults, retries and
//!   rejections), and under the same seeded fault schedule the
//!   with-recovery row's offered-basis attainment must be strictly above
//!   the no-recovery row's — recovery has to earn its keep.
//!
//! ```sh
//! cargo run -p adaserve-bench --bin check_bench_json -- BENCH_foo.json [...]
//! ```
//!
//! Exit status: 0 if every file is schema-valid (and gates hold), 1
//! otherwise, 2 on usage errors.

use adaserve_bench::json::{self, Json};
use adaserve_bench::summary::validate;

/// Minimum accepted 4-replica sharded speedup.
///
/// On a multi-core host the sharded executor genuinely wins at 4
/// replicas; on a single-core CI runner the two executors are within
/// timer noise of each other (batching only amortizes per-step
/// scheduling scans there). Repeated best-of-5 sweeps on one core put
/// the 4-replica pair within ±5% run to run, while the regression this
/// gate exists to catch — the executor falling back to per-step thread
/// spawning — measured ~0.92. A 0.95 floor separates the two without
/// flaking on jitter.
const SPEEDUP_FLOOR: f64 = 0.95;

/// Applies the fleet-artifact gate: every 4-replica row measured under a
/// sharded executor must report `speedup >= SPEEDUP_FLOOR`. Returns the
/// violations found (empty when the artifact is not a fleet artifact or
/// carries no sharded 4-replica row, e.g. under `ADASERVE_EXEC=sequential`).
fn fleet_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("fleet") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let mut errors = Vec::new();
    for row in rows {
        let replicas = row.get("replicas").and_then(Json::as_num);
        let exec = row.get("exec").and_then(Json::as_str).unwrap_or("");
        let speedup = row.get("speedup").and_then(Json::as_num);
        if replicas == Some(4.0) && exec.starts_with("sharded") {
            match speedup {
                Some(s) if s >= SPEEDUP_FLOOR => {}
                Some(s) => errors.push(format!(
                    "4-replica {exec} row is slower than sequential: speedup {s:.3} < \
                     {SPEEDUP_FLOOR} — the executor lost its tracked win"
                )),
                None => errors.push("4-replica sharded row lacks a speedup".into()),
            }
        }
    }
    errors
}

/// Minimum accepted prefix-cache hit rate (percent) on a cache-on row
/// whose workload shares a prefix.
///
/// The sweep's lowest shared-prompt share is 30%, so a healthy cache sees
/// hit rates well above this on every row; the gate exists to catch the
/// cache silently never matching (hash drift, pin leak evicting
/// everything), which reads as ~0%, not as a modest dip.
const HIT_RATE_FLOOR_PCT: f64 = 10.0;

/// Tolerated p50 TTFT ratio (on / off) before a cache-on row counts as a
/// regression. Skipped prefill only removes work, so the cache must not
/// make the median first token slower; 1.05 absorbs scheduling noise at
/// smoke durations.
const TTFT_NOISE_FACTOR: f64 = 1.05;

/// Applies the prefix-artifact gate (see module docs). Rows pair up by
/// `label`; a cache-on row missing its off twin is only checked for the
/// hit-rate floor.
fn prefix_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("prefix") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let off_p50 = |label: &str| {
        rows.iter()
            .find(|r| {
                r.get("label").and_then(Json::as_str) == Some(label)
                    && r.get("cache").and_then(Json::as_str) == Some("off")
            })
            .and_then(|r| r.get("p50_ttft_ms").and_then(Json::as_num))
    };
    let mut errors = Vec::new();
    for row in rows {
        if row.get("cache").and_then(Json::as_str) != Some("on") {
            continue;
        }
        let label = row.get("label").and_then(Json::as_str).unwrap_or("?");
        let share = row.get("prefix_share_pct").and_then(Json::as_num);
        let hit = row.get("prefix_hit_rate_pct").and_then(Json::as_num);
        if share.is_some_and(|s| s > 0.0) {
            match hit {
                Some(h) if h >= HIT_RATE_FLOOR_PCT => {}
                Some(h) => errors.push(format!(
                    "{label}: cache-on row over shared traffic hit only {h:.1}% < \
                     {HIT_RATE_FLOOR_PCT}% — the prefix cache stopped matching"
                )),
                None => errors.push(format!("{label}: cache-on row lacks a hit rate")),
            }
        }
        if let (Some(on), Some(off)) = (
            row.get("p50_ttft_ms").and_then(Json::as_num),
            off_p50(label),
        ) {
            if on > off * TTFT_NOISE_FACTOR {
                errors.push(format!(
                    "{label}: cache-on p50 TTFT {on:.1} ms regressed past cache-off \
                     {off:.1} ms × {TTFT_NOISE_FACTOR} — reuse made latency worse"
                ));
            }
        }
    }
    errors
}

/// Tolerated share-sum deviation from 100% on an attribution row
/// (percentage points). Each request's shares sum to exactly 100 and the
/// pooled mean preserves that; anything past rounding noise means the
/// decomposition dropped or double-counted a phase.
const SHARE_SUM_TOLERANCE_PCT: f64 = 0.5;

/// Applies the attribution-artifact gate: every row with requests must
/// report phase shares summing to ~100%. Returns the violations found
/// (empty when the artifact is not an attribution artifact).
fn attribution_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("attribution") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let mut errors = Vec::new();
    for row in rows {
        let label = row.get("label").and_then(Json::as_str).unwrap_or("?");
        let tier = row.get("tier").and_then(Json::as_str).unwrap_or("?");
        if row.get("requests").and_then(Json::as_num) == Some(0.0) {
            continue;
        }
        let sum: f64 = [
            "queueing_pct",
            "prefill_pct",
            "transfer_pct",
            "decode_pct",
            "preemption_pct",
        ]
        .iter()
        .filter_map(|k| row.get(k).and_then(Json::as_num))
        .sum();
        if (sum - 100.0).abs() > SHARE_SUM_TOLERANCE_PCT {
            errors.push(format!(
                "{label} tier={tier}: phase shares sum to {sum:.2}% (expected 100 ± \
                 {SHARE_SUM_TOLERANCE_PCT}) — the attribution dropped or double-counted a phase"
            ));
        }
    }
    errors
}

/// Tolerated wall-clock ratio of the explicit `tracer=off` perf row over
/// its base colocated row. Both run the identical hot loop — a disabled
/// tracer is one branch per iteration — so the pair must land within
/// timer noise; a real regression (the tracer doing work while disabled)
/// reads far past 2%.
const TRACER_OVERHEAD_FACTOR: f64 = 1.02;

/// Applies the perf-artifact tracer gate: the row labelled `tracer=off`
/// may not be slower than the base colocated row beyond
/// [`TRACER_OVERHEAD_FACTOR`]. Returns the violations found (empty when
/// the artifact is not a perf artifact or lacks the row pair).
fn tracer_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("perf") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let wall = |pred: &dyn Fn(&str) -> bool| {
        rows.iter()
            .find(|r| {
                r.get("label")
                    .and_then(Json::as_str)
                    .is_some_and(|l| l.starts_with("colocated") && pred(l))
            })
            .and_then(|r| r.get("wall_ms").and_then(Json::as_num))
    };
    let base = wall(&|l| !l.contains("tracer="));
    let off = wall(&|l| l.contains("tracer=off"));
    let mut errors = Vec::new();
    if let (Some(base), Some(off)) = (base, off) {
        if off > base * TRACER_OVERHEAD_FACTOR {
            errors.push(format!(
                "tracer=off row wall-clock {off:.1} ms exceeds base colocated \
                 {base:.1} ms × {TRACER_OVERHEAD_FACTOR} — the disabled tracer is not free"
            ));
        }
    }
    errors
}

/// Ceiling on an autoscaled row's `replica_hours` as a fraction of the
/// static-max reference row's. Elasticity is the subsystem's tracked
/// win: the controller drains down to one replica through both quiet
/// thirds of the run, which measures 0.67–0.83× static across smoke and
/// full sweeps; 0.95 fails any controller that stopped draining while
/// staying clear of rounding noise on short smoke runs.
const REPLICA_HOURS_CEILING_FACTOR: f64 = 0.95;

/// Tolerated joint-attainment drop (percentage points) from an
/// autoscaled row's steady window to its flash-crowd window. The burst
/// peak deliberately overloads even the full fleet — the static
/// reference itself drops ~45 pts in full sweeps and the autoscaled
/// rows 19–38 — so this bounds collapse, not degradation: a controller
/// that reacts late but does react stays under it, while a burst-window
/// wipeout (attainment near zero against a healthy steady state) fails.
/// A controller that never reacts at all is caught by the join/peak
/// check instead, since it depresses both windows alike.
const BURST_DROP_TOLERANCE_PTS: f64 = 50.0;

/// Applies the autoscale-artifact gates (see module docs). The row
/// labelled `static-max` is the provisioning reference; every other row
/// is an autoscaled run. Returns the violations found (empty when the
/// artifact is not an autoscale artifact).
fn autoscale_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("autoscale") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let num = |row: &Json, key: &str| row.get(key).and_then(Json::as_num);
    let static_hours = rows
        .iter()
        .find(|r| r.get("label").and_then(Json::as_str) == Some("static-max"))
        .and_then(|r| num(r, "replica_hours"));
    let mut errors = Vec::new();
    let mut fair_spread = None;
    let mut fifo_spread = None;
    for row in rows {
        let label = row.get("label").and_then(Json::as_str).unwrap_or("?");
        if label == "static-max" {
            continue;
        }
        if num(row, "joins").is_none_or(|j| j < 1.0)
            || num(row, "peak_replicas").is_none_or(|p| p < 2.0)
        {
            errors.push(format!(
                "{label}: the controller never scaled (no join or peak stuck at the floor) — \
                 the closed loop is dead"
            ));
        }
        if let (Some(hours), Some(static_hours)) = (num(row, "replica_hours"), static_hours) {
            if hours > static_hours * REPLICA_HOURS_CEILING_FACTOR {
                errors.push(format!(
                    "{label}: replica-hours {hours:.4} exceed static-max {static_hours:.4} × \
                     {REPLICA_HOURS_CEILING_FACTOR} — autoscaling stopped saving capacity"
                ));
            }
        }
        if let (Some(steady), Some(burst)) = (
            num(row, "steady_attainment_pct"),
            num(row, "burst_attainment_pct"),
        ) {
            if burst < steady - BURST_DROP_TOLERANCE_PTS {
                errors.push(format!(
                    "{label}: burst attainment {burst:.1}% collapsed more than \
                     {BURST_DROP_TOLERANCE_PTS} pts under steady state {steady:.1}% — the \
                     controller is not riding the flash crowd"
                ));
            }
        }
        let spread = num(row, "tenant_spread_pct");
        match row.get("policy").and_then(Json::as_str) {
            Some("fair") => fair_spread = spread,
            Some("fifo") => fifo_spread = spread,
            _ => {}
        }
    }
    if let (Some(fair), Some(fifo)) = (fair_spread, fifo_spread) {
        if fair > fifo {
            errors.push(format!(
                "weighted-fair tenant spread {fair:.1} pts exceeds FIFO's {fifo:.1} — the \
                 front door stopped protecting the weighted tenant"
            ));
        }
    }
    errors
}

/// Applies the chaos-artifact gates (see module docs): per-row request
/// conservation, a clean no-fault row, and recovery strictly beating
/// no-recovery on offered-basis attainment under the identical seeded
/// fault schedule. Returns the violations found (empty when the artifact
/// is not a chaos artifact).
fn chaos_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("chaos") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let num = |row: &Json, key: &str| row.get(key).and_then(Json::as_num);
    let mut errors = Vec::new();
    let mut no_recovery = None;
    let mut with_recovery = None;
    for row in rows {
        let label = row.get("label").and_then(Json::as_str).unwrap_or("?");
        if let (Some(offered), Some(finished), Some(rejected)) = (
            num(row, "offered"),
            num(row, "finished"),
            num(row, "rejected"),
        ) {
            if offered != finished + rejected {
                errors.push(format!(
                    "{label}: offered {offered} != finished {finished} + rejected {rejected} — \
                     the session lost or duplicated a request"
                ));
            }
        }
        match row.get("recovery").and_then(Json::as_str) {
            Some("n/a") => {
                for key in ["faults", "retries", "rejected"] {
                    if num(row, key).is_some_and(|v| v != 0.0) {
                        errors.push(format!(
                            "{label}: fault-free row reports nonzero {key} — the chaos \
                             machinery leaked into a clean run"
                        ));
                    }
                }
            }
            Some("none") => no_recovery = num(row, "offered_attainment_pct"),
            Some("retry") => with_recovery = num(row, "offered_attainment_pct"),
            _ => {}
        }
    }
    if let (Some(without), Some(with)) = (no_recovery, with_recovery) {
        if with <= without {
            errors.push(format!(
                "with-recovery offered attainment {with:.1}% does not beat no-recovery \
                 {without:.1}% under the same fault schedule — retry/backoff stopped paying for \
                 itself"
            ));
        }
    }
    errors
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_bench_json BENCH_foo.json [BENCH_bar.json ...]");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&doc) {
            Ok(()) => {
                let mut gate_errors = fleet_gate(&doc);
                gate_errors.extend(prefix_gate(&doc));
                gate_errors.extend(attribution_gate(&doc));
                gate_errors.extend(tracer_gate(&doc));
                gate_errors.extend(autoscale_gate(&doc));
                gate_errors.extend(chaos_gate(&doc));
                if gate_errors.is_empty() {
                    let rows = doc
                        .get("rows")
                        .and_then(Json::as_arr)
                        .map_or(0, <[Json]>::len);
                    let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
                    let mode = doc.get("mode").and_then(Json::as_str).unwrap_or("?");
                    println!("{path}: OK ({name}, mode={mode}, {rows} rows)");
                } else {
                    for e in &gate_errors {
                        eprintln!("{path}: {e}");
                    }
                    failed = true;
                }
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{path}: {e}");
                }
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
