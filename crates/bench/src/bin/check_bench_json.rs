//! `check_bench_json` — schema validator for `BENCH_*.json` artifacts.
//!
//! CI's `bench-json` step pipes every emitted artifact through this binary
//! before uploading; a missing required key fails the job with every
//! violation listed.
//!
//! ```sh
//! cargo run -p adaserve-bench --bin check_bench_json -- BENCH_smoke.json [...]
//! ```
//!
//! Exit status: 0 if every file is schema-valid, 1 otherwise, 2 on usage
//! errors.

use adaserve_bench::json;
use adaserve_bench::summary::validate;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_bench_json BENCH_foo.json [BENCH_bar.json ...]");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&doc) {
            Ok(()) => {
                let rows = doc
                    .get("rows")
                    .and_then(json::Json::as_arr)
                    .map_or(0, <[json::Json]>::len);
                let name = doc.get("name").and_then(json::Json::as_str).unwrap_or("?");
                let mode = doc.get("mode").and_then(json::Json::as_str).unwrap_or("?");
                println!("{path}: OK ({name}, mode={mode}, {rows} rows)");
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{path}: {e}");
                }
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
