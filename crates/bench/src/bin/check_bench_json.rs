//! `check_bench_json` — schema validator for `BENCH_*.json` artifacts.
//!
//! CI's `bench-json` step pipes every emitted artifact through this binary
//! before uploading; a missing required key fails the job with every
//! violation listed.
//!
//! Beyond the per-kind schemas, fleet artifacts (`"kind": "fleet"`, from
//! `fig_fleet_scaling`) carry one semantic gate: the 4-replica row
//! measured under a sharded executor must not be slower than its
//! sequential pair. [`SPEEDUP_FLOOR`] documents the tolerated noise.
//!
//! ```sh
//! cargo run -p adaserve-bench --bin check_bench_json -- BENCH_foo.json [...]
//! ```
//!
//! Exit status: 0 if every file is schema-valid (and gates hold), 1
//! otherwise, 2 on usage errors.

use adaserve_bench::json::{self, Json};
use adaserve_bench::summary::validate;

/// Minimum accepted 4-replica sharded speedup.
///
/// On a multi-core host the sharded executor genuinely wins at 4
/// replicas; on a single-core CI runner the two executors are within
/// timer noise of each other (batching only amortizes per-step
/// scheduling scans there). Repeated best-of-5 sweeps on one core put
/// the 4-replica pair within ±5% run to run, while the regression this
/// gate exists to catch — the executor falling back to per-step thread
/// spawning — measured ~0.92. A 0.95 floor separates the two without
/// flaking on jitter.
const SPEEDUP_FLOOR: f64 = 0.95;

/// Applies the fleet-artifact gate: every 4-replica row measured under a
/// sharded executor must report `speedup >= SPEEDUP_FLOOR`. Returns the
/// violations found (empty when the artifact is not a fleet artifact or
/// carries no sharded 4-replica row, e.g. under `ADASERVE_EXEC=sequential`).
fn fleet_gate(doc: &Json) -> Vec<String> {
    if doc.get("kind").and_then(Json::as_str) != Some("fleet") {
        return Vec::new();
    }
    let Some(rows) = doc.get("rows").and_then(Json::as_arr) else {
        return Vec::new();
    };
    let mut errors = Vec::new();
    for row in rows {
        let replicas = row.get("replicas").and_then(Json::as_num);
        let exec = row.get("exec").and_then(Json::as_str).unwrap_or("");
        let speedup = row.get("speedup").and_then(Json::as_num);
        if replicas == Some(4.0) && exec.starts_with("sharded") {
            match speedup {
                Some(s) if s >= SPEEDUP_FLOOR => {}
                Some(s) => errors.push(format!(
                    "4-replica {exec} row is slower than sequential: speedup {s:.3} < \
                     {SPEEDUP_FLOOR} — the executor lost its tracked win"
                )),
                None => errors.push("4-replica sharded row lacks a speedup".into()),
            }
        }
    }
    errors
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_bench_json BENCH_foo.json [BENCH_bar.json ...]");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        match validate(&doc) {
            Ok(()) => {
                let gate_errors = fleet_gate(&doc);
                if gate_errors.is_empty() {
                    let rows = doc
                        .get("rows")
                        .and_then(Json::as_arr)
                        .map_or(0, <[Json]>::len);
                    let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
                    let mode = doc.get("mode").and_then(Json::as_str).unwrap_or("?");
                    println!("{path}: OK ({name}, mode={mode}, {rows} rows)");
                } else {
                    for e in &gate_errors {
                        eprintln!("{path}: {e}");
                    }
                    failed = true;
                }
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{path}: {e}");
                }
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
