//! `fig_disagg_sweep` — disaggregated vs colocated serving at equal
//! aggregate hardware: pool split × request rate × KV-link bandwidth.
//!
//! Every configuration deploys the *same* four Llama-70B/4×A100 engine
//! groups. The colocated baseline runs them as a 4-replica
//! [`cluster::Cluster`] behind the SLO-aware router (PR 2's deployment
//! mode); each disaggregated configuration splits them into a prefill
//! pool and a decode pool joined by a KV-migration link
//! (`disagg::DisaggCluster`). The quantity under study is TTFT attainment:
//! colocated engines co-batch chunked prefill with verification, so long
//! prompts steal decode iterations *and* queue behind them — dedicated
//! prefill replicas remove that interference at the price of a migration
//! delay, which the bandwidth axis prices from NVLink-class down to
//! PCIe-class links.
//!
//! The headline row checks the disaggregation claim: at equal aggregate
//! hardware, at least one pool split beats the colocated baseline's TTFT
//! attainment at the highest swept load.
//!
//! ```sh
//! fig_disagg_sweep                  # full sweep
//! fig_disagg_sweep --quick          # shorter trace
//! ADASERVE_SMOKE=1 fig_disagg_sweep --json-out BENCH_disagg_smoke.json
//! ```

use adaserve_bench::{
    check_sweep_args, expect_no_rejections, is_smoke, par_map, parse_json_out, seed,
    sweep_duration_ms, BenchSummary,
};
use adaserve_core::AdaServeEngine;
use cluster::{Cluster, RouterKind};
use disagg::{DisaggCluster, Dispatcher, KvLink, PrefillPool};
use metrics::{SloReport, Table};
use serving::{ServeSession, ServingEngine, SystemConfig};
use workload::{TraceKind, Workload, WorkloadBuilder};

/// Total engine groups deployed in every configuration.
const TOTAL_REPLICAS: usize = 4;

/// One sweep configuration: how the four engine groups are deployed.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Deployment {
    /// All four groups colocated behind the SLO-aware cluster router.
    Colocated,
    /// `n_prefill` prefill-only groups + the rest decoding, joined by a
    /// link of the given bandwidth (GB/s).
    Disagg { n_prefill: usize, link_gbps: f64 },
}

impl Deployment {
    fn label(&self) -> String {
        match *self {
            Deployment::Colocated => "colocated".into(),
            Deployment::Disagg {
                n_prefill,
                link_gbps,
            } => format!(
                "{}p{}d bw={}",
                n_prefill,
                TOTAL_REPLICAS - n_prefill,
                link_gbps
            ),
        }
    }
}

fn engines(n: usize, seed: u64) -> Vec<Box<dyn ServingEngine>> {
    (0..n)
        .map(|_| {
            Box::new(AdaServeEngine::new(SystemConfig::llama70b(seed))) as Box<dyn ServingEngine>
        })
        .collect()
}

fn run_one(deployment: Deployment, workload: &Workload, seed: u64) -> SloReport {
    match deployment {
        Deployment::Colocated => {
            let cluster = Cluster::new(engines(TOTAL_REPLICAS, seed), RouterKind::SloAware.build())
                .with_exec_mode(adaserve_bench::exec_mode());
            let report = ServeSession::new(cluster)
                .serve(workload)
                .unwrap_or_else(|e| panic!("colocated run failed: {e}"));
            expect_no_rejections("colocated", &report);
            report.report()
        }
        Deployment::Disagg {
            n_prefill,
            link_gbps,
        } => {
            let prefill = PrefillPool::new(vec![SystemConfig::llama70b(seed); n_prefill]);
            let decode = engines(TOTAL_REPLICAS - n_prefill, seed);
            let disagg = DisaggCluster::new(
                prefill,
                decode,
                Dispatcher::new(RouterKind::SloAware.build()),
                KvLink::new(link_gbps, 0.05),
            )
            .with_exec_mode(adaserve_bench::exec_mode());
            let report = ServeSession::new(disagg)
                .serve(workload)
                .unwrap_or_else(|e| panic!("disagg {deployment:?} failed: {e}"));
            expect_no_rejections(&deployment.label(), &report);
            report.report()
        }
    }
}

fn main() {
    check_sweep_args("fig_disagg_sweep");
    let seed = seed();
    let smoke = is_smoke();
    let json_out = parse_json_out();
    let duration_ms = sweep_duration_ms(6_000.0, 60_000.0);
    // Aggregate request rates over the whole 4-group deployment. The upper
    // points push the colocated fleet into the prefill-interference regime
    // where TTFT attainment separates the deployment modes.
    let (rps_points, bandwidths) = if smoke {
        (vec![8.0], vec![300.0])
    } else {
        (vec![8.0, 12.0, 16.0], vec![300.0, 64.0, 16.0])
    };
    let splits: Vec<usize> = vec![1, 2];
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;

    println!(
        "disagg sweep: {TOTAL_REPLICAS} engine groups, splits {splits:?} prefill x \
         bandwidths {bandwidths:?} GB/s x aggregate rps {rps_points:?}, {}s simulated, seed {seed}\n",
        duration_ms / 1e3,
    );

    // One job per (rps, deployment); colocated once per rps, disagg per
    // (split, bandwidth).
    let mut jobs: Vec<(f64, Deployment)> = Vec::new();
    for &rps in &rps_points {
        jobs.push((rps, Deployment::Colocated));
        for &n_prefill in &splits {
            for &link_gbps in &bandwidths {
                jobs.push((
                    rps,
                    Deployment::Disagg {
                        n_prefill,
                        link_gbps,
                    },
                ));
            }
        }
    }
    let reports: Vec<SloReport> = par_map(jobs.clone(), |&(rps, deployment)| {
        let workload = WorkloadBuilder::new(seed, baseline_ms)
            .trace(TraceKind::RealWorld)
            .target_rps(rps)
            .duration_ms(duration_ms)
            .build();
        run_one(deployment, &workload, seed)
    });

    let mut summary = BenchSummary::new(
        "fig_disagg_sweep",
        if smoke { "smoke" } else { "full" },
        seed,
        duration_ms,
    );
    let mut table = Table::new(vec![
        "rps".into(),
        "deployment".into(),
        "TTFT att %".to_string(),
        "p99 TTFT ms".to_string(),
        "TPOT att %".to_string(),
        "goodput tok/s".to_string(),
    ]);
    for (ji, &(rps, deployment)) in jobs.iter().enumerate() {
        let r = &reports[ji];
        summary.push_report(format!("rps={rps:.1} {}", deployment.label()), r);
        table.row(vec![
            format!("{rps:.1}"),
            deployment.label(),
            format!("{:.1}", r.ttft_attainment_pct),
            format!("{:.0}", r.p99_ttft_ms),
            format!("{:.1}", r.attainment_pct),
            format!("{:.0}", r.goodput_tps),
        ]);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());

    // Headline: best disagg split vs colocated at the highest swept load.
    let top_rps = *rps_points.last().expect("non-empty sweep");
    let colocated = jobs
        .iter()
        .position(|&(rps, d)| rps == top_rps && d == Deployment::Colocated)
        .map(|i| &reports[i])
        .expect("colocated point exists");
    let best_disagg = jobs
        .iter()
        .enumerate()
        .filter(|(_, &(rps, d))| rps == top_rps && matches!(d, Deployment::Disagg { .. }))
        .max_by(|(a, _), (b, _)| {
            reports[*a]
                .ttft_attainment_pct
                .total_cmp(&reports[*b].ttft_attainment_pct)
        })
        .expect("disagg points exist");
    let (bi, &(_, best_deployment)) = best_disagg;
    println!(
        "Headline ({top_rps:.1} aggregate rps, equal {TOTAL_REPLICAS}-group hardware): \
         best disagg split {} TTFT attainment {:.1}% vs colocated {:.1}% ({}); \
         p99 TTFT {:.0} ms vs {:.0} ms",
        best_deployment.label(),
        reports[bi].ttft_attainment_pct,
        colocated.ttft_attainment_pct,
        if reports[bi].ttft_attainment_pct > colocated.ttft_attainment_pct {
            "disagg ABOVE colocated: OK"
        } else {
            "disagg NOT above colocated"
        },
        reports[bi].p99_ttft_ms,
        colocated.p99_ttft_ms,
    );

    if let Some(path) = json_out {
        summary.write(&path).expect("write BENCH json");
    }
}
