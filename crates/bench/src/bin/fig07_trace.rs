//! Fig. 7 — request frequency of the real-world-shaped trace.
//!
//! Prints per-bucket arrival counts over the 20-minute trace (the series the
//! paper plots), plus an ASCII sparkline for a quick visual check of the
//! bursty envelope.

use metrics::Table;
use workload::{ArrivalTrace, TraceKind};

fn main() {
    let trace = ArrivalTrace::generate(TraceKind::RealWorld, adaserve_bench::seed());
    println!(
        "Real-world-shaped trace: {} arrivals over {:.1} minutes, mean {:.2} rps\n",
        trace.len(),
        trace
            .arrivals()
            .last()
            .map(|a| a.time_ms / 60_000.0)
            .unwrap_or(0.0),
        trace.mean_rps()
    );
    let rows = trace.bucket_counts(10_000.0);
    let mut table = Table::new(vec!["t (min)", "requests / 10 s"]);
    let max = rows.iter().map(|r| r.1).max().unwrap_or(1).max(1);
    let mut spark = String::new();
    for (start_ms, count, _) in &rows {
        table.row(vec![
            format!("{:.2}", start_ms / 60_000.0),
            count.to_string(),
        ]);
        let levels = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let idx = (count * (levels.len() - 1)) / max;
        spark.push(levels[idx]);
    }
    println!("{}", table.render());
    println!("Envelope (10 s buckets): [{spark}]");
    println!("\nCSV:\n{}", table.to_csv());
}
