//! `adaserve_sim` — the general-purpose serving simulator CLI.
//!
//! Runs any engine on any workload configuration and prints the paper-style
//! report (optionally as CSV). This is the "drive it yourself" entry point
//! for downstream users who want scenarios beyond the paper's figures.
//!
//! ```sh
//! adaserve_sim --engine adaserve --model llama70b --rps 4.0 \
//!              --urgent 0.6 --slo-scale 1.0 --duration-s 120 --trace real
//! adaserve_sim --engine vllm-spec:6 --model qwen32b --trace synthetic
//! adaserve_sim --list-engines
//! ```

use adaserve_bench::{is_smoke, seed, serve_one_traced, BenchSummary, EngineKind, ModelSetup};
use metrics::telemetry::{perfetto, Tracer};
use metrics::Table;
use workload::{CategoryMix, TraceKind, WorkloadBuilder};

#[derive(Debug)]
struct Args {
    engine: String,
    model: ModelSetup,
    rps: f64,
    urgent: Option<f64>,
    slo_scale: f64,
    duration_s: f64,
    trace: TraceKind,
    seed: u64,
    csv: bool,
    json_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: adaserve_sim [--engine NAME] [--model llama70b|qwen32b] [--rps F]\n\
         \t[--urgent F] [--slo-scale F] [--duration-s F] [--trace real|synthetic|poisson]\n\
         \t[--seed N] [--csv] [--json-out PATH] [--trace-out PATH] [--list-engines]\n\
         seed defaults to ADASERVE_SEED when set;\n\
         --trace-out writes a Chrome-trace/Perfetto JSON of the run;\n\
         engines: adaserve, vllm, sarathi, vllm-spec:<k>, priority, fastserve, vtc,\n\
         \tadaserve-static, adaserve-noslo"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        engine: "adaserve".into(),
        model: ModelSetup::Llama70b,
        rps: 4.0,
        urgent: None,
        slo_scale: workload::category::CAT1_BASELINE_SCALE,
        duration_s: 120.0,
        trace: TraceKind::RealWorld,
        seed: seed(),
        csv: false,
        json_out: None,
        trace_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--engine" => args.engine = value(&mut i),
            "--model" => {
                args.model = match value(&mut i).as_str() {
                    "llama70b" => ModelSetup::Llama70b,
                    "qwen32b" => ModelSetup::Qwen32b,
                    other => {
                        eprintln!("unknown model {other}");
                        usage()
                    }
                }
            }
            "--rps" => args.rps = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--urgent" => args.urgent = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--slo-scale" => args.slo_scale = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration-s" => args.duration_s = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--trace" => {
                args.trace = match value(&mut i).as_str() {
                    "real" => TraceKind::RealWorld,
                    "synthetic" => TraceKind::Synthetic,
                    "poisson" => TraceKind::Poisson {
                        rps: 4.0,
                        duration_ms: 1.2e6,
                    },
                    other => {
                        eprintln!("unknown trace {other}");
                        usage()
                    }
                }
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--csv" => args.csv = true,
            "--json-out" => args.json_out = Some(std::path::PathBuf::from(value(&mut i))),
            "--trace-out" => args.trace_out = Some(std::path::PathBuf::from(value(&mut i))),
            "--list-engines" => {
                println!(
                    "adaserve vllm sarathi vllm-spec:<k> priority fastserve vtc \
                     adaserve-static adaserve-noslo"
                );
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn engine_kind(name: &str) -> EngineKind {
    if let Some(k) = name.strip_prefix("vllm-spec:") {
        return EngineKind::VllmSpec(k.parse().unwrap_or_else(|_| usage()));
    }
    match name {
        "adaserve" => EngineKind::AdaServe,
        "adaserve-static" => EngineKind::AdaServeAblated {
            adaptive: false,
            slo_selection: true,
            n_max: 8,
        },
        "adaserve-noslo" => EngineKind::AdaServeAblated {
            adaptive: true,
            slo_selection: false,
            n_max: 8,
        },
        "vllm" => EngineKind::Vllm,
        "sarathi" => EngineKind::Sarathi,
        "priority" => EngineKind::Priority,
        "fastserve" => EngineKind::FastServe,
        "vtc" => EngineKind::Vtc,
        other => {
            eprintln!("unknown engine {other}");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();
    let kind = engine_kind(&args.engine);
    let config = args.model.config(args.seed);
    let mut builder = WorkloadBuilder::new(args.seed, config.baseline_ms)
        .trace(args.trace)
        .cat1_slo_scale(args.slo_scale)
        .duration_ms(args.duration_s * 1e3);
    if !matches!(args.trace, TraceKind::Synthetic) {
        builder = builder.target_rps(args.rps);
    }
    if let Some(u) = args.urgent {
        builder = builder.mix(CategoryMix::with_urgent_fraction(u));
    }
    let workload = builder.build();

    eprintln!("engine:   {}", kind.name());
    eprintln!("model:    {}", args.model.name());
    eprintln!("workload: {}", workload.description);

    let tracer = if args.trace_out.is_some() {
        Tracer::on()
    } else {
        Tracer::off()
    };
    let engine = kind.build(args.model.config(args.seed));
    let result = serve_one_traced(engine, &workload, tracer.clone());
    let report = result.report();

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["requests".to_string(), report.requests.to_string()]);
    table.row(vec![
        "slo_attainment_pct".to_string(),
        format!("{:.2}", report.attainment_pct),
    ]);
    table.row(vec![
        "goodput_tps".to_string(),
        format!("{:.1}", report.goodput_tps),
    ]);
    table.row(vec![
        "throughput_tps".to_string(),
        format!("{:.1}", report.throughput_tps),
    ]);
    table.row(vec![
        "mean_ttft_ms".to_string(),
        format!("{:.1}", report.mean_ttft_ms),
    ]);
    table.row(vec![
        "mean_accepted_per_verify".to_string(),
        format!("{:.2}", result.mean_accepted_per_verify),
    ]);
    table.row(vec![
        "iterations".to_string(),
        result.iterations.to_string(),
    ]);
    table.row(vec![
        "simulated_s".to_string(),
        format!("{:.1}", result.end_ms / 1e3),
    ]);
    for c in &report.per_category {
        table.row(vec![
            format!("{}_violation_pct", c.category.label()),
            format!("{:.2}", c.violation_pct),
        ]);
        table.row(vec![
            format!("{}_mean_tpot_ms", c.category.label()),
            format!("{:.2}", c.mean_tpot_ms),
        ]);
    }
    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }

    if let Some(path) = args.trace_out {
        let events = tracer.snapshot();
        perfetto::export_to_file(&path, &events).expect("write perfetto trace");
        eprintln!("wrote {} ({} trace events)", path.display(), events.len());
    }
    if let Some(path) = args.json_out {
        let mut summary = BenchSummary::new(
            "adaserve_sim",
            if is_smoke() { "smoke" } else { "full" },
            args.seed,
            args.duration_s * 1e3,
        );
        summary.push_report(
            format!("engine={} model={}", kind.name(), args.model.name()),
            &report,
        );
        summary.write(&path).expect("write BENCH json");
    }
}
