//! Figs. 13 and 14 — workload fluctuation sensitivity.
//!
//! Fig. 13 plots the synthetic trace where each application category peaks
//! at a different time; Fig. 14 shows per-system SLO attainment when
//! serving it. AdaServe's adaptive control absorbs the category bursts.

use adaserve_bench::{run_many, run_one, seed, EngineKind, ModelSetup};
use metrics::Table;
use workload::{ArrivalTrace, TraceKind, WorkloadBuilder};

fn main() {
    // ---- Fig. 13: the arrival pattern. ----
    let trace = ArrivalTrace::generate(TraceKind::Synthetic, simllm::seed_stream(seed(), 1));
    println!(
        "Synthetic trace: {} arrivals over 6 minutes, staggered category peaks\n",
        trace.len()
    );
    let mut fig13 = Table::new(vec![
        "t (min)",
        "coding/10s",
        "chat/10s",
        "summarization/10s",
    ]);
    for (start_ms, _, per_cat) in trace.bucket_counts(10_000.0) {
        fig13.row(vec![
            format!("{:.1}", start_ms / 60_000.0),
            per_cat[0].to_string(),
            per_cat[1].to_string(),
            per_cat[2].to_string(),
        ]);
    }
    println!("-- Fig. 13: per-category arrivals --\n{}", fig13.render());
    println!("CSV fig13:\n{}", fig13.to_csv());

    // ---- Fig. 14: attainment bars under the synthetic trace. ----
    let engines = EngineKind::main_lineup();
    for setup in ModelSetup::ALL {
        let config = setup.config(seed());
        let workload = WorkloadBuilder::new(seed(), config.baseline_ms)
            .trace(TraceKind::Synthetic)
            .build();
        println!(
            "==== {} ({} requests) ====\n",
            setup.name(),
            workload.requests.len()
        );
        let results = run_many(engines.clone(), |&e| run_one(e, setup, seed(), &workload));
        let mut fig14 = Table::new(vec!["System", "SLO attainment (%)", "Goodput (tok/s)"]);
        for (kind, result) in engines.iter().zip(&results) {
            let report = result.report();
            fig14.row(vec![
                kind.name(),
                format!("{:.1}", report.attainment_pct),
                format!("{:.0}", report.goodput_tps),
            ]);
        }
        println!(
            "-- Fig. 14: attainment under the synthetic trace --\n{}",
            fig14.render()
        );
        println!("CSV fig14:\n{}", fig14.to_csv());
    }
}
