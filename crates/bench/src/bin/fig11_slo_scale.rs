//! Fig. 11 — SLO attainment and goodput vs the urgent category's SLO scale.
//!
//! Fixed 4.0 RPS, 60% urgent requests; the coding category's TPOT SLO
//! sweeps from 1.6× down to 0.6× the baseline decode latency. Continuous
//! batching cannot go below 1.0× (a plain decode step already busts the
//! SLO); speculative decoding can — and AdaServe prioritizes the requests
//! that need it (paper §6.2).

use adaserve_bench::{parse_duration_ms, run_many, run_one, seed, EngineKind, ModelSetup};
use metrics::Table;
use workload::{CategoryMix, TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let scales = [1.6, 1.4, 1.2, 1.0, 0.8, 0.6];
    let engines = EngineKind::main_lineup();

    for setup in ModelSetup::ALL {
        let config = setup.config(seed());
        println!("==== {} (4.0 rps, 60% urgent) ====\n", setup.name());
        let workloads: Vec<_> = scales
            .iter()
            .map(|&s| {
                WorkloadBuilder::new(seed(), config.baseline_ms)
                    .mix(CategoryMix::with_urgent_fraction(0.6))
                    .trace(TraceKind::RealWorld)
                    .cat1_slo_scale(s)
                    .target_rps(4.0)
                    .duration_ms(duration)
                    .build()
            })
            .collect();
        let jobs: Vec<(EngineKind, usize)> = engines
            .iter()
            .flat_map(|&e| (0..scales.len()).map(move |i| (e, i)))
            .collect();
        let results = run_many(jobs, |&(e, i)| run_one(e, setup, seed(), &workloads[i]));

        let mut header: Vec<String> = vec!["SLO scale".into()];
        header.extend(engines.iter().map(|e| e.name()));
        let mut att = Table::new(header.clone());
        let mut good = Table::new(header);
        for (si, &s) in scales.iter().enumerate() {
            let mut row_a = vec![format!("{s:.1}")];
            let mut row_g = vec![format!("{s:.1}")];
            for (ei, _) in engines.iter().enumerate() {
                let report = results[ei * scales.len() + si].report();
                row_a.push(format!("{:.1}", report.attainment_pct));
                row_g.push(format!("{:.0}", report.goodput_tps));
            }
            att.row(row_a);
            good.row(row_g);
        }
        println!("-- SLO attainment (%) --\n{}", att.render());
        println!("-- Goodput (tokens/s) --\n{}", good.render());
        println!("CSV attainment:\n{}", att.to_csv());
        println!("CSV goodput:\n{}", good.to_csv());
    }
}
