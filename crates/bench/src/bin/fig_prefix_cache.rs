//! `fig_prefix_cache` — cross-request prefix cache: TTFT and attainment
//! with KV reuse on vs off across a prefix-share × RPS sweep.
//!
//! The tracked artifact behind [`serving::PrefixCache`]: each sweep point
//! builds one shared-system-prompt workload (a `SHARED_PROMPT_LEN`-token
//! prefix common to a `share` fraction of requests) and serves it twice on
//! a fresh colocated AdaServe engine — once cache-off, once cache-on —
//! emitting paired rows. A multi-turn session workload (every turn's
//! prompt literally extends the previous turn's) rides along as the
//! second traffic shape. The cache is a pure reuse optimization, so the
//! gate in `check_bench_json` demands a real hit rate on shared traffic
//! and a no-worse p50 TTFT on every on/off pair.
//!
//! ```sh
//! fig_prefix_cache                    # full sweep
//! ADASERVE_SMOKE=1 fig_prefix_cache --json-out BENCH_prefix.json
//! ```

use adaserve_bench::{PrefixRow, PrefixSummary};
use adaserve_core::AdaServeEngine;
use serving::{RunResult, ServingEngine, SystemConfig};
use workload::{Workload, WorkloadBuilder};

/// Tokens in the shared system prompt (a realistic instruction preamble;
/// well past the KV block size, so hits reuse many whole blocks).
const SHARED_PROMPT_LEN: u32 = 512;

/// Prefix-cache budget in tokens when the cache is on.
const CACHE_BUDGET_TOKENS: u64 = 262_144;

/// Context cap for the multi-turn workload's growing conversations.
const MULTI_TURN_MAX_CONTEXT: u32 = 3_072;

fn engine(seed: u64, cache_on: bool) -> Box<dyn ServingEngine> {
    let mut config = SystemConfig::llama70b(seed);
    if cache_on {
        config = config.with_prefix_cache(CACHE_BUDGET_TOKENS);
    }
    Box::new(AdaServeEngine::new(config))
}

fn row(label: &str, share_pct: f64, rps: f64, cache_on: bool, result: &RunResult) -> PrefixRow {
    let report = result.report();
    PrefixRow {
        label: label.to_string(),
        cache: if cache_on { "on" } else { "off" }.into(),
        prefix_share_pct: share_pct,
        rps,
        requests: result.records.len(),
        prefix_hit_rate_pct: report.prefix_hit_rate_pct,
        prefill_tokens_saved: report.prefill_tokens_saved,
        mean_ttft_ms: report.mean_ttft_ms,
        p50_ttft_ms: report.p50_ttft_ms,
        p99_ttft_ms: report.p99_ttft_ms,
        slo_attainment_pct: report.attainment_pct,
        ttft_attainment_pct: report.ttft_attainment_pct,
    }
}

/// Serves `wl` cache-off then cache-on and returns the paired rows.
fn paired(label: &str, share_pct: f64, rps: f64, seed: u64, wl: &Workload) -> [PrefixRow; 2] {
    [false, true].map(|cache_on| {
        let result = adaserve_bench::serve_one(engine(seed, cache_on), wl);
        row(label, share_pct, rps, cache_on, &result)
    })
}

fn main() {
    adaserve_bench::check_sweep_args("fig_prefix_cache");
    let seed = adaserve_bench::seed();
    let smoke = adaserve_bench::is_smoke();
    let json_out = adaserve_bench::parse_json_out();
    let duration_ms = adaserve_bench::sweep_duration_ms(15_000.0, 60_000.0);
    let baseline_ms = SystemConfig::llama70b(seed).baseline_ms;

    let shares: &[f64] = if smoke { &[0.5, 0.9] } else { &[0.3, 0.6, 0.9] };
    let rates: &[f64] = if smoke { &[3.0] } else { &[2.0, 3.0, 4.0] };

    println!(
        "prefix cache sweep: share {shares:?} x rps {rates:?}, {SHARED_PROMPT_LEN}-token \
         shared prompt, {}s simulated per point, cache off vs on ({CACHE_BUDGET_TOKENS} \
         token budget), seed {seed}\n",
        duration_ms / 1e3,
    );

    let mut summary = PrefixSummary::new(
        "fig_prefix_cache",
        if smoke { "smoke" } else { "full" },
        seed,
        duration_ms,
    );
    println!(
        "{:<22} {:<5} {:>7} {:>5} {:>6} {:>7} {:>10} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "label",
        "cache",
        "share%",
        "rps",
        "reqs",
        "hit%",
        "saved_tok",
        "mean_ttft",
        "p50_ttft",
        "p99_ttft",
        "slo%",
        "ttft%"
    );
    let mut emit = |rows: [PrefixRow; 2]| {
        for r in rows {
            println!(
                "{:<22} {:<5} {:>7.0} {:>5.1} {:>6} {:>7.1} {:>10} {:>9.1} {:>9.1} {:>9.1} \
                 {:>7.1} {:>7.1}",
                r.label,
                r.cache,
                r.prefix_share_pct,
                r.rps,
                r.requests,
                r.prefix_hit_rate_pct,
                r.prefill_tokens_saved,
                r.mean_ttft_ms,
                r.p50_ttft_ms,
                r.p99_ttft_ms,
                r.slo_attainment_pct,
                r.ttft_attainment_pct,
            );
            summary.rows.push(r);
        }
    };

    for &share in shares {
        for &rps in rates {
            let wl = WorkloadBuilder::new(seed ^ 0x9AF1, baseline_ms)
                .target_rps(rps)
                .duration_ms(duration_ms)
                .shared_system_prompt(SHARED_PROMPT_LEN, share)
                .build();
            let label = format!("share={:.0}% rps={rps:.1}", share * 100.0);
            emit(paired(&label, share * 100.0, rps, seed, &wl));
        }
    }

    // Multi-turn sessions: every turn's prompt extends the previous one,
    // so each session re-hits its own growing prefix (share = 100%).
    for &rps in rates {
        let wl = WorkloadBuilder::new(seed ^ 0x9AF2, baseline_ms)
            .target_rps(rps)
            .duration_ms(duration_ms)
            .multi_turn(8, MULTI_TURN_MAX_CONTEXT)
            .build();
        let label = format!("multiturn rps={rps:.1}");
        emit(paired(&label, 100.0, rps, seed, &wl));
    }

    if let Some(path) = json_out {
        summary.write(&path).expect("write prefix artifact");
    }
}
