//! Extension study: AdaServe vs the related-work speculation policies the
//! paper discusses but does not evaluate (§7).
//!
//! * **SmartSpec** \[30\] — goodput-optimized adaptive *chain* length;
//! * **Sequoia-style static trees** \[9\] — one fixed hardware-friendly tree
//!   topology for every request;
//! * **vLLM-Spec(6)** — the strongest fixed-chain baseline;
//! * **AdaServe (throughput-only)** — tree speculation with adaptive (d, w)
//!   but no SLO awareness, isolating the value of SLO-customized selection.
//!
//! Run on the paper's multi-SLO mix: the ordering shows that load-adaptivity
//! helps, tree-shaped speculation helps more, and per-request SLO awareness
//! is what closes the gap.

use adaserve_bench::{
    parse_duration_ms, run_many, run_one, seed, serve_one, EngineKind, ModelSetup,
};
use baselines::{SmartSpecEngine, StaticTreeEngine};
use metrics::Table;
use workload::{Category, TraceKind, WorkloadBuilder};

fn main() {
    let duration = parse_duration_ms();
    let setup = ModelSetup::Llama70b;
    let config = setup.config(seed());
    let workload = WorkloadBuilder::new(seed(), config.baseline_ms)
        .trace(TraceKind::RealWorld)
        .target_rps(4.2)
        .duration_ms(duration)
        .build();
    println!("Extension-study workload: {}\n", workload.description);

    let mut rows: Vec<(String, serving::RunResult)> = Vec::new();
    // Baseline engines via the harness.
    for kind in [
        EngineKind::AdaServe,
        EngineKind::AdaServeAblated {
            adaptive: true,
            slo_selection: false,
            n_max: 8,
        },
        EngineKind::VllmSpec(6),
    ] {
        rows.push((kind.name(), run_one(kind, setup, seed(), &workload)));
    }
    // Related-work engines.
    let extra: Vec<(String, Box<dyn Fn() -> serving::RunResult + Sync>)> = Vec::new();
    drop(extra);
    let smart = serve_one(
        Box::new(SmartSpecEngine::new(setup.config(seed()))),
        &workload,
    );
    rows.push(("SmartSpec".into(), smart));
    let results = run_many(vec![(4u32, 2u32), (6, 3)], |&(d, w)| {
        let engine = StaticTreeEngine::new(setup.config(seed()), d, w);
        serve_one(Box::new(engine), &workload)
    });
    for r in results {
        rows.push((r.engine.clone(), r));
    }

    let mut table = Table::new(vec![
        "Policy",
        "Attainment (%)",
        "Goodput (tok/s)",
        "Accepted/verify",
        "coding viol%",
    ]);
    for (name, result) in &rows {
        let report = result.report();
        table.row(vec![
            name.clone(),
            format!("{:.1}", report.attainment_pct),
            format!("{:.0}", report.goodput_tps),
            format!("{:.2}", result.mean_accepted_per_verify),
            report
                .category(Category::CodingCopilot)
                .map(|c| format!("{:.1}", c.violation_pct))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
