//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§6).
//!
//! Each `src/bin/figNN_*.rs` binary reproduces one figure/table: it builds
//! the paper's workload, runs the relevant engines on the shared substrate,
//! and prints the same rows/series the paper plots (plain text + CSV).
//! This module holds the shared machinery: engine construction, model
//! setups, sweep drivers and result formatting.
//!
//! Absolute numbers come from the roofline cost model rather than real
//! A100s, so the *shapes* (who wins, by what factor, where crossovers fall)
//! are the reproduction target — see `EXPERIMENTS.md` for paper-vs-measured
//! notes.

pub mod json;
pub mod summary;

pub use summary::{
    AttributionRow, AttributionSummary, AutoscaleRow, AutoscaleSummary, BenchRow, BenchSummary,
    ChaosRow, ChaosSummary, FleetRow, FleetSummary, PerfRow, PerfSummary, PrefixRow, PrefixSummary,
    TierSummary,
};

use adaserve_core::{AdaServeEngine, AdaServeOptions};
use baselines::{
    FastServeEngine, PriorityEngine, SarathiEngine, VllmEngine, VllmSpecEngine, VtcEngine,
};
use serving::{Colocated, RunOptions, RunResult, ServeSession, ServingEngine, SystemConfig};
use workload::Workload;

/// The two model/hardware setups of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSetup {
    /// Llama-3.1-70B-Instruct, 4-way TP on A100-80G.
    Llama70b,
    /// Qwen2.5-32B-Instruct, 2-way TP on A100-80G.
    Qwen32b,
}

impl ModelSetup {
    /// Both setups in Table 1 order.
    pub const ALL: [ModelSetup; 2] = [ModelSetup::Llama70b, ModelSetup::Qwen32b];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSetup::Llama70b => "Llama-3.1-70B-Instruct",
            ModelSetup::Qwen32b => "Qwen2.5-32B-Instruct",
        }
    }

    /// Builds the system configuration (deterministic per seed).
    pub fn config(&self, seed: u64) -> SystemConfig {
        match self {
            ModelSetup::Llama70b => SystemConfig::llama70b(seed),
            ModelSetup::Qwen32b => SystemConfig::qwen32b(seed),
        }
    }

    /// The RPS sweep range the paper uses for this model (Figs. 8–9).
    pub fn rps_sweep(&self) -> Vec<f64> {
        let (lo, hi) = match self {
            ModelSetup::Llama70b => (2.6, 4.8),
            ModelSetup::Qwen32b => (2.4, 4.2),
        };
        let mut v = Vec::new();
        let mut x: f64 = lo;
        while x <= hi + 1e-9 {
            v.push((x * 10.0).round() / 10.0);
            x += 0.2;
        }
        v
    }

    /// Extra sweep points beyond the paper's plotted range.
    ///
    /// Our roofline testbed is slightly faster than the authors' measured
    /// A100 node (22.6 ms vs ~30 ms baseline decode), so the load level at
    /// which AdaServe itself starts missing SLOs falls past the paper's
    /// axis; these points exhibit that crossover.
    pub fn rps_extended(&self) -> Vec<f64> {
        match self {
            ModelSetup::Llama70b => vec![5.4, 6.0, 6.6],
            ModelSetup::Qwen32b => vec![4.8, 5.4, 6.0],
        }
    }
}

/// Engines under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// AdaServe with default options.
    AdaServe,
    /// AdaServe with explicit ablation switches.
    AdaServeAblated {
        /// Adaptive (d, w) control.
        adaptive: bool,
        /// SLO-customized selection phase enabled.
        slo_selection: bool,
        /// Per-request SLO-phase cap.
        n_max: usize,
    },
    /// vLLM continuous batching.
    Vllm,
    /// Sarathi-Serve chunked prefill.
    Sarathi,
    /// vLLM + sequence speculation of the given length.
    VllmSpec(u32),
    /// vLLM + priority scheduling.
    Priority,
    /// FastServe MLFQ.
    FastServe,
    /// VTC fair scheduling.
    Vtc,
}

impl EngineKind {
    /// Engines in the paper's end-to-end comparison (Figs. 8–11).
    pub fn main_lineup() -> Vec<EngineKind> {
        vec![
            EngineKind::AdaServe,
            EngineKind::Sarathi,
            EngineKind::Vllm,
            EngineKind::VllmSpec(4),
            EngineKind::VllmSpec(6),
            EngineKind::VllmSpec(8),
        ]
    }

    /// Systems in the Fig. 1 motivation study.
    pub fn motivation_lineup() -> Vec<EngineKind> {
        vec![
            EngineKind::Vllm,
            EngineKind::Sarathi,
            EngineKind::Priority,
            EngineKind::FastServe,
            EngineKind::Vtc,
        ]
    }

    /// Display name (matches the paper's legends).
    pub fn name(&self) -> String {
        match self {
            EngineKind::AdaServe => "AdaServe".into(),
            EngineKind::AdaServeAblated {
                adaptive,
                slo_selection,
                n_max,
            } => {
                format!("AdaServe(adaptive={adaptive},slo_sel={slo_selection},n_max={n_max})")
            }
            EngineKind::Vllm => "vLLM".into(),
            EngineKind::Sarathi => "Sarathi-Serve".into(),
            EngineKind::VllmSpec(k) => format!("vLLM-Spec({k})"),
            EngineKind::Priority => "vLLM+Priority".into(),
            EngineKind::FastServe => "FastServe".into(),
            EngineKind::Vtc => "VTC".into(),
        }
    }

    /// Instantiates the engine on a configuration.
    pub fn build(&self, config: SystemConfig) -> Box<dyn ServingEngine> {
        match *self {
            EngineKind::AdaServe => Box::new(AdaServeEngine::new(config)),
            EngineKind::AdaServeAblated {
                adaptive,
                slo_selection,
                n_max,
            } => {
                let options = AdaServeOptions {
                    adaptive,
                    slo_selection,
                    n_max,
                    ..Default::default()
                };
                Box::new(AdaServeEngine::with_options(config, options))
            }
            EngineKind::Vllm => Box::new(VllmEngine::new(config)),
            EngineKind::Sarathi => Box::new(SarathiEngine::new(config)),
            EngineKind::VllmSpec(k) => Box::new(VllmSpecEngine::new(config, k)),
            EngineKind::Priority => Box::new(PriorityEngine::new(config)),
            EngineKind::FastServe => Box::new(FastServeEngine::new(config)),
            EngineKind::Vtc => Box::new(VtcEngine::new(config)),
        }
    }
}

/// Serves `workload` with `kind` on `setup` and returns the run result.
pub fn run_one(kind: EngineKind, setup: ModelSetup, seed: u64, workload: &Workload) -> RunResult {
    let config = setup.config(seed);
    let engine = kind.build(config);
    serve_one(engine, workload)
}

/// Serves `workload` on a single boxed engine through the unified front
/// door ([`ServeSession`] over a [`Colocated`] deployment), unwrapping the
/// report back into the single-engine [`RunResult`] the figure binaries
/// tabulate.
pub fn serve_one(engine: Box<dyn ServingEngine>, workload: &Workload) -> RunResult {
    serve_one_traced(engine, workload, metrics::telemetry::Tracer::off())
}

/// [`serve_one`] with a trace sink installed on the session — the
/// `--trace-out` path of the CLI binaries. A disabled tracer reproduces
/// [`serve_one`] exactly (records are tracer-invariant; see
/// `tests/output_equivalence.rs`).
pub fn serve_one_traced(
    engine: Box<dyn ServingEngine>,
    workload: &Workload,
    tracer: metrics::telemetry::Tracer,
) -> RunResult {
    let name = engine.name();
    let report = ServeSession::with_options(Colocated::new(engine), RunOptions::default())
        .with_tracer(tracer)
        .serve(workload)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
    expect_no_rejections(&name, &report);
    report.into_colocated_result()
}

/// Panics if the front door rejected any request: a benchmark whose
/// workload does not fully fit the deployment must fail loudly, not emit
/// an attainment figure computed over the surviving requests.
pub fn expect_no_rejections(label: &str, report: &serving::RunReport) {
    assert!(
        report.rejected.is_empty(),
        "{label}: front door rejected {} request(s) (first: id {} — {}); \
         a bench workload must fit its deployment",
        report.rejected.len(),
        report.rejected[0].0,
        report.rejected[0].1,
    );
}

/// Maps `f` over `jobs` across threads, preserving job order.
///
/// Each job is independent (own engine/cluster + workload), so this is a
/// plain scoped fan-out sized to the host's parallelism. Used by the
/// figure binaries for both single-engine ([`RunResult`]) and cluster
/// sweeps.
pub fn par_map<J, R, F>(jobs: Vec<J>, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let results: Vec<std::sync::Mutex<Option<R>>> =
        jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..n_threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = f(&jobs[i]);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("job completed"))
        .collect()
}

/// Runs `(kind, workload)` jobs across threads, preserving job order.
pub fn run_many<J, F>(jobs: Vec<J>, f: F) -> Vec<RunResult>
where
    J: Sync,
    F: Fn(&J) -> RunResult + Sync,
{
    par_map(jobs, f)
}

/// Default experiment duration (simulated milliseconds).
///
/// The paper serves a rescaled 20-minute trace; 180 simulated seconds keeps
/// every figure reproducible in minutes of wall-clock while preserving the
/// bursty shape. `--quick` in each binary cuts this further.
pub const DEFAULT_DURATION_MS: f64 = 180_000.0;

/// Parses common CLI flags: `--quick` (shorter runs), `--duration-s N`.
pub fn parse_duration_ms() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    let mut duration = DEFAULT_DURATION_MS;
    for (i, a) in args.iter().enumerate() {
        if a == "--quick" {
            duration = 45_000.0;
        }
        if a == "--duration-s" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                duration = v * 1e3;
            }
        }
    }
    duration
}

/// Standard experiment seed (all binaries share it for cross-figure
/// consistency). Override with `ADASERVE_SEED` via [`seed`].
pub const SEED: u64 = 20_250_117;

/// The run's experiment seed: `ADASERVE_SEED` if set, else [`SEED`].
///
/// Every figure binary resolves its seed through this one call so a CI
/// smoke run (or a bisecting developer) can pin/vary the whole pipeline
/// with a single environment variable.
pub fn seed() -> u64 {
    workload::env_seed(SEED)
}

/// Whether `ADASERVE_SMOKE` is set (CI-sized runs).
pub fn is_smoke() -> bool {
    std::env::var_os("ADASERVE_SMOKE").is_some()
}

/// The run's [`serving::ExecMode`]: `ADASERVE_EXEC` if set, else the default
/// (sharded, auto-sized worker pool).
///
/// The same single-env-var convention as [`seed`]: CI or a bisecting
/// developer can force every bench binary onto one executor
/// (`ADASERVE_EXEC=sequential`, `sharded`, or `sharded:4`) without
/// touching flags. A malformed value panics — a typo in a CI matrix
/// must fail the job, not silently fall back to the default executor.
pub fn exec_mode() -> serving::ExecMode {
    serving::ExecMode::from_env("ADASERVE_EXEC").unwrap_or_default()
}

/// Rejects anything but the shared sweep flags (`--quick`,
/// `--duration-s F`, `--json-out PATH`, `--trace-out PATH`), before any
/// simulation runs.
///
/// `binary` names the caller in the usage line. Exits with status 2 on an
/// unknown flag.
pub fn check_sweep_args(binary: &str) {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => {}
            // value consumed by its parser
            "--duration-s" | "--json-out" | "--trace-out" => i += 1,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: {binary} [--quick] [--duration-s F] [--json-out PATH] \
                     [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
}

/// The sweep's simulated duration: an explicit `--duration-s`/`--quick`
/// always wins; otherwise `smoke_default_ms` under `ADASERVE_SMOKE`, else
/// `full_default_ms` (sweep binaries default shorter than the shared
/// [`DEFAULT_DURATION_MS`] because they multiply runs by sweep points).
pub fn sweep_duration_ms(smoke_default_ms: f64, full_default_ms: f64) -> f64 {
    let explicit = std::env::args().any(|a| a == "--duration-s" || a == "--quick");
    if explicit {
        parse_duration_ms()
    } else if is_smoke() {
        smoke_default_ms
    } else {
        full_default_ms
    }
}

/// Parses the shared `--json-out PATH` flag: where to write the run's
/// machine-readable [`BenchSummary`] artifact, if anywhere.
pub fn parse_json_out() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json-out")
        .map(|i| match args.get(i + 1) {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                eprintln!("--json-out requires a path");
                std::process::exit(2);
            }
        })
}

/// Parses the shared `--trace-out PATH` flag: where to write the run's
/// Perfetto/Chrome-trace JSON (see `metrics::telemetry::perfetto`), if
/// anywhere. Binaries that honour it turn the tracer on only when the
/// flag is present, so the default bench path stays trace-free.
pub fn parse_trace_out() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace-out")
        .map(|i| match args.get(i + 1) {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                eprintln!("--trace-out requires a path");
                std::process::exit(2);
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::WorkloadBuilder;

    #[test]
    fn rps_sweeps_match_paper_ranges() {
        let llama = ModelSetup::Llama70b.rps_sweep();
        assert_eq!(llama.first().copied(), Some(2.6));
        assert_eq!(llama.last().copied(), Some(4.8));
        let qwen = ModelSetup::Qwen32b.rps_sweep();
        assert_eq!(qwen.first().copied(), Some(2.4));
        assert_eq!(qwen.last().copied(), Some(4.2));
    }

    #[test]
    fn every_engine_kind_builds_and_serves() {
        let config = ModelSetup::Llama70b.config(1);
        let wl = WorkloadBuilder::new(3, config.baseline_ms)
            .target_rps(1.0)
            .duration_ms(4_000.0)
            .build();
        let mut kinds = EngineKind::main_lineup();
        kinds.extend(EngineKind::motivation_lineup());
        kinds.push(EngineKind::AdaServeAblated {
            adaptive: false,
            slo_selection: false,
            n_max: 4,
        });
        for kind in kinds {
            let result = run_one(kind, ModelSetup::Llama70b, 1, &wl);
            assert_eq!(result.records.len(), wl.requests.len(), "{}", kind.name());
        }
    }

    #[test]
    fn run_many_preserves_order() {
        let config = ModelSetup::Llama70b.config(1);
        let wl = WorkloadBuilder::new(3, config.baseline_ms)
            .target_rps(1.0)
            .duration_ms(3_000.0)
            .build();
        let jobs = vec![EngineKind::Vllm, EngineKind::Sarathi];
        let results = run_many(jobs, |k| run_one(*k, ModelSetup::Llama70b, 1, &wl));
        assert_eq!(results[0].engine, "vLLM");
        assert_eq!(results[1].engine, "Sarathi-Serve");
    }
}
