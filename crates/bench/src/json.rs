//! A minimal JSON value model, writer and parser.
//!
//! The CI container has no crates.io access, so `serde_json` is not
//! available; this module implements the small subset the benchmark
//! pipeline needs — enough to emit `BENCH_*.json` artifacts and to parse
//! them back for schema validation (`check_bench_json`). It is a strict
//! RFC 8259 subset: no comments, no trailing commas, numbers restricted to
//! finite doubles.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as a double).
    Num(f64),
    /// An exact unsigned integer. The emitter uses this for seeds/ids that
    /// may exceed f64's 2^53 exact-integer range; the parser always
    /// produces [`Json::Num`].
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so emission is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one (lossy for `Int` values
    /// above 2^53).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as compact JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_f64(*n)),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Formats a double as a JSON-valid number token.
///
/// JSON has no NaN/Infinity; they are clamped to 0 (the emitter never
/// produces them for well-formed runs, this is belt-and-braces). Integral
/// values print without a fraction so ids and counts stay readable.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "0".into();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        let mut s = format!("{x:.6}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        s
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a message with a byte offset on error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = match code {
                            // High surrogate: must pair with a following
                            // \uDC00-\uDFFF low surrogate (RFC 8259 §7).
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err(format!(
                                        "unpaired high surrogate at byte {}",
                                        *pos
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!("invalid low surrogate at byte {}", *pos));
                                }
                                *pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!("unpaired low surrogate at byte {}", *pos));
                            }
                            c => c,
                        };
                        out.push(char::from_u32(scalar).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
        .map_err(|e| e.to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips_through_writer() {
        let doc = r#"{"rows":[{"label":"a \"quoted\" one","x":1.25}],"n":3}"#;
        let v = parse(doc).unwrap();
        let emitted = v.to_string_compact();
        assert_eq!(parse(&emitted).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        let v = parse(r#""a \ud83d\ude00 b""#).expect("surrogate pair decodes");
        assert_eq!(v.as_str(), Some("a \u{1F600} b"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
        assert!(parse(r#""\ud83dA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn int_values_emit_exactly() {
        // 2^53 + 1 is not representable as f64; Int keeps it exact.
        let v = Json::Int(9_007_199_254_740_993);
        assert_eq!(v.to_string_compact(), "9007199254740993");
        assert!(parse(&v.to_string_compact()).is_ok());
    }

    #[test]
    fn number_formatting_is_json_valid() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(3.25), "3.25");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(-2.5), "-2.5");
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = Json::Str("a\u{1}b".into());
        assert_eq!(v.to_string_compact(), "\"a\\u0001b\"");
    }
}
