//! Machine-readable benchmark summaries (`BENCH_*.json`).
//!
//! Every figure binary can drop a [`BenchSummary`] next to its textual
//! output, giving the repo a perf trajectory CI can gate on: the
//! `bench-json` CI step runs the smoke sweeps, validates the emitted JSON
//! against [`validate`] (via the `check_bench_json` binary) and uploads
//! the artifact, so a PR that silently breaks the hot loop or the emitter
//! fails loudly.
//!
//! Schema (version 2; version 1 lacked the three TTFT keys the
//! disaggregation sweeps gate on):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "name": "fig_cluster_scaling",
//!   "mode": "smoke",
//!   "seed": 20250117,
//!   "duration_ms": 30000,
//!   "rows": [
//!     {
//!       "label": "replicas=4 rps=8.0 router=slo-aware",
//!       "requests": 240,
//!       "slo_attainment_pct": 97.5,
//!       "ttft_attainment_pct": 99.2,
//!       "goodput_tps": 1423.1,
//!       "throughput_tps": 1461.0,
//!       "p50_tpot_ms": 24.8,
//!       "p99_tpot_ms": 49.2,
//!       "p50_ttft_ms": 38.0,
//!       "p99_ttft_ms": 412.7,
//!       "tiers": [
//!         {
//!           "tier": "coding",
//!           "requests": 144,
//!           "attainment_pct": 96.5,
//!           "mean_tpot_ms": 23.1,
//!           "p99_tpot_ms": 27.9
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```

use crate::json::Json;
use metrics::SloReport;
use std::collections::BTreeMap;
use std::path::Path;

/// The schema version this module emits and validates.
pub const SCHEMA_VERSION: u32 = 2;

/// Per-SLO-tier (request category) aggregate within one row.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSummary {
    /// Tier label (`coding`, `chat`, `summarize`).
    pub tier: String,
    /// Completed requests in the tier.
    pub requests: usize,
    /// SLO attainment within the tier, percent.
    pub attainment_pct: f64,
    /// Mean per-request average TPOT, ms.
    pub mean_tpot_ms: f64,
    /// p99 per-request average TPOT, ms.
    pub p99_tpot_ms: f64,
}

/// One benchmark configuration's results (one sweep point).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Human-readable configuration label.
    pub label: String,
    /// Completed requests.
    pub requests: usize,
    /// Overall SLO attainment, percent.
    pub slo_attainment_pct: f64,
    /// TTFT SLO attainment, percent.
    pub ttft_attainment_pct: f64,
    /// Goodput (tokens/s of SLO-attaining requests).
    pub goodput_tps: f64,
    /// Throughput (all output tokens/s).
    pub throughput_tps: f64,
    /// Median per-request average TPOT, ms.
    pub p50_tpot_ms: f64,
    /// p99 per-request average TPOT, ms.
    pub p99_tpot_ms: f64,
    /// Median TTFT, ms.
    pub p50_ttft_ms: f64,
    /// p99 TTFT, ms.
    pub p99_ttft_ms: f64,
    /// Per-tier breakdown (present tiers only).
    pub tiers: Vec<TierSummary>,
}

impl BenchRow {
    /// Builds a row from a run's [`SloReport`].
    pub fn from_report(label: impl Into<String>, report: &SloReport) -> Self {
        Self {
            label: label.into(),
            requests: report.requests,
            slo_attainment_pct: report.attainment_pct,
            ttft_attainment_pct: report.ttft_attainment_pct,
            goodput_tps: report.goodput_tps,
            throughput_tps: report.throughput_tps,
            p50_tpot_ms: report.p50_tpot_ms,
            p99_tpot_ms: report.p99_tpot_ms,
            p50_ttft_ms: report.p50_ttft_ms,
            p99_ttft_ms: report.p99_ttft_ms,
            tiers: report
                .per_category
                .iter()
                .map(|c| TierSummary {
                    tier: c.category.label().to_string(),
                    requests: c.requests,
                    attainment_pct: 100.0 - c.violation_pct,
                    mean_tpot_ms: c.mean_tpot_ms,
                    p99_tpot_ms: c.p99_tpot_ms,
                })
                .collect(),
        }
    }
}

/// A complete benchmark artifact: run metadata plus one row per sweep
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Emitting binary, e.g. `"fig_cluster_scaling"`.
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used (`ADASERVE_SEED`-overridable).
    pub seed: u64,
    /// Simulated duration per sweep point, ms.
    pub duration_ms: f64,
    /// Sweep results.
    pub rows: Vec<BenchRow>,
}

impl BenchSummary {
    /// Creates an empty summary; `mode` must be `"smoke"` or `"full"`.
    pub fn new(
        name: impl Into<String>,
        mode: impl Into<String>,
        seed: u64,
        duration_ms: f64,
    ) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            duration_ms,
            rows: Vec::new(),
        }
    }

    /// Appends one sweep point from its report.
    pub fn push_report(&mut self, label: impl Into<String>, report: &SloReport) {
        self.rows.push(BenchRow::from_report(label, report));
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        top.insert("duration_ms".into(), Json::Num(self.duration_ms));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("label".into(), Json::Str(row.label.clone()));
                m.insert("requests".into(), Json::Num(row.requests as f64));
                m.insert(
                    "slo_attainment_pct".into(),
                    Json::Num(row.slo_attainment_pct),
                );
                m.insert("goodput_tps".into(), Json::Num(row.goodput_tps));
                m.insert("throughput_tps".into(), Json::Num(row.throughput_tps));
                m.insert(
                    "ttft_attainment_pct".into(),
                    Json::Num(row.ttft_attainment_pct),
                );
                m.insert("p50_tpot_ms".into(), Json::Num(row.p50_tpot_ms));
                m.insert("p99_tpot_ms".into(), Json::Num(row.p99_tpot_ms));
                m.insert("p50_ttft_ms".into(), Json::Num(row.p50_ttft_ms));
                m.insert("p99_ttft_ms".into(), Json::Num(row.p99_ttft_ms));
                let tiers = row
                    .tiers
                    .iter()
                    .map(|t| {
                        let mut tm = BTreeMap::new();
                        tm.insert("tier".into(), Json::Str(t.tier.clone()));
                        tm.insert("requests".into(), Json::Num(t.requests as f64));
                        tm.insert("attainment_pct".into(), Json::Num(t.attainment_pct));
                        tm.insert("mean_tpot_ms".into(), Json::Num(t.mean_tpot_ms));
                        tm.insert("p99_tpot_ms".into(), Json::Num(t.p99_tpot_ms));
                        Json::Obj(tm)
                    })
                    .collect();
                m.insert("tiers".into(), Json::Arr(tiers));
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// Writes a serialized artifact to `path` and logs the destination to
/// stderr (shared by both artifact families so the emit contract cannot
/// diverge).
fn write_artifact(
    path: &Path,
    text: String,
    rows: usize,
    mode: &str,
    seed: u64,
) -> std::io::Result<()> {
    std::fs::write(path, text)?;
    eprintln!(
        "wrote {} ({rows} rows, mode={mode}, seed={seed})",
        path.display()
    );
    Ok(())
}

/// Requires `value` to be a finite number, recording a violation naming
/// `what` otherwise (shared by both schema validators).
fn need_num(errors: &mut Vec<String>, value: Option<&Json>, what: &str) -> Option<f64> {
    match value.and_then(Json::as_num) {
        Some(n) if n.is_finite() => Some(n),
        _ => {
            errors.push(format!("missing or non-numeric {what}"));
            None
        }
    }
}

/// One wall-clock perf measurement (a [`PerfSummary`] row).
///
/// Unlike [`BenchRow`], these quantify the *implementation's* speed, not
/// the modelled system's SLO behavior: how many simulated tokens and
/// engine iterations one CPU second drives, how large the decoding batch
/// got, what share of modelled time the (real, measured) scheduler took,
/// and how well the LM-distribution cache hit.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Configuration label, e.g. `"colocated rps=8"`.
    pub label: String,
    /// Wall-clock time of the run, ms.
    pub wall_ms: f64,
    /// Simulated time covered, ms.
    pub sim_ms: f64,
    /// Output tokens generated in simulation.
    pub sim_tokens: u64,
    /// Simulated output tokens per wall-clock second (the headline
    /// hot-loop throughput).
    pub sim_tokens_per_sec: f64,
    /// Engine iterations executed.
    pub iterations: u64,
    /// Engine iterations per wall-clock second.
    pub iterations_per_sec: f64,
    /// Largest decoding batch observed.
    pub peak_decode_batch: u64,
    /// Scheduling share of the modelled latency breakdown, percent
    /// (the Fig. 15 claim, measured on this implementation).
    pub scheduling_share_pct: f64,
    /// LM-distribution cache hit rate, percent.
    pub dist_cache_hit_rate_pct: f64,
    /// Trace events the ring buffer dropped (0 unless the row ran with a
    /// live bounded tracer that overflowed; surfaced so a silently
    /// truncated trace is visible in the perf trajectory).
    pub trace_dropped: u64,
}

/// A machine-readable wall-clock perf artifact (`BENCH_perf.json`).
///
/// Distinguished from the SLO-sweep schema by `"kind": "perf"`;
/// [`validate`] dispatches on that key, so both artifact families flow
/// through the same `check_bench_json` CI gate.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSummary {
    /// Emitting binary (e.g. `"perf_report"`).
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// Simulated duration per row, ms.
    pub duration_ms: f64,
    /// Measurements.
    pub rows: Vec<PerfRow>,
}

impl PerfSummary {
    /// Creates an empty perf summary; `mode` must be `"smoke"` or `"full"`.
    pub fn new(
        name: impl Into<String>,
        mode: impl Into<String>,
        seed: u64,
        duration_ms: f64,
    ) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            duration_ms,
            rows: Vec::new(),
        }
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("kind".into(), Json::Str("perf".into()));
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        top.insert("duration_ms".into(), Json::Num(self.duration_ms));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("label".into(), Json::Str(row.label.clone()));
                m.insert("wall_ms".into(), Json::Num(row.wall_ms));
                m.insert("sim_ms".into(), Json::Num(row.sim_ms));
                m.insert("sim_tokens".into(), Json::Num(row.sim_tokens as f64));
                m.insert(
                    "sim_tokens_per_sec".into(),
                    Json::Num(row.sim_tokens_per_sec),
                );
                m.insert("iterations".into(), Json::Num(row.iterations as f64));
                m.insert(
                    "iterations_per_sec".into(),
                    Json::Num(row.iterations_per_sec),
                );
                m.insert(
                    "peak_decode_batch".into(),
                    Json::Num(row.peak_decode_batch as f64),
                );
                m.insert(
                    "scheduling_share_pct".into(),
                    Json::Num(row.scheduling_share_pct),
                );
                m.insert(
                    "dist_cache_hit_rate_pct".into(),
                    Json::Num(row.dist_cache_hit_rate_pct),
                );
                m.insert("trace_dropped".into(), Json::Num(row.trace_dropped as f64));
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// One fleet-scaling measurement (a [`FleetSummary`] row): the same
/// deployment at one replica count under one [`serving::ExecMode`].
///
/// Sequential and sharded rows at the same replica count form a pair;
/// `speedup` is the sequential row's wall-clock divided by this row's
/// (1.0 on sequential rows by construction).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRow {
    /// Replicas in the fleet at this sweep point.
    pub replicas: usize,
    /// Executor mode label (`"sequential"`, `"sharded"`, `"sharded:N"`).
    pub mode: String,
    /// Worker threads the mode resolved to on the measuring host.
    pub workers: usize,
    /// Wall-clock time of the measured run, ms (best of k trials).
    pub wall_ms: f64,
    /// Simulated time covered, ms.
    pub sim_ms: f64,
    /// Completed requests.
    pub requests: usize,
    /// Engine iterations executed across the fleet.
    pub iterations: u64,
    /// Engine iterations per wall-clock second.
    pub iterations_per_sec: f64,
    /// Sequential wall-clock at this replica count ÷ this row's
    /// wall-clock.
    pub speedup: f64,
}

/// A machine-readable fleet-scaling artifact (`BENCH_fleet_scaling.json`):
/// wall-clock of sequential vs sharded stepping as the fleet grows.
///
/// Distinguished by `"kind": "fleet"`; [`validate`] dispatches on that
/// key so the artifact flows through the same `check_bench_json` CI gate
/// as the SLO and perf families.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Emitting binary (e.g. `"fig_fleet_scaling"`).
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// Measurements.
    pub rows: Vec<FleetRow>,
}

impl FleetSummary {
    /// Creates an empty fleet summary; `mode` must be `"smoke"` or
    /// `"full"`.
    pub fn new(name: impl Into<String>, mode: impl Into<String>, seed: u64) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            rows: Vec::new(),
        }
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("kind".into(), Json::Str("fleet".into()));
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("replicas".into(), Json::Num(row.replicas as f64));
                m.insert("exec".into(), Json::Str(row.mode.clone()));
                m.insert("workers".into(), Json::Num(row.workers as f64));
                m.insert("wall_ms".into(), Json::Num(row.wall_ms));
                m.insert("sim_ms".into(), Json::Num(row.sim_ms));
                m.insert("requests".into(), Json::Num(row.requests as f64));
                m.insert("iterations".into(), Json::Num(row.iterations as f64));
                m.insert(
                    "iterations_per_sec".into(),
                    Json::Num(row.iterations_per_sec),
                );
                m.insert("speedup".into(), Json::Num(row.speedup));
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// One prefix-cache measurement (a [`PrefixSummary`] row): one workload
/// point (prefix share × RPS) served with the cross-request prefix cache
/// on or off. Rows come in on/off pairs sharing a base label, so the
/// `check_bench_json` gate can compare TTFT across each pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixRow {
    /// Configuration label (identical for a row's on/off twin except the
    /// cache field), e.g. `"share=90% rps=3.0"`.
    pub label: String,
    /// `"on"` or `"off"`.
    pub cache: String,
    /// Fraction of requests carrying the shared prefix, percent (100 for
    /// multi-turn session workloads).
    pub prefix_share_pct: f64,
    /// Offered load at this sweep point, requests/s.
    pub rps: f64,
    /// Completed requests.
    pub requests: usize,
    /// Prefix-cache hit rate at admission, percent (0 on `off` rows).
    pub prefix_hit_rate_pct: f64,
    /// Prompt tokens whose prefill was skipped via cache reuse.
    pub prefill_tokens_saved: u64,
    /// Mean TTFT, ms.
    pub mean_ttft_ms: f64,
    /// Median TTFT, ms.
    pub p50_ttft_ms: f64,
    /// p99 TTFT, ms.
    pub p99_ttft_ms: f64,
    /// Overall (TPOT) SLO attainment, percent.
    pub slo_attainment_pct: f64,
    /// TTFT SLO attainment, percent.
    pub ttft_attainment_pct: f64,
}

/// A machine-readable prefix-cache artifact (`BENCH_prefix.json`):
/// TTFT/attainment with the cross-request prefix cache on vs off across
/// a prefix-share × RPS sweep.
///
/// Distinguished by `"kind": "prefix"`; [`validate`] dispatches on that
/// key so the artifact flows through the same `check_bench_json` CI gate
/// as the other families.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSummary {
    /// Emitting binary (e.g. `"fig_prefix_cache"`).
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// Simulated duration per sweep point, ms.
    pub duration_ms: f64,
    /// Measurements, in on/off pairs.
    pub rows: Vec<PrefixRow>,
}

impl PrefixSummary {
    /// Creates an empty prefix summary; `mode` must be `"smoke"` or
    /// `"full"`.
    pub fn new(
        name: impl Into<String>,
        mode: impl Into<String>,
        seed: u64,
        duration_ms: f64,
    ) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            duration_ms,
            rows: Vec::new(),
        }
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("kind".into(), Json::Str("prefix".into()));
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        top.insert("duration_ms".into(), Json::Num(self.duration_ms));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("label".into(), Json::Str(row.label.clone()));
                m.insert("cache".into(), Json::Str(row.cache.clone()));
                m.insert("prefix_share_pct".into(), Json::Num(row.prefix_share_pct));
                m.insert("rps".into(), Json::Num(row.rps));
                m.insert("requests".into(), Json::Num(row.requests as f64));
                m.insert(
                    "prefix_hit_rate_pct".into(),
                    Json::Num(row.prefix_hit_rate_pct),
                );
                m.insert(
                    "prefill_tokens_saved".into(),
                    Json::Num(row.prefill_tokens_saved as f64),
                );
                m.insert("mean_ttft_ms".into(), Json::Num(row.mean_ttft_ms));
                m.insert("p50_ttft_ms".into(), Json::Num(row.p50_ttft_ms));
                m.insert("p99_ttft_ms".into(), Json::Num(row.p99_ttft_ms));
                m.insert(
                    "slo_attainment_pct".into(),
                    Json::Num(row.slo_attainment_pct),
                );
                m.insert(
                    "ttft_attainment_pct".into(),
                    Json::Num(row.ttft_attainment_pct),
                );
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// One SLO-attribution measurement (an [`AttributionSummary`] row): one
/// SLO tier at one sweep point, with the violating requests' overshoot
/// decomposed into phase shares (see
/// `metrics::telemetry::SloAttribution`). Shares sum to ~100 for any row
/// with requests; `dominant` names the largest phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Sweep-point label shared by the point's tier rows, e.g.
    /// `"rps=3.0"`.
    pub label: String,
    /// Offered load at this sweep point, requests/s.
    pub rps: f64,
    /// SLO tier label (`coding`, `chatbot`, `summarize`, or `all`).
    pub tier: String,
    /// Finished requests in the tier.
    pub requests: usize,
    /// Requests that violated their TTFT or TPOT SLO.
    pub violations: usize,
    /// Queueing share of the pooled latency, percent.
    pub queueing_pct: f64,
    /// Prefill share, percent.
    pub prefill_pct: f64,
    /// KV-transfer share, percent.
    pub transfer_pct: f64,
    /// Decode share, percent.
    pub decode_pct: f64,
    /// Preemption share, percent.
    pub preemption_pct: f64,
    /// Phase with the largest share.
    pub dominant: String,
    /// True when the tier had zero violations and the shares pool all
    /// requests instead of just violators.
    pub fallback_all_requests: bool,
}

impl AttributionRow {
    /// Builds a row from one tier's pooled attribution at a sweep point.
    pub fn from_tier(
        label: impl Into<String>,
        rps: f64,
        tier: &metrics::telemetry::TierAttribution,
    ) -> Self {
        Self {
            label: label.into(),
            rps,
            tier: tier.tier.clone(),
            requests: tier.requests,
            violations: tier.violations,
            queueing_pct: tier.queueing_pct,
            prefill_pct: tier.prefill_pct,
            transfer_pct: tier.transfer_pct,
            decode_pct: tier.decode_pct,
            preemption_pct: tier.preemption_pct,
            dominant: tier.dominant.clone(),
            fallback_all_requests: tier.fallback_all_requests,
        }
    }
}

/// A machine-readable SLO-attribution artifact
/// (`BENCH_attribution.json`): per-tier phase decomposition of SLO
/// overshoot across an RPS sweep.
///
/// Distinguished by `"kind": "attribution"`; [`validate`] dispatches on
/// that key so the artifact flows through the same `check_bench_json` CI
/// gate as the other families (which additionally checks that each row's
/// shares sum to ~100).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionSummary {
    /// Emitting binary (e.g. `"fig_slo_attribution"`).
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// Simulated duration per sweep point, ms.
    pub duration_ms: f64,
    /// Measurements, grouped by sweep point then tier.
    pub rows: Vec<AttributionRow>,
}

impl AttributionSummary {
    /// Creates an empty attribution summary; `mode` must be `"smoke"` or
    /// `"full"`.
    pub fn new(
        name: impl Into<String>,
        mode: impl Into<String>,
        seed: u64,
        duration_ms: f64,
    ) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            duration_ms,
            rows: Vec::new(),
        }
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("kind".into(), Json::Str("attribution".into()));
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        top.insert("duration_ms".into(), Json::Num(self.duration_ms));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("label".into(), Json::Str(row.label.clone()));
                m.insert("rps".into(), Json::Num(row.rps));
                m.insert("tier".into(), Json::Str(row.tier.clone()));
                m.insert("requests".into(), Json::Num(row.requests as f64));
                m.insert("violations".into(), Json::Num(row.violations as f64));
                m.insert("queueing_pct".into(), Json::Num(row.queueing_pct));
                m.insert("prefill_pct".into(), Json::Num(row.prefill_pct));
                m.insert("transfer_pct".into(), Json::Num(row.transfer_pct));
                m.insert("decode_pct".into(), Json::Num(row.decode_pct));
                m.insert("preemption_pct".into(), Json::Num(row.preemption_pct));
                m.insert("dominant".into(), Json::Str(row.dominant.clone()));
                m.insert(
                    "fallback_all_requests".into(),
                    Json::Bool(row.fallback_all_requests),
                );
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// One autoscaling measurement (an [`AutoscaleSummary`] row): one
/// provisioning/admission policy serving the same flash-crowd scenario.
///
/// Rows come in triples — a statically max-provisioned reference plus
/// autoscaled runs under FIFO and weighted-fair admission — so the
/// `check_bench_json` gate can hold burst resilience, elasticity cost
/// and tenant fairness against each other.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleRow {
    /// Configuration label (`"static-max"`, `"autoscale-fifo"`,
    /// `"autoscale-fair"`).
    pub label: String,
    /// Admission policy at the front door (`"fifo"` or `"fair"`).
    pub policy: String,
    /// Fleet size the deployment was built with.
    pub replicas_max: usize,
    /// Completed requests.
    pub requests: usize,
    /// Requests refused at the front door (tenant quota).
    pub rejected: usize,
    /// Overall (TPOT) SLO attainment, percent.
    pub slo_attainment_pct: f64,
    /// TTFT SLO attainment, percent.
    pub ttft_attainment_pct: f64,
    /// Joint (TPOT ∧ TTFT) attainment of requests arriving *outside* the
    /// flash-crowd window, percent.
    pub steady_attainment_pct: f64,
    /// Joint attainment of requests arriving *inside* the flash-crowd
    /// window, percent.
    pub burst_attainment_pct: f64,
    /// Active-replica time integrated over the run, in replica-hours
    /// (the elasticity cost; `replicas_max × duration` when static).
    pub replica_hours: f64,
    /// Most replicas simultaneously active.
    pub peak_replicas: usize,
    /// Join actions the controller issued.
    pub joins: usize,
    /// Drain actions the controller issued.
    pub drains: usize,
    /// Best minus worst per-tenant joint attainment, percentage points.
    pub tenant_spread_pct: f64,
    /// Worst per-tenant joint attainment, percent.
    pub worst_tenant_pct: f64,
}

/// A machine-readable autoscaling artifact (`BENCH_autoscale.json`):
/// attainment, replica-hours and tenant fairness through a flash crowd
/// under static vs autoscaled provisioning and FIFO vs weighted-fair
/// admission.
///
/// Distinguished by `"kind": "autoscale"`; [`validate`] dispatches on
/// that key so the artifact flows through the same `check_bench_json` CI
/// gate as the other families.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleSummary {
    /// Emitting binary (e.g. `"fig_autoscale"`).
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// Simulated duration per row, ms.
    pub duration_ms: f64,
    /// Measurements, one per policy.
    pub rows: Vec<AutoscaleRow>,
}

impl AutoscaleSummary {
    /// Creates an empty autoscale summary; `mode` must be `"smoke"` or
    /// `"full"`.
    pub fn new(
        name: impl Into<String>,
        mode: impl Into<String>,
        seed: u64,
        duration_ms: f64,
    ) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            duration_ms,
            rows: Vec::new(),
        }
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("kind".into(), Json::Str("autoscale".into()));
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        top.insert("duration_ms".into(), Json::Num(self.duration_ms));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("label".into(), Json::Str(row.label.clone()));
                m.insert("policy".into(), Json::Str(row.policy.clone()));
                m.insert("replicas_max".into(), Json::Num(row.replicas_max as f64));
                m.insert("requests".into(), Json::Num(row.requests as f64));
                m.insert("rejected".into(), Json::Num(row.rejected as f64));
                m.insert(
                    "slo_attainment_pct".into(),
                    Json::Num(row.slo_attainment_pct),
                );
                m.insert(
                    "ttft_attainment_pct".into(),
                    Json::Num(row.ttft_attainment_pct),
                );
                m.insert(
                    "steady_attainment_pct".into(),
                    Json::Num(row.steady_attainment_pct),
                );
                m.insert(
                    "burst_attainment_pct".into(),
                    Json::Num(row.burst_attainment_pct),
                );
                m.insert("replica_hours".into(), Json::Num(row.replica_hours));
                m.insert("peak_replicas".into(), Json::Num(row.peak_replicas as f64));
                m.insert("joins".into(), Json::Num(row.joins as f64));
                m.insert("drains".into(), Json::Num(row.drains as f64));
                m.insert("tenant_spread_pct".into(), Json::Num(row.tenant_spread_pct));
                m.insert("worst_tenant_pct".into(), Json::Num(row.worst_tenant_pct));
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// One chaos measurement (a [`ChaosSummary`] row): the same seeded
/// crash-during-flash-crowd scenario under one recovery configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Configuration label (`"no-fault"`, `"fault-no-recovery"`,
    /// `"fault-with-recovery"`).
    pub label: String,
    /// Recovery policy in force (`"n/a"` on the fault-free row,
    /// `"none"` or `"retry"` on the faulted rows).
    pub recovery: String,
    /// Faults the plan scheduled for this row.
    pub faults: usize,
    /// Requests the workload offered.
    pub offered: usize,
    /// Requests that finished.
    pub finished: usize,
    /// Requests terminally rejected (retry budget exhausted, degraded
    /// shed, or front-door refusal).
    pub rejected: usize,
    /// Retries the session scheduled.
    pub retries: u64,
    /// Joint (TPOT ∧ TTFT) attainment among *finished* requests,
    /// percent.
    pub slo_attainment_pct: f64,
    /// Joint attainment on the **offered** basis — rejected requests
    /// count as misses — percent. This is the number recovery moves:
    /// retrying a lost request can still meet its SLOs, rejecting it
    /// never can.
    pub offered_attainment_pct: f64,
    /// Mean TTFT among finished requests, ms (retried requests charge
    /// their whole recovery, backoff included).
    pub mean_ttft_ms: f64,
}

/// A machine-readable chaos artifact (`BENCH_chaos.json`): request
/// conservation and offered-basis SLO attainment through a seeded
/// crash-during-flash-crowd scenario, served fault-free, faulted without
/// recovery, and faulted with retry/backoff recovery.
///
/// Distinguished by `"kind": "chaos"`; [`validate`] dispatches on that
/// key so the artifact flows through the same `check_bench_json` CI gate
/// as the other families.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSummary {
    /// Emitting binary (e.g. `"fig_chaos"`).
    pub name: String,
    /// `"smoke"` (CI-sized) or `"full"`.
    pub mode: String,
    /// The experiment seed the run used.
    pub seed: u64,
    /// Simulated duration per row, ms.
    pub duration_ms: f64,
    /// Measurements, one per recovery configuration.
    pub rows: Vec<ChaosRow>,
}

impl ChaosSummary {
    /// Creates an empty chaos summary; `mode` must be `"smoke"` or
    /// `"full"`.
    pub fn new(
        name: impl Into<String>,
        mode: impl Into<String>,
        seed: u64,
        duration_ms: f64,
    ) -> Self {
        let mode = mode.into();
        assert!(
            mode == "smoke" || mode == "full",
            "mode must be smoke|full, got {mode:?}"
        );
        Self {
            name: name.into(),
            mode,
            seed,
            duration_ms,
            rows: Vec::new(),
        }
    }

    /// Lowers the summary to a JSON value.
    pub fn to_json(&self) -> Json {
        let mut top = BTreeMap::new();
        top.insert(
            "schema_version".into(),
            Json::Num(f64::from(SCHEMA_VERSION)),
        );
        top.insert("kind".into(), Json::Str("chaos".into()));
        top.insert("name".into(), Json::Str(self.name.clone()));
        top.insert("mode".into(), Json::Str(self.mode.clone()));
        top.insert("seed".into(), Json::Int(self.seed));
        top.insert("duration_ms".into(), Json::Num(self.duration_ms));
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut m = BTreeMap::new();
                m.insert("label".into(), Json::Str(row.label.clone()));
                m.insert("recovery".into(), Json::Str(row.recovery.clone()));
                m.insert("faults".into(), Json::Num(row.faults as f64));
                m.insert("offered".into(), Json::Num(row.offered as f64));
                m.insert("finished".into(), Json::Num(row.finished as f64));
                m.insert("rejected".into(), Json::Num(row.rejected as f64));
                m.insert("retries".into(), Json::Num(row.retries as f64));
                m.insert(
                    "slo_attainment_pct".into(),
                    Json::Num(row.slo_attainment_pct),
                );
                m.insert(
                    "offered_attainment_pct".into(),
                    Json::Num(row.offered_attainment_pct),
                );
                m.insert("mean_ttft_ms".into(), Json::Num(row.mean_ttft_ms));
                Json::Obj(m)
            })
            .collect();
        top.insert("rows".into(), Json::Arr(rows));
        Json::Obj(top)
    }

    /// Serializes to a compact JSON string (newline-terminated).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Writes the artifact to `path` and logs the destination to stderr.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_artifact(
            path,
            self.to_json_string(),
            self.rows.len(),
            &self.mode,
            self.seed,
        )
    }
}

/// Validates a chaos artifact (see [`ChaosSummary`]).
pub fn validate_chaos(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    need_num(&mut errors, doc.get("duration_ms"), "duration_ms");
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row
                    .get("label")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("rows[{i}]: missing or empty label"));
                }
                match row.get("recovery").and_then(Json::as_str) {
                    Some("n/a") | Some("none") | Some("retry") => {}
                    other => errors.push(format!(
                        "rows[{i}]: recovery must be \"n/a\", \"none\" or \"retry\", got {other:?}"
                    )),
                }
                for key in [
                    "faults",
                    "offered",
                    "finished",
                    "rejected",
                    "retries",
                    "slo_attainment_pct",
                    "offered_attainment_pct",
                    "mean_ttft_ms",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates an autoscaling artifact (see [`AutoscaleSummary`]).
pub fn validate_autoscale(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    need_num(&mut errors, doc.get("duration_ms"), "duration_ms");
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row
                    .get("label")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("rows[{i}]: missing or empty label"));
                }
                match row.get("policy").and_then(Json::as_str) {
                    Some("fifo") | Some("fair") => {}
                    other => errors.push(format!(
                        "rows[{i}]: policy must be \"fifo\" or \"fair\", got {other:?}"
                    )),
                }
                for key in [
                    "replicas_max",
                    "requests",
                    "rejected",
                    "slo_attainment_pct",
                    "ttft_attainment_pct",
                    "steady_attainment_pct",
                    "burst_attainment_pct",
                    "replica_hours",
                    "peak_replicas",
                    "joins",
                    "drains",
                    "tenant_spread_pct",
                    "worst_tenant_pct",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates an SLO-attribution artifact (see [`AttributionSummary`]).
pub fn validate_attribution(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    need_num(&mut errors, doc.get("duration_ms"), "duration_ms");
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                for key in ["label", "tier", "dominant"] {
                    if row
                        .get(key)
                        .and_then(Json::as_str)
                        .is_none_or(str::is_empty)
                    {
                        errors.push(format!("rows[{i}]: missing or empty {key}"));
                    }
                }
                if !matches!(row.get("fallback_all_requests"), Some(Json::Bool(_))) {
                    errors.push(format!(
                        "rows[{i}]: missing or non-bool fallback_all_requests"
                    ));
                }
                for key in [
                    "rps",
                    "requests",
                    "violations",
                    "queueing_pct",
                    "prefill_pct",
                    "transfer_pct",
                    "decode_pct",
                    "preemption_pct",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a prefix-cache artifact (see [`PrefixSummary`]).
pub fn validate_prefix(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    need_num(&mut errors, doc.get("duration_ms"), "duration_ms");
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row
                    .get("label")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("rows[{i}]: missing or empty label"));
                }
                match row.get("cache").and_then(Json::as_str) {
                    Some("on") | Some("off") => {}
                    other => errors.push(format!(
                        "rows[{i}]: cache must be \"on\" or \"off\", got {other:?}"
                    )),
                }
                for key in [
                    "prefix_share_pct",
                    "rps",
                    "requests",
                    "prefix_hit_rate_pct",
                    "prefill_tokens_saved",
                    "mean_ttft_ms",
                    "p50_ttft_ms",
                    "p99_ttft_ms",
                    "slo_attainment_pct",
                    "ttft_attainment_pct",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a parsed document, dispatching on its `kind`: documents
/// marked `"kind": "perf"` check against the perf schema, `"kind":
/// "fleet"` against the fleet-scaling schema, `"kind": "prefix"` against
/// the prefix-cache schema, `"kind": "attribution"` against the
/// SLO-attribution schema, `"kind": "autoscale"` against the autoscaling
/// schema, everything else against
/// the SLO-sweep schema of [`SCHEMA_VERSION`] (older versions are
/// rejected — version 1 lacked the TTFT keys).
///
/// Returns every violation found (not just the first), so a CI failure
/// message names all missing keys at once.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    match doc.get("kind").and_then(Json::as_str) {
        Some("perf") => validate_perf(doc),
        Some("fleet") => validate_fleet(doc),
        Some("prefix") => validate_prefix(doc),
        Some("attribution") => validate_attribution(doc),
        Some("autoscale") => validate_autoscale(doc),
        Some("chaos") => validate_chaos(doc),
        _ => validate_slo(doc),
    }
}

/// Validates a fleet-scaling artifact (see [`FleetSummary`]).
pub fn validate_fleet(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row
                    .get("exec")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("rows[{i}]: missing or empty exec"));
                }
                for key in [
                    "replicas",
                    "workers",
                    "wall_ms",
                    "sim_ms",
                    "requests",
                    "iterations",
                    "iterations_per_sec",
                    "speedup",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates a perf artifact (see [`PerfSummary`]).
pub fn validate_perf(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    need_num(&mut errors, doc.get("duration_ms"), "duration_ms");
    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row
                    .get("label")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("rows[{i}]: missing or empty label"));
                }
                for key in [
                    "wall_ms",
                    "sim_ms",
                    "sim_tokens",
                    "sim_tokens_per_sec",
                    "iterations",
                    "iterations_per_sec",
                    "peak_decode_batch",
                    "scheduling_share_pct",
                    "dist_cache_hit_rate_pct",
                    "trace_dropped",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Validates an SLO-sweep artifact (the historical `BENCH_*.json` shape).
fn validate_slo(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();

    match need_num(&mut errors, doc.get("schema_version"), "schema_version") {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("unsupported schema_version {v}")),
        None => {}
    }
    if doc
        .get("name")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        errors.push("missing or empty name".into());
    }
    match doc.get("mode").and_then(Json::as_str) {
        Some("smoke") | Some("full") => {}
        other => errors.push(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    need_num(&mut errors, doc.get("seed"), "seed");
    need_num(&mut errors, doc.get("duration_ms"), "duration_ms");

    match doc.get("rows").and_then(Json::as_arr) {
        None => errors.push("missing rows array".into()),
        Some([]) => errors.push("rows is empty".into()),
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                if row
                    .get("label")
                    .and_then(Json::as_str)
                    .is_none_or(str::is_empty)
                {
                    errors.push(format!("rows[{i}]: missing or empty label"));
                }
                for key in [
                    "requests",
                    "slo_attainment_pct",
                    "ttft_attainment_pct",
                    "goodput_tps",
                    "throughput_tps",
                    "p50_tpot_ms",
                    "p99_tpot_ms",
                    "p50_ttft_ms",
                    "p99_ttft_ms",
                ] {
                    need_num(&mut errors, row.get(key), &format!("rows[{i}].{key}"));
                }
                match row.get("tiers").and_then(Json::as_arr) {
                    None => errors.push(format!("rows[{i}]: missing tiers array")),
                    Some(tiers) => {
                        for (j, tier) in tiers.iter().enumerate() {
                            if tier
                                .get("tier")
                                .and_then(Json::as_str)
                                .is_none_or(str::is_empty)
                            {
                                errors.push(format!("rows[{i}].tiers[{j}]: missing tier label"));
                            }
                            for key in ["requests", "attainment_pct", "mean_tpot_ms", "p99_tpot_ms"]
                            {
                                need_num(
                                    &mut errors,
                                    tier.get(key),
                                    &format!("rows[{i}].tiers[{j}].{key}"),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use metrics::RequestRecord;
    use workload::Category;

    fn report() -> SloReport {
        let records: Vec<RequestRecord> = (0..6)
            .map(|id| RequestRecord {
                id,
                category: if id % 2 == 0 {
                    Category::Chatbot
                } else {
                    Category::Summarization
                },
                tpot_slo_ms: 50.0,
                ttft_slo_ms: 1_000.0,
                arrival_ms: 0.0,
                decode_start_ms: 5.0,
                completion_ms: 5.0 + 40.0 * 10.0,
                output_tokens: 10,
                accepted_tokens: 6,
                verify_steps: 3,
                preemptions: 0,
            })
            .collect();
        SloReport::from_records(&records)
    }

    #[test]
    fn summary_round_trips_and_validates() {
        let mut summary = BenchSummary::new("unit_test", "smoke", 7, 1234.5);
        summary.push_report("point-a", &report());
        summary.push_report("point-b", &report());
        let text = summary.to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("emitted JSON is schema-valid");
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("mode").unwrap().as_str(), Some("smoke"));
        let row = &doc.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("requests").unwrap().as_num(), Some(6.0));
        assert_eq!(
            row.get("tiers").unwrap().as_arr().unwrap().len(),
            2,
            "both present categories become tiers"
        );
    }

    #[test]
    fn validation_rejects_missing_keys() {
        let mut summary = BenchSummary::new("unit_test", "full", 7, 1.0);
        summary.push_report("point", &report());
        let doc = json::parse(&summary.to_json_string()).unwrap();
        // Knock out a required member and re-validate.
        let Json::Obj(mut top) = doc else { panic!() };
        top.remove("seed");
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("goodput_tps");
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("seed")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("rows[0].goodput_tps")),
            "{errors:?}"
        );
    }

    #[test]
    fn validation_rejects_missing_ttft_keys() {
        // A schema-1-era summary: right version number, no TTFT keys.
        let mut summary = BenchSummary::new("disagg_unit", "smoke", 7, 1.0);
        summary.push_report("split=1p3d rps=8 bw=300", &report());
        let doc = json::parse(&summary.to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("ttft_attainment_pct");
        row.remove("p99_ttft_ms");
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0].ttft_attainment_pct")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("rows[0].p99_ttft_ms")),
            "{errors:?}"
        );
        assert!(
            !errors.iter().any(|e| e.contains("p50_ttft_ms")),
            "present keys do not error: {errors:?}"
        );
    }

    #[test]
    fn validation_rejects_stale_schema_version() {
        let mut summary = BenchSummary::new("disagg_unit", "smoke", 7, 1.0);
        summary.push_report("point", &report());
        let doc = json::parse(&summary.to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        top.insert("schema_version".into(), Json::Num(1.0));
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("unsupported schema_version")),
            "{errors:?}"
        );
    }

    #[test]
    fn validation_rejects_empty_rows() {
        let summary = BenchSummary::new("unit_test", "smoke", 7, 1.0);
        let doc = json::parse(&summary.to_json_string()).unwrap();
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("rows is empty")));
    }

    #[test]
    #[should_panic(expected = "mode must be smoke|full")]
    fn bad_mode_panics_at_construction() {
        let _ = BenchSummary::new("x", "warp", 1, 1.0);
    }

    fn perf_summary() -> PerfSummary {
        let mut summary = PerfSummary::new("perf_report", "smoke", 7, 10_000.0);
        summary.rows.push(PerfRow {
            label: "colocated rps=2".into(),
            wall_ms: 65.0,
            sim_ms: 10_250.0,
            sim_tokens: 4_200,
            sim_tokens_per_sec: 64_615.0,
            iterations: 296,
            iterations_per_sec: 4_553.0,
            peak_decode_batch: 7,
            scheduling_share_pct: 0.02,
            dist_cache_hit_rate_pct: 9.5,
            trace_dropped: 0,
        });
        summary
    }

    #[test]
    fn perf_summary_round_trips_and_validates() {
        let text = perf_summary().to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("perf JSON is schema-valid");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("perf"));
        let row = &doc.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("iterations").unwrap().as_num(), Some(296.0));
    }

    #[test]
    fn perf_validation_rejects_missing_keys() {
        let doc = json::parse(&perf_summary().to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("sim_tokens_per_sec");
        row.remove("dist_cache_hit_rate_pct");
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0].sim_tokens_per_sec")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0].dist_cache_hit_rate_pct")),
            "{errors:?}"
        );
    }

    fn fleet_summary() -> FleetSummary {
        let mut summary = FleetSummary::new("fig_fleet_scaling", "smoke", 7);
        for (mode, workers, wall, speedup) in [
            ("sequential", 1usize, 290.0, 1.0),
            ("sharded", 4, 261.0, 1.11),
        ] {
            summary.rows.push(FleetRow {
                replicas: 4,
                mode: mode.into(),
                workers,
                wall_ms: wall,
                sim_ms: 10_000.0,
                requests: 80,
                iterations: 3_000,
                iterations_per_sec: 3_000.0 / wall * 1e3,
                speedup,
            });
        }
        summary
    }

    #[test]
    fn fleet_summary_round_trips_and_validates() {
        let text = fleet_summary().to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("fleet JSON is schema-valid");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("fleet"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("exec").unwrap().as_str(), Some("sharded"));
        assert_eq!(rows[1].get("speedup").unwrap().as_num(), Some(1.11));
    }

    #[test]
    fn fleet_validation_rejects_missing_keys() {
        let doc = json::parse(&fleet_summary().to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("speedup");
        row.remove("exec");
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rows[0].speedup")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0]: missing or empty exec")),
            "{errors:?}"
        );
    }

    fn prefix_summary() -> PrefixSummary {
        let mut summary = PrefixSummary::new("fig_prefix_cache", "smoke", 7, 10_000.0);
        for (cache, hit, saved, p50) in [("off", 0.0, 0u64, 210.0), ("on", 72.5, 40_960, 140.0)] {
            summary.rows.push(PrefixRow {
                label: "share=90% rps=3.0".into(),
                cache: cache.into(),
                prefix_share_pct: 90.0,
                rps: 3.0,
                requests: 30,
                prefix_hit_rate_pct: hit,
                prefill_tokens_saved: saved,
                mean_ttft_ms: p50 + 20.0,
                p50_ttft_ms: p50,
                p99_ttft_ms: p50 * 3.0,
                slo_attainment_pct: 100.0,
                ttft_attainment_pct: 100.0,
            });
        }
        summary
    }

    #[test]
    fn prefix_summary_round_trips_and_validates() {
        let text = prefix_summary().to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("prefix JSON is schema-valid");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("prefix"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("cache").unwrap().as_str(), Some("on"));
        assert_eq!(
            rows[1].get("prefix_hit_rate_pct").unwrap().as_num(),
            Some(72.5)
        );
        assert_eq!(
            rows[1].get("prefill_tokens_saved").unwrap().as_num(),
            Some(40_960.0)
        );
    }

    #[test]
    fn prefix_validation_rejects_missing_and_bad_keys() {
        let doc = json::parse(&prefix_summary().to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("p50_ttft_ms");
        row.insert("cache".into(), Json::Str("maybe".into()));
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rows[0].p50_ttft_ms")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("cache must be \"on\" or \"off\"")),
            "{errors:?}"
        );
    }

    fn attribution_summary() -> AttributionSummary {
        let mut summary = AttributionSummary::new("fig_slo_attribution", "smoke", 7, 10_000.0);
        for (tier, violations, queueing, prefill) in
            [("chatbot", 0usize, 12.0, 55.0), ("coding", 3, 61.0, 14.0)]
        {
            summary.rows.push(AttributionRow {
                label: "rps=3.0".into(),
                rps: 3.0,
                tier: tier.into(),
                requests: 30,
                violations,
                queueing_pct: queueing,
                prefill_pct: prefill,
                transfer_pct: 0.0,
                decode_pct: 100.0 - queueing - prefill,
                preemption_pct: 0.0,
                dominant: if queueing > 50.0 {
                    "queueing"
                } else {
                    "prefill"
                }
                .into(),
                fallback_all_requests: violations == 0,
            });
        }
        summary
    }

    #[test]
    fn attribution_summary_round_trips_and_validates() {
        let text = attribution_summary().to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("attribution JSON is schema-valid");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("attribution"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("dominant").unwrap().as_str(), Some("queueing"));
        assert_eq!(
            rows[0].get("fallback_all_requests"),
            Some(&Json::Bool(true))
        );
        assert_eq!(rows[1].get("violations").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn attribution_row_lowers_from_tier_attribution() {
        let tier = metrics::telemetry::SloAttribution::from_events(&[]).overall();
        let row = AttributionRow::from_tier("rps=1.0", 1.0, &tier);
        assert_eq!(row.tier, "all");
        assert_eq!(row.requests, 0);
        assert!(row.fallback_all_requests);
    }

    #[test]
    fn attribution_validation_rejects_missing_and_bad_keys() {
        let doc = json::parse(&attribution_summary().to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("queueing_pct");
        row.remove("dominant");
        row.insert("fallback_all_requests".into(), Json::Str("yes".into()));
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rows[0].queueing_pct")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0]: missing or empty dominant")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("non-bool fallback_all_requests")),
            "{errors:?}"
        );
    }

    fn autoscale_summary() -> AutoscaleSummary {
        let mut summary = AutoscaleSummary::new("fig_autoscale", "smoke", 7, 30_000.0);
        for (label, policy, hours, peak, joins, drains, spread) in [
            ("static-max", "fifo", 0.033, 4usize, 0usize, 0usize, 11.0),
            ("autoscale-fifo", "fifo", 0.014, 3, 2, 4, 14.0),
            ("autoscale-fair", "fair", 0.015, 3, 2, 4, 6.0),
        ] {
            summary.rows.push(AutoscaleRow {
                label: label.into(),
                policy: policy.into(),
                replicas_max: 4,
                requests: 120,
                rejected: 0,
                slo_attainment_pct: 96.0,
                ttft_attainment_pct: 94.0,
                steady_attainment_pct: 98.0,
                burst_attainment_pct: 89.0,
                replica_hours: hours,
                peak_replicas: peak,
                joins,
                drains,
                tenant_spread_pct: spread,
                worst_tenant_pct: 100.0 - spread,
            });
        }
        summary
    }

    #[test]
    fn autoscale_summary_round_trips_and_validates() {
        let text = autoscale_summary().to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("autoscale JSON is schema-valid");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("autoscale"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get("policy").unwrap().as_str(), Some("fair"));
        assert_eq!(rows[1].get("joins").unwrap().as_num(), Some(2.0));
        assert_eq!(rows[0].get("replica_hours").unwrap().as_num(), Some(0.033));
    }

    #[test]
    fn autoscale_validation_rejects_missing_and_bad_keys() {
        let doc = json::parse(&autoscale_summary().to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("replica_hours");
        row.remove("burst_attainment_pct");
        row.insert("policy".into(), Json::Str("lifo".into()));
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rows[0].replica_hours")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0].burst_attainment_pct")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("policy must be \"fifo\" or \"fair\"")),
            "{errors:?}"
        );
    }

    fn chaos_summary() -> ChaosSummary {
        let mut summary = ChaosSummary::new("fig_chaos", "smoke", 7, 20_000.0);
        for (label, recovery, faults, finished, rejected, retries, offered_att) in [
            ("no-fault", "n/a", 0usize, 90usize, 0usize, 0u64, 95.0),
            ("fault-no-recovery", "none", 2, 82, 8, 0, 74.0),
            ("fault-with-recovery", "retry", 2, 90, 0, 9, 88.0),
        ] {
            summary.rows.push(ChaosRow {
                label: label.into(),
                recovery: recovery.into(),
                faults,
                offered: 90,
                finished,
                rejected,
                retries,
                slo_attainment_pct: 95.0,
                offered_attainment_pct: offered_att,
                mean_ttft_ms: 310.0,
            });
        }
        summary
    }

    #[test]
    fn chaos_summary_round_trips_and_validates() {
        let text = chaos_summary().to_json_string();
        let doc = json::parse(&text).expect("emitted JSON parses");
        validate(&doc).expect("chaos JSON is schema-valid");
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("chaos"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get("recovery").unwrap().as_str(), Some("retry"));
        assert_eq!(rows[1].get("rejected").unwrap().as_num(), Some(8.0));
        assert_eq!(
            rows[2].get("offered_attainment_pct").unwrap().as_num(),
            Some(88.0)
        );
    }

    #[test]
    fn chaos_validation_rejects_missing_and_bad_keys() {
        let doc = json::parse(&chaos_summary().to_json_string()).unwrap();
        let Json::Obj(mut top) = doc else { panic!() };
        let Some(Json::Arr(rows)) = top.get_mut("rows") else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        row.remove("offered");
        row.remove("offered_attainment_pct");
        row.insert("recovery".into(), Json::Str("prayer".into()));
        let errors = validate(&Json::Obj(top)).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("rows[0].offered")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("rows[0].offered_attainment_pct")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("recovery must be")),
            "{errors:?}"
        );
    }

    #[test]
    fn kind_dispatch_keeps_slo_artifacts_on_the_slo_schema() {
        // An SLO artifact (no "kind") must not be validated as perf.
        let mut summary = BenchSummary::new("fig_cluster_scaling", "smoke", 7, 1.0);
        summary.push_report("point", &report());
        let doc = json::parse(&summary.to_json_string()).unwrap();
        validate(&doc).expect("slo artifact validates via dispatch");
    }
}
