//! Profiling: latency curves and the verification token budget.
//!
//! The paper sizes each iteration's total verification budget `B` from
//! hardware profiling: "AdaServe chooses an optimal budget that balances
//! decoding throughput and latency" (§3, footnote 1). This module reproduces
//! that step against the analytical latency model: it sweeps the
//! verification-batch token count, builds the latency curve, and picks the
//! budget at the throughput/latency balance point.

use crate::latency::{ForwardPass, LatencyModel, SeqWork};

/// One sampled point of a latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Total new tokens in the pass.
    pub tokens: u64,
    /// Modelled latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput in tokens per second.
    pub tokens_per_sec: f64,
}

/// A swept latency/throughput curve for verification-style passes.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyCurve {
    points: Vec<CurvePoint>,
    ctx_len: u32,
}

impl LatencyCurve {
    /// Sweeps `model` over token counts `1..=max_tokens` at context `ctx_len`.
    ///
    /// Tokens are spread over `batch_seqs` sequences to mimic a verification
    /// batch rather than one giant sequence.
    pub fn sweep(model: &LatencyModel, ctx_len: u32, max_tokens: u64, batch_seqs: u32) -> Self {
        assert!(batch_seqs >= 1);
        let mut points = Vec::new();
        let mut tokens = 1u64;
        while tokens <= max_tokens {
            // Spread tokens as evenly as possible over the batch, so the
            // sequence count (and thus KV traffic) grows monotonically.
            let base = tokens / u64::from(batch_seqs);
            let rem = tokens % u64::from(batch_seqs);
            let mut seqs = Vec::new();
            for i in 0..u64::from(batch_seqs) {
                let n = base + u64::from(i < rem);
                if n > 0 {
                    seqs.push(SeqWork {
                        new_tokens: n as u32,
                        ctx_len,
                    });
                }
            }
            let latency_ms = model.forward_latency_ms(&ForwardPass::new(seqs), true);
            points.push(CurvePoint {
                tokens,
                latency_ms,
                tokens_per_sec: tokens as f64 / (latency_ms / 1e3),
            });
            // Geometric-ish sweep keeps the curve small but dense at the knee.
            tokens = (tokens + (tokens / 4).max(1)).min(max_tokens + 1);
        }
        Self { points, ctx_len }
    }

    /// The sampled points, in increasing token order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Context length the curve was swept at.
    pub fn ctx_len(&self) -> u32 {
        self.ctx_len
    }

    /// Interpolated latency at an arbitrary token count.
    pub fn latency_at(&self, tokens: u64) -> f64 {
        match self.points.binary_search_by_key(&tokens, |p| p.tokens) {
            Ok(i) => self.points[i].latency_ms,
            Err(0) => self.points[0].latency_ms,
            Err(i) if i >= self.points.len() => self.points.last().expect("non-empty").latency_ms,
            Err(i) => {
                let a = self.points[i - 1];
                let b = self.points[i];
                let f = (tokens - a.tokens) as f64 / (b.tokens - a.tokens) as f64;
                a.latency_ms + f * (b.latency_ms - a.latency_ms)
            }
        }
    }
}

/// Policy for translating a latency curve into a token budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetPolicy {
    /// Largest budget whose latency stays within `stretch ×` the single-token
    /// latency — the "balance throughput and latency" rule.
    LatencyStretch(f64),
    /// Budget at the roofline knee (memory→compute crossover).
    Knee,
    /// Fixed budget (for ablations).
    Fixed(u64),
}

/// The hardware profile AdaServe's scheduler consumes.
#[derive(Debug, Clone)]
pub struct TokenBudgetProfile {
    /// Verification token budget per decoding iteration (the paper's `B`).
    pub verify_budget: u64,
    /// Speculation token budget per draft step (the paper's `B₂`).
    pub spec_budget: u64,
    /// Latency (ms) of a verification pass at the chosen budget.
    pub verify_latency_ms: f64,
    /// Latency (ms) of one draft decode step at the speculation budget.
    pub draft_step_latency_ms: f64,
}

impl TokenBudgetProfile {
    /// Profiles a (target, draft) deployment and derives budgets.
    ///
    /// `ctx_len` is the representative context length; `policy` picks the
    /// budget rule. The speculation budget is sized so a full draft step
    /// costs no more than ~15% of a verification pass, keeping speculation
    /// overhead secondary (the paper's draft models are 50–70× smaller).
    pub fn profile(
        target: &LatencyModel,
        draft: &LatencyModel,
        ctx_len: u32,
        policy: BudgetPolicy,
    ) -> Self {
        let curve = LatencyCurve::sweep(target, ctx_len, 8192, 8);
        let base = curve.points()[0].latency_ms;
        let verify_budget = match policy {
            BudgetPolicy::Fixed(b) => b,
            BudgetPolicy::Knee => target.roofline_knee_tokens(ctx_len),
            BudgetPolicy::LatencyStretch(stretch) => {
                assert!(stretch >= 1.0, "stretch must not shrink latency");
                let mut best = 1;
                for p in curve.points() {
                    if p.latency_ms <= base * stretch {
                        best = p.tokens;
                    }
                }
                best
            }
        };

        // Draft budget: largest per-step token count keeping the draft step
        // under 15% of the verification-pass latency.
        let verify_latency_ms = curve.latency_at(verify_budget);
        let mut spec_budget = 1u64;
        let mut tokens = 1u64;
        while tokens <= 4096 {
            let pass = ForwardPass::new(vec![SeqWork {
                new_tokens: tokens as u32,
                ctx_len,
            }]);
            if draft.forward_latency_ms(&pass, true) <= 0.15 * verify_latency_ms {
                spec_budget = tokens;
            }
            tokens *= 2;
        }
        let draft_pass = ForwardPass::new(vec![SeqWork {
            new_tokens: spec_budget as u32,
            ctx_len,
        }]);
        Self {
            verify_budget,
            spec_budget,
            verify_latency_ms,
            draft_step_latency_ms: draft.forward_latency_ms(&draft_pass, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;

    #[test]
    fn curve_latency_is_monotone() {
        let tb = Testbed::llama70b();
        let curve = LatencyCurve::sweep(&tb.target, 512, 4096, 8);
        let pts = curve.points();
        assert!(pts.len() > 10);
        for w in pts.windows(2) {
            assert!(w[1].latency_ms >= w[0].latency_ms);
            assert!(w[1].tokens > w[0].tokens);
        }
    }

    #[test]
    fn interpolation_brackets_neighbours() {
        let tb = Testbed::llama70b();
        let curve = LatencyCurve::sweep(&tb.target, 512, 1024, 4);
        let lo = curve.latency_at(100);
        let hi = curve.latency_at(900);
        assert!(lo < hi);
        // Past the end clamps.
        assert_eq!(
            curve.latency_at(10_000),
            curve.points().last().unwrap().latency_ms
        );
    }

    #[test]
    fn stretch_budget_is_substantial_on_a100() {
        // The flat memory-bound region means hundreds of verification tokens
        // fit within a 1.5x latency stretch — the headroom AdaServe uses.
        let tb = Testbed::llama70b();
        let prof = TokenBudgetProfile::profile(
            &tb.target,
            &tb.draft,
            512,
            BudgetPolicy::LatencyStretch(1.5),
        );
        assert!(prof.verify_budget >= 100, "budget = {}", prof.verify_budget);
        assert!(prof.spec_budget >= 32, "spec budget = {}", prof.spec_budget);
        assert!(prof.draft_step_latency_ms < prof.verify_latency_ms);
    }

    #[test]
    fn tighter_stretch_gives_smaller_budget() {
        let tb = Testbed::llama70b();
        let tight = TokenBudgetProfile::profile(
            &tb.target,
            &tb.draft,
            512,
            BudgetPolicy::LatencyStretch(1.1),
        );
        let loose = TokenBudgetProfile::profile(
            &tb.target,
            &tb.draft,
            512,
            BudgetPolicy::LatencyStretch(2.0),
        );
        assert!(tight.verify_budget <= loose.verify_budget);
    }

    #[test]
    fn fixed_policy_is_identity() {
        let tb = Testbed::qwen32b();
        let prof =
            TokenBudgetProfile::profile(&tb.target, &tb.draft, 512, BudgetPolicy::Fixed(777));
        assert_eq!(prof.verify_budget, 777);
    }

    #[test]
    fn knee_policy_matches_latency_model() {
        let tb = Testbed::llama70b();
        let prof = TokenBudgetProfile::profile(&tb.target, &tb.draft, 512, BudgetPolicy::Knee);
        assert_eq!(prof.verify_budget, tb.target.roofline_knee_tokens(512));
    }
}
