//! Transformer model specifications and FLOP/byte accounting.

/// Architecture of a decoder-only transformer.
///
/// Presets mirror the exact models in the paper's Table 1 (targets) and §6.1
/// (draft selection: smallest same-family model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Model name.
    pub name: &'static str,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden (embedding) dimension.
    pub hidden: u32,
    /// Number of attention heads.
    pub n_heads: u32,
    /// Number of key/value heads (GQA).
    pub n_kv_heads: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Bytes per parameter (2 for BF16 weights).
    pub bytes_per_param: u32,
}

impl ModelSpec {
    /// Llama-3.1-70B-Instruct.
    pub fn llama_70b() -> Self {
        Self {
            name: "Llama-3.1-70B-Instruct",
            params: 70_600_000_000,
            layers: 80,
            hidden: 8192,
            n_heads: 64,
            n_kv_heads: 8,
            vocab: 128_256,
            bytes_per_param: 2,
        }
    }

    /// Qwen2.5-32B-Instruct.
    pub fn qwen_32b() -> Self {
        Self {
            name: "Qwen2.5-32B-Instruct",
            params: 32_760_000_000,
            layers: 64,
            hidden: 5120,
            n_heads: 40,
            n_kv_heads: 8,
            vocab: 152_064,
            bytes_per_param: 2,
        }
    }

    /// Llama-3.2-1B-Instruct (draft for Llama-3.1-70B).
    pub fn llama_1b() -> Self {
        Self {
            name: "Llama-3.2-1B-Instruct",
            params: 1_240_000_000,
            layers: 16,
            hidden: 2048,
            n_heads: 32,
            n_kv_heads: 8,
            vocab: 128_256,
            bytes_per_param: 2,
        }
    }

    /// Qwen2.5-0.5B-Instruct (draft for Qwen2.5-32B).
    pub fn qwen_05b() -> Self {
        Self {
            name: "Qwen2.5-0.5B-Instruct",
            params: 494_000_000,
            layers: 24,
            hidden: 896,
            n_heads: 14,
            n_kv_heads: 2,
            vocab: 151_936,
            bytes_per_param: 2,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.n_heads
    }

    /// Total weight bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.params * u64::from(self.bytes_per_param)
    }

    /// KV-cache bytes stored per token (both K and V, all layers, FP16).
    pub fn kv_bytes_per_token(&self) -> u64 {
        // 2 (K and V) × layers × kv_heads × head_dim × 2 bytes.
        2 * u64::from(self.layers) * u64::from(self.n_kv_heads) * u64::from(self.head_dim()) * 2
    }

    /// Dense (weight-matmul) FLOPs to process one token.
    ///
    /// The standard 2·params estimate covers all linear layers including the
    /// LM head.
    pub fn linear_flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }

    /// Attention FLOPs for one token attending over a context of `ctx_len`.
    ///
    /// Two matmuls (QKᵀ and attn·V) of size `heads × head_dim × ctx`, i.e.
    /// `4 · hidden · ctx` multiply-accumulates per layer.
    pub fn attention_flops_per_token(&self, ctx_len: u64) -> f64 {
        4.0 * f64::from(self.hidden) * ctx_len as f64 * f64::from(self.layers)
    }

    /// Bytes of KV cache read to decode one token over a context of `ctx_len`.
    pub fn kv_read_bytes(&self, ctx_len: u64) -> f64 {
        self.kv_bytes_per_token() as f64 * ctx_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama70b_weights_are_141_gb() {
        let gb = ModelSpec::llama_70b().weight_bytes() as f64 / 1e9;
        assert!(gb > 135.0 && gb < 150.0, "weights = {gb} GB");
    }

    #[test]
    fn llama70b_kv_is_320kb_per_token() {
        // 2 (K+V) × 80 layers × 8 kv-heads × 128 head-dim × 2 bytes.
        let b = ModelSpec::llama_70b().kv_bytes_per_token();
        assert_eq!(b, 2 * 80 * 8 * 128 * 2);
        assert_eq!(b, 327_680);
    }

    #[test]
    fn head_dim_is_consistent() {
        assert_eq!(ModelSpec::llama_70b().head_dim(), 128);
        assert_eq!(ModelSpec::qwen_32b().head_dim(), 128);
        assert_eq!(ModelSpec::llama_1b().head_dim(), 64);
    }

    #[test]
    fn drafts_are_much_smaller_than_targets() {
        assert!(ModelSpec::llama_1b().params * 20 < ModelSpec::llama_70b().params);
        assert!(ModelSpec::qwen_05b().params * 20 < ModelSpec::qwen_32b().params);
    }

    #[test]
    fn attention_flops_scale_with_context() {
        let m = ModelSpec::llama_70b();
        assert!(m.attention_flops_per_token(2048) > 3.9 * m.attention_flops_per_token(512));
    }
}
